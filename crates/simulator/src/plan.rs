//! The plan/execute split of the wavelength-sweep hot path.
//!
//! A wavelength sweep evaluates the same circuit at many wavelengths. The
//! naive path ([`crate::evaluate`]) rebuilds everything from scratch at
//! every point: it re-derives the external/internal port partition, the
//! connection permutation and the elimination order, allocates a dozen
//! intermediate matrices, and re-evaluates every component model — even
//! the dispersionless ones whose S-matrix cannot change.
//!
//! The wavelength-independent work is split into two layers:
//!
//! * a [`SweepSchedule`] — everything determined by the circuit's
//!   **topology** alone (port partitions, pre-permuted gather indices,
//!   the per-connection pivot/keep schedule of Filipsson's reduction).
//!   Schedules are immutable, `Send + Sync`, shareable via `Arc`, and a
//!   [`ScheduleCache`] memoizes them by [`Circuit::topology_hash`] so
//!   that candidate circuits which differ only in *settings* (the common
//!   case in evaluation campaigns) skip re-planning entirely;
//! * a [`SweepPlan`] — the schedule plus the per-instance **settings**
//!   state: an [`SMatrixMemo`] per instance holding the block of every
//!   wavelength-independent model, evaluated exactly once.
//!
//! The per-point state lives in a [`SolveWorkspace`]: the assembled global
//! matrix, the dense system and right-hand side, LU storage, the
//! elimination buffer and two scratch rows. All of it is reused between
//! points, so the steady-state scattering solve performs **zero heap
//! allocations** on either backend (dispersive component models still
//! build their own small S-matrices; every wavelength-independent model is
//! served from the memo) — property-verified by the counting-allocator
//! test in `tests/alloc.rs`. Each worker thread of the parallel sweep owns
//! one workspace.
//!
//! The elimination backend reduces **in place** on a single buffer: each
//! Filipsson step captures the pivot rows into scratch, hoists the two
//! row coefficients (pre-multiplied by the inverse denominator) out of
//! the inner loop, and compacts the surviving rows toward the origin as
//! it updates them — no ping-pong copy, two complex multiplies per
//! surviving entry.
//!
//! Two plan-based sweeps (serial or parallel) are bit-identical. Against
//! the naive path, the Dense backend follows the same operation order
//! exactly; the elimination backend regroups the Filipsson numerator into
//! two fused coefficient terms, so plan and naive agree to machine
//! precision (~1e-15) rather than bit for bit — cross-checks must compare
//! with a tolerance, as the property tests do.

use crate::backend::{Backend, SimError};
use crate::blocks::BlockSchedule;
use crate::elaborate::Circuit;
use picbench_math::{BlockSparseLu, CMatrix, Complex, LuDecomposition, SplitComplexVec};
use picbench_sparams::SMatrixMemo;
use std::collections::HashMap;
use std::sync::Arc;

/// One precomputed step of the port-elimination reduction: the current
/// row/column positions of the connected port pair. (The surviving rows
/// are always the ascending complement of `{p, q}` in `0..n`, so they
/// are enumerated on the fly rather than stored.)
#[derive(Debug, Clone, Copy)]
struct ElimStep {
    p: usize,
    q: usize,
}

/// Fenwick tree over alive/dead flags: `rank(i)` counts alive entries
/// strictly below `i`, which is exactly an entry's current row position
/// in an order-preserving elimination.
struct FenwickRank {
    tree: Vec<i64>,
}

impl FenwickRank {
    fn all_alive(n: usize) -> Self {
        let mut tree = vec![0i64; n + 1];
        for i in 1..=n {
            tree[i] += 1;
            let j = i + (i & i.wrapping_neg());
            if j <= n {
                let add = tree[i];
                tree[j] += add;
            }
        }
        FenwickRank { tree }
    }

    /// Number of alive entries in `0..i` (i.e. the current position of
    /// entry `i`, assuming `i` itself is still alive).
    fn rank(&self, i: usize) -> usize {
        let mut sum = 0i64;
        let mut j = i;
        while j > 0 {
            sum += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        sum as usize
    }

    fn kill(&mut self, i: usize) {
        let mut j = i + 1;
        while j < self.tree.len() {
            self.tree[j] -= 1;
            j += j & j.wrapping_neg();
        }
    }
}

/// Everything about a sweep that is determined by circuit *topology*
/// alone — no settings, no wavelengths. Immutable and shareable across
/// threads; build once per topology via [`SweepSchedule::for_circuit`] or
/// reuse through a [`ScheduleCache`].
#[derive(Debug)]
pub struct SweepSchedule {
    /// Total global ports of the topology this schedule was built for.
    total_ports: usize,
    /// External port global indices, in netlist order.
    ext_idx: Vec<usize>,
    /// Internal (connected) port global indices — Dense backend.
    int_idx: Vec<usize>,
    /// `int_idx[swap[r]]`: row gather indices with the connection
    /// permutation already applied, so `P·S_ii` and `P·S_ie` are direct
    /// reads of the global matrix — Dense backend.
    perm_int_idx: Vec<usize>,
    /// Reduction schedule — PortElimination backend.
    elim_steps: Vec<ElimStep>,
    /// Final positions of the external ports after the reduction —
    /// PortElimination backend.
    elim_ext_rows: Vec<usize>,
    /// Block partition, symbolic factorization and scatter/combine
    /// recipes — BlockSparse backend.
    block: BlockSchedule,
}

impl SweepSchedule {
    /// Computes the sweep structure of a circuit's topology: the
    /// external/internal partition and pre-permuted gather rows (Dense),
    /// the pivot/keep schedule of the pairwise reduction
    /// (PortElimination), and the block partition plus symbolic
    /// factorization of the connectivity graph (BlockSparse). All
    /// backends' schedules are built — the work is index bookkeeping
    /// plus a one-off symbolic analysis, negligible next to a single
    /// sweep point.
    pub fn for_circuit(circuit: &Circuit) -> Self {
        let n0 = circuit.total_ports;
        let ext_idx: Vec<usize> = circuit.externals.iter().map(|(_, i)| *i).collect();

        // Dense: internal partition and pre-permuted gather rows.
        let mut int_idx: Vec<usize> = Vec::with_capacity(circuit.connections.len() * 2);
        for &(a, b) in &circuit.connections {
            int_idx.push(a);
            int_idx.push(b);
        }
        // Connected pairs sit at adjacent positions (2k, 2k+1), so the
        // permutation swaps each even position with the following odd one.
        let mut perm_int_idx = vec![0usize; int_idx.len()];
        for k in 0..circuit.connections.len() {
            perm_int_idx[2 * k] = int_idx[2 * k + 1];
            perm_int_idx[2 * k + 1] = int_idx[2 * k];
        }

        // PortElimination: replay the index bookkeeping of the reduction
        // once, recording pivot positions. Removing two rows keeps the
        // relative order of the survivors, so a port's position at any
        // step is its rank among the ports still alive — two Fenwick
        // prefix-sum queries per connection instead of an O(ports)
        // renumbering pass (the schedule is identical either way).
        let mut alive = FenwickRank::all_alive(n0);
        let mut elim_steps = Vec::with_capacity(circuit.connections.len());
        for &(ga, gb) in &circuit.connections {
            let p = alive.rank(ga);
            let q = alive.rank(gb);
            alive.kill(ga);
            alive.kill(gb);
            elim_steps.push(ElimStep { p, q });
        }
        let elim_ext_rows: Vec<usize> = circuit
            .externals
            .iter()
            .map(|(_, g)| alive.rank(*g))
            .collect();

        SweepSchedule {
            total_ports: n0,
            ext_idx,
            int_idx,
            perm_int_idx,
            elim_steps,
            elim_ext_rows,
            block: BlockSchedule::for_circuit(circuit),
        }
    }

    /// Number of external ports.
    pub fn external_count(&self) -> usize {
        self.ext_idx.len()
    }

    /// Total global ports of the topology.
    pub fn total_ports(&self) -> usize {
        self.total_ports
    }
}

/// Memoizes [`SweepSchedule`]s by [`Circuit::topology_hash`].
///
/// Candidate circuits produced by feedback retries and repeated samples
/// overwhelmingly share topologies (they differ in settings, if at all);
/// holding one of these per evaluator means a cache miss on the
/// *response* level still skips all re-planning. Entries are `Arc`s, so
/// plans built from a cached schedule stay valid if the cache is dropped.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    map: HashMap<u64, Arc<SweepSchedule>>,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> Self {
        ScheduleCache::default()
    }

    /// The schedule for `circuit`'s topology, built on first sight.
    pub fn get_or_build(&mut self, circuit: &Circuit) -> Arc<SweepSchedule> {
        Arc::clone(
            self.map
                .entry(circuit.topology_hash())
                .or_insert_with(|| Arc::new(SweepSchedule::for_circuit(circuit))),
        )
    }

    /// Number of distinct topologies seen.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A schedule bound to one concrete circuit: topology structure plus the
/// per-instance wavelength-independent S-matrix memos. See the module
/// docs of `plan` for the full story.
#[derive(Debug)]
pub struct SweepPlan<'c> {
    circuit: &'c Circuit,
    backend: Backend,
    schedule: Arc<SweepSchedule>,
    /// Per-instance memo; holds the block of every wavelength-independent
    /// model after construction.
    memos: Vec<SMatrixMemo>,
    /// Whether sweeps may fold a fully wavelength-independent circuit to
    /// a single solved point (on by default; benchmarks disable it to
    /// time the per-point solver).
    allow_constant_fold: bool,
}

/// Reference wavelength used to capture wavelength-independent S-matrices.
/// Any value works by definition; the C-band centre keeps diagnostics
/// unsurprising.
const MEMO_WAVELENGTH_UM: f64 = 1.55;

impl<'c> SweepPlan<'c> {
    /// Builds the plan for sweeping `circuit` with `backend`, computing a
    /// fresh schedule. Prefer [`SweepPlan::with_schedule`] plus a
    /// [`ScheduleCache`] when evaluating many circuits of few topologies.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Model`] when a wavelength-independent model
    /// rejects its settings (dispersive models are evaluated per point and
    /// report their errors from [`SweepPlan::evaluate_into`] instead).
    pub fn new(circuit: &'c Circuit, backend: Backend) -> Result<Self, SimError> {
        SweepPlan::with_schedule(
            circuit,
            backend,
            Arc::new(SweepSchedule::for_circuit(circuit)),
        )
    }

    /// Builds the plan for `circuit` on a prebuilt (typically cached)
    /// schedule of the same topology.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's port count disagrees with the circuit —
    /// a schedule reused across topologies is a caller bug.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Model`] when a wavelength-independent model
    /// rejects its settings.
    pub fn with_schedule(
        circuit: &'c Circuit,
        backend: Backend,
        schedule: Arc<SweepSchedule>,
    ) -> Result<Self, SimError> {
        assert_eq!(
            schedule.total_ports, circuit.total_ports,
            "schedule was built for a different topology"
        );
        // Memoize every wavelength-independent instance once.
        let mut memos = Vec::with_capacity(circuit.instances.len());
        for inst in &circuit.instances {
            let mut memo = SMatrixMemo::new();
            if inst.model.is_wavelength_independent(&inst.settings) {
                memo.get_or_eval(inst.model.as_ref(), MEMO_WAVELENGTH_UM, &inst.settings)
                    .map_err(|source| SimError::Model {
                        instance: inst.name.clone(),
                        source,
                    })?;
            }
            memos.push(memo);
        }

        Ok(SweepPlan {
            circuit,
            backend,
            schedule,
            memos,
            allow_constant_fold: true,
        })
    }

    /// Enables or disables the constant-response fold for fully
    /// wavelength-independent circuits (enabled by default). Disabling it
    /// forces sweeps to solve every grid point — it also switches the
    /// block-sparse factor-once stripe batching off — the pre-fold
    /// (PR-1) behavior, useful for benchmarking the per-point solver;
    /// results are bit-identical either way.
    pub fn with_constant_fold(mut self, enabled: bool) -> Self {
        self.allow_constant_fold = enabled;
        self
    }

    /// The circuit this plan was built for.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// The composition backend this plan executes.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The underlying topology schedule.
    pub fn schedule(&self) -> &Arc<SweepSchedule> {
        &self.schedule
    }

    /// Number of external ports.
    pub fn external_count(&self) -> usize {
        self.schedule.ext_idx.len()
    }

    /// How many instances are served from the wavelength-independent memo
    /// (diagnostics; the rest are re-evaluated at every point).
    pub fn memoized_instance_count(&self) -> usize {
        self.memos.iter().filter(|m| m.is_cached()).count()
    }

    /// Whether *every* instance is served from the memo. The composed
    /// response of such a circuit is the same at every wavelength, so
    /// sweeps evaluate a single point and replicate it — bit-identical to
    /// solving each grid point, at 1/points the cost. (Interconnect
    /// meshes — phase shifters, couplers, crossings — are the heavyweight
    /// beneficiaries.)
    pub fn is_wavelength_independent(&self) -> bool {
        self.memos.iter().all(|m| m.is_cached())
    }

    /// Whether sweeps over this plan may apply the constant-response
    /// fold: the fold is enabled and every instance is memoized.
    pub fn folds_to_constant(&self) -> bool {
        self.allow_constant_fold && self.is_wavelength_independent()
    }

    /// Allocates a workspace sized for this plan, with all memoized blocks
    /// already written into the global matrix.
    pub fn workspace(&self) -> SolveWorkspace {
        let mut ws = SolveWorkspace::new();
        self.reset_workspace(&mut ws);
        ws
    }

    /// Re-targets an existing workspace at this plan, reusing its buffers:
    /// sizes every matrix for this circuit, zeroes the global matrix and
    /// rewrites the memoized blocks. After the call the workspace is
    /// indistinguishable from a fresh [`SweepPlan::workspace`] — which is
    /// what lets an evaluator keep one workspace across many circuits
    /// without re-allocating at every candidate.
    pub fn reset_workspace(&self, ws: &mut SolveWorkspace) {
        let n0 = self.schedule.total_ports;
        let n_int = self.schedule.int_idx.len();
        let n_ext = self.schedule.ext_idx.len();
        ws.global.reshape(n0, n0);
        // The staging matrix is block-diagonal by instance, and every
        // block-sparse read of it (matrix/RHS scatters, ee/ei combine
        // terms) stays inside one instance's diagonal block — written by
        // `write_block` before any read (memoized below, dispersive per
        // point). Only the dense and elimination gathers, which also read
        // the zero cross-instance entries, need all n0² entries cleared.
        if self.backend != Backend::BlockSparse {
            ws.global.fill_zero();
        }
        for (inst, memo) in self.circuit.instances.iter().zip(&self.memos) {
            if let Some(block) = memo.cached() {
                write_block(&mut ws.global, inst.port_offset, block.matrix());
            }
        }
        // Only the active backend's buffers are sized — the others stay
        // empty (or keep stale capacity for later reuse) and are never
        // read.
        match self.backend {
            Backend::Dense => {
                ws.system.reshape(n_int, n_int);
                ws.rhs.reshape(n_int, n_ext);
                ws.x.reshape(n_int, n_ext);
            }
            Backend::PortElimination => {
                ws.elim.reshape(n0, n0);
                ws.elim_row_p.resize(n0, Complex::ZERO);
                ws.elim_row_q.resize(n0, Complex::ZERO);
            }
            Backend::BlockSparse => {
                // Baselines: the wavelength-independent part of the
                // system assembly (identity + every memoized instance)
                // imaged once; per-point assembly copies the image and
                // scatters only the dispersive instances.
                let sched = &self.schedule.block;
                ws.bs_baseline.resize_zero(sched.sym.values_len());
                ws.bs_rhs_baseline.resize_zero(sched.n_int * sched.n_ext);
                sched.scatter_identity(&mut ws.bs_baseline);
                for (ii, memo) in self.memos.iter().enumerate() {
                    if memo.is_cached() {
                        sched.scatter_matrix_instance(ii, &ws.global, &mut ws.bs_baseline);
                        sched.scatter_rhs_instance(ii, &ws.global, &mut ws.bs_rhs_baseline);
                    }
                }
            }
        }
    }

    /// Evaluates the external S-matrix at one wavelength into `out`
    /// (reshaped to `n_ext × n_ext`), reusing `ws` for every intermediate.
    ///
    /// # Errors
    ///
    /// Mirrors [`crate::evaluate`]: [`SimError::Model`] when a dispersive
    /// model fails, [`SimError::SingularSystem`] on an undamped resonant
    /// loop, [`SimError::NonFiniteResult`] on a non-finite response.
    pub fn evaluate_into(
        &self,
        ws: &mut SolveWorkspace,
        wavelength_um: f64,
        out: &mut CMatrix,
    ) -> Result<(), SimError> {
        self.refresh_dispersive(ws, wavelength_um)?;
        match self.backend {
            Backend::Dense => self.evaluate_dense(ws, wavelength_um, out)?,
            Backend::PortElimination => self.evaluate_elimination(ws, wavelength_um, out)?,
            Backend::BlockSparse => self.evaluate_block_sparse(ws, wavelength_um, out)?,
        }
        if !out.is_finite() {
            return Err(SimError::NonFiniteResult { wavelength_um });
        }
        Ok(())
    }

    /// Refreshes the dispersive blocks of the global matrix; memoized
    /// blocks were written at workspace construction and never change.
    fn refresh_dispersive(
        &self,
        ws: &mut SolveWorkspace,
        wavelength_um: f64,
    ) -> Result<(), SimError> {
        for (inst, memo) in self.circuit.instances.iter().zip(&self.memos) {
            if memo.is_cached() {
                continue;
            }
            let s = inst
                .model
                .s_matrix(wavelength_um, &inst.settings)
                .map_err(|source| SimError::Model {
                    instance: inst.name.clone(),
                    source,
                })?;
            write_block(&mut ws.global, inst.port_offset, s.matrix());
        }
        Ok(())
    }

    /// Whether a batched sweep over this plan may factor the scattering
    /// system **once** and reuse the solved panel for every wavelength
    /// point of a stripe: the BlockSparse backend, with every instance
    /// that feeds the system matrix, the RHS panel or the `S_ei` combine
    /// coefficients served from the wavelength-independent memo. (Only
    /// instances with no internal ports may then still be dispersive —
    /// they contribute `S_ee` entries re-read at every point.)
    pub fn stripe_factors_once(&self) -> bool {
        self.backend == Backend::BlockSparse
            && self.memos.iter().enumerate().all(|(ii, memo)| {
                memo.is_cached() || !self.schedule.block.instance_touches_system(ii)
            })
    }

    /// How a stripe of `points` grid points executes over this plan —
    /// the single source of truth for the batching eligibility shared by
    /// [`SweepPlan::evaluate_stripe_into`] and the sweep executor's
    /// chunk runner (which must branch identically to keep serial and
    /// parallel sweeps bit-identical).
    ///
    /// Disabling the constant fold ([`SweepPlan::with_constant_fold`])
    /// also disables the factor-once stripe modes: "solve every grid
    /// point" must mean exactly that, both for benchmarking and so the
    /// conformance fold axis compares a genuinely recomputed sweep.
    pub(crate) fn stripe_mode(&self, points: usize) -> StripeMode {
        if points > 1 && self.allow_constant_fold && self.stripe_factors_once() {
            if self.is_wavelength_independent() {
                StripeMode::FactorOnceCopy
            } else {
                StripeMode::FactorOnceRecombine
            }
        } else {
            StripeMode::PerPoint
        }
    }

    /// Evaluates a stripe of wavelength points in one batched pass,
    /// writing one external S-matrix per point into `outs`.
    ///
    /// When [`SweepPlan::stripe_factors_once`] holds, the system is
    /// assembled and factored for the first point only and the solved
    /// panel of RHS columns is reused across the whole stripe —
    /// per-point work drops to refreshing dispersive `S_ee` entries and
    /// recombining (or a plain copy when the circuit is fully
    /// wavelength-independent). Otherwise every point runs the full
    /// [`SweepPlan::evaluate_into`]. Results are element-wise identical
    /// to per-point evaluation in all cases, and the steady-state stripe
    /// performs zero heap allocations (see `tests/alloc.rs`).
    ///
    /// # Errors
    ///
    /// Returns the stripe-local index and [`SimError`] of the first
    /// failing point.
    ///
    /// # Panics
    ///
    /// Panics if `wavelengths` and `outs` have different lengths.
    pub fn evaluate_stripe_into(
        &self,
        ws: &mut SolveWorkspace,
        wavelengths: &[f64],
        outs: &mut [CMatrix],
    ) -> Result<(), (usize, SimError)> {
        assert_eq!(
            wavelengths.len(),
            outs.len(),
            "one output matrix per stripe wavelength"
        );
        match self.stripe_mode(outs.len()) {
            StripeMode::PerPoint => {
                for (offset, (&wl, out)) in wavelengths.iter().zip(outs.iter_mut()).enumerate() {
                    self.evaluate_into(ws, wl, out).map_err(|e| (offset, e))?;
                }
            }
            mode @ (StripeMode::FactorOnceCopy | StripeMode::FactorOnceRecombine) => {
                let (first_out, rest) = outs.split_first_mut().expect("points > 1");
                self.evaluate_into(ws, wavelengths[0], first_out)
                    .map_err(|e| (0, e))?;
                for (offset, out) in rest.iter_mut().enumerate() {
                    match mode {
                        StripeMode::FactorOnceCopy => out.copy_from(first_out),
                        _ => self
                            .evaluate_retained_into(ws, wavelengths[offset + 1], out)
                            .map_err(|e| (offset + 1, e))?,
                    }
                }
            }
        }
        Ok(())
    }

    /// Recombines the external response at a new wavelength from the
    /// factored system and solved panel retained in `ws` by the previous
    /// [`SweepPlan::evaluate_into`] on this plan. Only meaningful when
    /// [`SweepPlan::stripe_factors_once`] holds (the retained solve is
    /// wavelength-independent then); per-point work reduces to the
    /// dispersive `S_ee` refresh and the sparse combine.
    pub(crate) fn evaluate_retained_into(
        &self,
        ws: &mut SolveWorkspace,
        wavelength_um: f64,
        out: &mut CMatrix,
    ) -> Result<(), SimError> {
        debug_assert!(self.stripe_factors_once());
        self.refresh_dispersive(ws, wavelength_um)?;
        self.schedule
            .block
            .combine(&ws.global, &ws.bs_x, &mut ws.bs_stage, out);
        if !out.is_finite() {
            return Err(SimError::NonFiniteResult { wavelength_um });
        }
        Ok(())
    }

    /// Block-sparse scattering solve on the frozen block schedule:
    /// baseline image + dispersive scatter, numeric factor against the
    /// shared symbolic object, one panel solve for all `n_ext` RHS
    /// columns, sparse recombination.
    fn evaluate_block_sparse(
        &self,
        ws: &mut SolveWorkspace,
        wavelength_um: f64,
        out: &mut CMatrix,
    ) -> Result<(), SimError> {
        let sched = &self.schedule.block;
        if sched.n_int == 0 {
            ws.bs_x.clear();
            sched.combine(&ws.global, &ws.bs_x, &mut ws.bs_stage, out);
            return Ok(());
        }
        ws.bs_lu.load(&ws.bs_baseline);
        ws.bs_x.copy_from(&ws.bs_rhs_baseline);
        for (ii, memo) in self.memos.iter().enumerate() {
            if memo.is_cached() {
                continue;
            }
            sched.scatter_matrix_instance(ii, &ws.global, ws.bs_lu.values_mut());
            sched.scatter_rhs_instance(ii, &ws.global, &mut ws.bs_x);
        }
        ws.bs_lu
            .factor(&sched.sym)
            .map_err(|_| SimError::SingularSystem { wavelength_um })?;
        ws.bs_lu
            .solve_in_place(&sched.sym, &mut ws.bs_x, sched.n_ext);
        sched.combine(&ws.global, &ws.bs_x, &mut ws.bs_stage, out);
        Ok(())
    }

    /// Dense global scattering solve
    /// `S_ext = S_ee + S_ei (I − P·S_ii)⁻¹ P·S_ie`, with the permutation
    /// folded into gather indices and all products running on workspace
    /// buffers.
    fn evaluate_dense(
        &self,
        ws: &mut SolveWorkspace,
        wavelength_um: f64,
        out: &mut CMatrix,
    ) -> Result<(), SimError> {
        let sched = &*self.schedule;
        let n_int = sched.int_idx.len();
        let n_ext = sched.ext_idx.len();
        out.reshape(n_ext, n_ext);

        if n_int == 0 {
            for r in 0..n_ext {
                for c in 0..n_ext {
                    *out.at_mut(r, c) = ws.global.at(sched.ext_idx[r], sched.ext_idx[c]);
                }
            }
            return Ok(());
        }

        // system = I − P·S_ii and rhs = P·S_ie, gathered straight from the
        // global matrix through the pre-permuted row indices.
        ws.system.reshape(n_int, n_int);
        ws.rhs.reshape(n_int, n_ext);
        for r in 0..n_int {
            let src_r = sched.perm_int_idx[r];
            for c in 0..n_int {
                let v = ws.global.at(src_r, sched.int_idx[c]);
                *ws.system.at_mut(r, c) = if r == c { Complex::ONE - v } else { -v };
            }
            for c in 0..n_ext {
                *ws.rhs.at_mut(r, c) = ws.global.at(src_r, sched.ext_idx[c]);
            }
        }

        ws.lu
            .factor_into(&ws.system)
            .map_err(|_| SimError::SingularSystem { wavelength_um })?;
        ws.lu.solve_matrix_into(&ws.rhs, &mut ws.x);

        // S_ext = S_ee + S_ei · X, with S_ee and S_ei read directly from
        // the global matrix.
        for r in 0..n_ext {
            let g_r = sched.ext_idx[r];
            for c in 0..n_ext {
                let mut acc = Complex::ZERO;
                for (k, &g_k) in sched.int_idx.iter().enumerate() {
                    acc += ws.global.at(g_r, g_k) * ws.x.at(k, c);
                }
                *out.at_mut(r, c) = ws.global.at(g_r, sched.ext_idx[c]) + acc;
            }
        }
        Ok(())
    }

    /// Filipsson pairwise reduction over the precomputed schedule,
    /// compacting **in place** on the single workspace buffer.
    ///
    /// Each step captures the two pivot rows (gathered onto the surviving
    /// columns) into scratch, then rewrites every surviving row at its
    /// compacted position. Writes land at `(ri·m + cj)` with
    /// `ri ≤ keep[ri]`, `cj ≤ keep[cj]` and `m < n`, so every write is
    /// strictly below all still-unread source entries — the update never
    /// clobbers data it has yet to read.
    fn evaluate_elimination(
        &self,
        ws: &mut SolveWorkspace,
        wavelength_um: f64,
        out: &mut CMatrix,
    ) -> Result<(), SimError> {
        let sched = &*self.schedule;
        ws.elim.copy_from(&ws.global);
        let buf = ws.elim.as_mut_slice();
        let mut n = sched.total_ports;

        for step in &sched.elim_steps {
            let (p, q) = (step.p, step.q);
            let m = n - 2;
            debug_assert!(p < n && q < n && p != q);

            let s_pq = buf[p * n + q];
            let s_qp = buf[q * n + p];
            let s_pp = buf[p * n + p];
            let s_qq = buf[q * n + q];
            let one_m_pq = Complex::ONE - s_pq;
            let one_m_qp = Complex::ONE - s_qp;
            let denom = one_m_pq * one_m_qp - s_pp * s_qq;
            if denom.abs() < 1e-300 {
                return Err(SimError::SingularSystem { wavelength_um });
            }
            let inv_d = denom.recip();

            // The surviving columns are `0..n` minus the two pivots: three
            // contiguous segments. Working segment-wise (rather than
            // through the keep list) turns every gather into a sequential
            // run the compiler can vectorize.
            let (lo, hi) = (p.min(q), p.max(q));

            // Capture the pivot rows gathered onto the surviving columns —
            // the compaction below overwrites them.
            let row_p = &mut ws.elim_row_p[..m];
            let row_q = &mut ws.elim_row_q[..m];
            row_p[..lo].copy_from_slice(&buf[p * n..p * n + lo]);
            row_q[..lo].copy_from_slice(&buf[q * n..q * n + lo]);
            row_p[lo..hi - 1].copy_from_slice(&buf[p * n + lo + 1..p * n + hi]);
            row_q[lo..hi - 1].copy_from_slice(&buf[q * n + lo + 1..q * n + hi]);
            row_p[hi - 1..].copy_from_slice(&buf[p * n + hi + 1..p * n + n]);
            row_q[hi - 1..].copy_from_slice(&buf[q * n + hi + 1..q * n + n]);

            let mut ri = 0usize;
            for i in 0..n {
                if i == lo || i == hi {
                    continue;
                }
                let s_ip = buf[i * n + p];
                let s_iq = buf[i * n + q];
                // Hoist the shared row factors (and the division) out of
                // the inner loop: two fused multiplies per entry.
                let coeff_q = (one_m_pq * s_ip + s_pp * s_iq) * inv_d;
                let coeff_p = (s_qq * s_ip + one_m_qp * s_iq) * inv_d;
                let src = i * n;
                let dst = ri * m;
                let mut cj = 0usize;
                let mut update = |j_start: usize, j_end: usize, cj: &mut usize| {
                    for j in j_start..j_end {
                        debug_assert!(dst + *cj <= src + j && src + j < buf.len());
                        // SAFETY: `src + j < n·n ≤ buf.len()` and
                        // `dst + cj < m·m < buf.len()`; the write index
                        // never exceeds the read index (in-place ordering
                        // proven in the method docs), checked above in
                        // debug builds.
                        unsafe {
                            *buf.get_unchecked_mut(dst + *cj) = *buf.get_unchecked(src + j)
                                + *row_q.get_unchecked(*cj) * coeff_q
                                + *row_p.get_unchecked(*cj) * coeff_p;
                        }
                        *cj += 1;
                    }
                };
                update(0, lo, &mut cj);
                update(lo + 1, hi, &mut cj);
                update(hi + 1, n, &mut cj);
                ri += 1;
            }
            n = m;
        }

        let n_ext = sched.elim_ext_rows.len();
        out.reshape(n_ext, n_ext);
        for (r, &src_r) in sched.elim_ext_rows.iter().enumerate() {
            for (c, &src_c) in sched.elim_ext_rows.iter().enumerate() {
                *out.at_mut(r, c) = buf[src_r * n + src_c];
            }
        }
        Ok(())
    }
}

/// How a stripe of grid points executes over a plan — decided once by
/// [`SweepPlan::stripe_mode`] and obeyed by both stripe drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StripeMode {
    /// Solve the first point, copy its matrix into every other slot
    /// (fully wavelength-independent circuit).
    FactorOnceCopy,
    /// Solve the first point, recombine the retained panel per point
    /// (static system, dispersive `S_ee`-only instances).
    FactorOnceRecombine,
    /// Full evaluation at every point.
    PerPoint,
}

/// Copies a model block onto the diagonal of the global matrix.
fn write_block(global: &mut CMatrix, offset: usize, block: &CMatrix) {
    let n = block.rows();
    for r in 0..n {
        for c in 0..n {
            *global.at_mut(offset + r, offset + c) = block.at(r, c);
        }
    }
}

/// Reusable per-worker storage for the per-point solve. Create via
/// [`SweepPlan::workspace`] (or re-target an existing one with
/// [`SweepPlan::reset_workspace`]); all buffers are sized once and reused,
/// so the steady-state point loop never touches the allocator.
#[derive(Debug)]
pub struct SolveWorkspace {
    /// Assembled block-diagonal global S-matrix.
    global: CMatrix,
    /// `I − P·S_ii` (Dense).
    system: CMatrix,
    /// `P·S_ie` (Dense).
    rhs: CMatrix,
    /// `(I − P·S_ii)⁻¹ P·S_ie` (Dense).
    x: CMatrix,
    /// LU factors + pivot permutation, re-factored in place per point.
    lu: LuDecomposition,
    /// In-place elimination buffer.
    elim: CMatrix,
    /// Scratch: pivot row `p` gathered onto the surviving columns.
    elim_row_p: Vec<Complex>,
    /// Scratch: pivot row `q` gathered onto the surviving columns.
    elim_row_q: Vec<Complex>,
    /// Numeric block-sparse factor, re-factored per point (BlockSparse).
    bs_lu: BlockSparseLu,
    /// Baseline image of the wavelength-independent system assembly
    /// (split-complex, the solver's panel layout).
    bs_baseline: SplitComplexVec,
    /// Baseline image of the wavelength-independent RHS panel.
    bs_rhs_baseline: SplitComplexVec,
    /// RHS panel, solved in place into the internal-wave solution `X`.
    bs_x: SplitComplexVec,
    /// Split staging buffer for the `S_ee + S_ei·X` combine.
    bs_stage: SplitComplexVec,
}

impl SolveWorkspace {
    /// An empty workspace. Any plan can adopt it via
    /// [`SweepPlan::reset_workspace`]; its buffers then grow to the
    /// largest circuit seen and are reused thereafter.
    pub fn new() -> Self {
        SolveWorkspace {
            global: CMatrix::zeros(0, 0),
            system: CMatrix::zeros(0, 0),
            rhs: CMatrix::zeros(0, 0),
            x: CMatrix::zeros(0, 0),
            lu: LuDecomposition::empty(),
            elim: CMatrix::zeros(0, 0),
            elim_row_p: Vec::new(),
            elim_row_q: Vec::new(),
            bs_lu: BlockSparseLu::new(),
            bs_baseline: SplitComplexVec::new(),
            bs_rhs_baseline: SplitComplexVec::new(),
            bs_x: SplitComplexVec::new(),
            bs_stage: SplitComplexVec::new(),
        }
    }
}

impl Default for SolveWorkspace {
    fn default() -> Self {
        SolveWorkspace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::evaluate;
    use crate::registry::ModelRegistry;
    use picbench_netlist::{Netlist, NetlistBuilder};

    fn elaborate(netlist: &Netlist) -> Circuit {
        let registry = ModelRegistry::with_builtins();
        Circuit::elaborate(netlist, &registry, None).unwrap()
    }

    fn mzi_from_parts() -> Netlist {
        NetlistBuilder::new()
            .instance("split", "mmi1x2")
            .instance("combine", "mmi1x2")
            .instance_with("top", "waveguide", &[("length", 10.0)])
            .instance_with("bottom", "waveguide", &[("length", 25.0)])
            .connect("split,O1", "top,I1")
            .connect("split,O2", "bottom,I1")
            .connect("top,O1", "combine,O1")
            .connect("bottom,O1", "combine,O2")
            .port("I1", "split,I1")
            .port("O1", "combine,I1")
            .model("mmi1x2", "mmi1x2")
            .model("waveguide", "waveguide")
            .build()
    }

    #[test]
    fn plan_matches_naive_evaluate_on_both_backends() {
        let circuit = elaborate(&mzi_from_parts());
        for backend in Backend::ALL {
            let plan = SweepPlan::new(&circuit, backend).unwrap();
            let mut ws = plan.workspace();
            let mut out = CMatrix::zeros(0, 0);
            let mut wl = 1.51;
            while wl <= 1.59 {
                plan.evaluate_into(&mut ws, wl, &mut out).unwrap();
                let naive = evaluate(&circuit, wl, backend).unwrap();
                assert!(
                    out.max_abs_diff(naive.matrix()) < 1e-12,
                    "{backend} disagrees at {wl}: {:.3e}",
                    out.max_abs_diff(naive.matrix())
                );
                wl += 0.01;
            }
        }
    }

    #[test]
    fn plan_memoizes_dispersionless_instances() {
        let circuit = elaborate(&mzi_from_parts());
        let plan = SweepPlan::new(&circuit, Backend::Dense).unwrap();
        // The two MMIs are wavelength-independent; the two waveguides are
        // not.
        assert_eq!(plan.memoized_instance_count(), 2);
    }

    #[test]
    fn workspace_reuse_is_stable() {
        // Evaluating the same wavelength twice through one workspace must
        // be bit-identical — stale state may not leak between points.
        let circuit = elaborate(&mzi_from_parts());
        for backend in Backend::ALL {
            let plan = SweepPlan::new(&circuit, backend).unwrap();
            let mut ws = plan.workspace();
            let mut first = CMatrix::zeros(0, 0);
            let mut again = CMatrix::zeros(0, 0);
            plan.evaluate_into(&mut ws, 1.55, &mut first).unwrap();
            plan.evaluate_into(&mut ws, 1.532, &mut again).unwrap();
            plan.evaluate_into(&mut ws, 1.55, &mut again).unwrap();
            assert_eq!(first, again, "{backend}");
        }
    }

    #[test]
    fn reset_workspace_matches_fresh_workspace() {
        // A workspace left dirty by a *different* (larger) circuit must be
        // fully re-targeted: same bits as a fresh workspace.
        let big = elaborate(&mzi_from_parts());
        let small_netlist = NetlistBuilder::new()
            .instance_with("wg", "waveguide", &[("length", 5.0)])
            .port("I1", "wg,I1")
            .port("O1", "wg,O1")
            .model("waveguide", "waveguide")
            .build();
        let small = elaborate(&small_netlist);
        for backend in Backend::ALL {
            let big_plan = SweepPlan::new(&big, backend).unwrap();
            let small_plan = SweepPlan::new(&small, backend).unwrap();
            let mut ws = big_plan.workspace();
            let mut scratch = CMatrix::zeros(0, 0);
            big_plan.evaluate_into(&mut ws, 1.55, &mut scratch).unwrap();
            // Re-target the dirty workspace at the small circuit.
            small_plan.reset_workspace(&mut ws);
            let mut reused = CMatrix::zeros(0, 0);
            small_plan
                .evaluate_into(&mut ws, 1.55, &mut reused)
                .unwrap();
            let mut fresh_ws = small_plan.workspace();
            let mut fresh = CMatrix::zeros(0, 0);
            small_plan
                .evaluate_into(&mut fresh_ws, 1.55, &mut fresh)
                .unwrap();
            assert_eq!(reused, fresh, "{backend}");
        }
    }

    #[test]
    fn schedule_cache_shares_topologies() {
        let a = elaborate(&mzi_from_parts());
        // Same topology, different settings.
        let mut tweaked = mzi_from_parts();
        tweaked
            .instances
            .get_mut("top")
            .unwrap()
            .settings
            .insert("length".to_string(), 40.0);
        let b = elaborate(&tweaked);
        let mut cache = ScheduleCache::new();
        let sa = cache.get_or_build(&a);
        let sb = cache.get_or_build(&b);
        assert!(Arc::ptr_eq(&sa, &sb), "same topology must share a schedule");
        assert_eq!(cache.len(), 1);

        // A cached-schedule plan computes the same bits as a fresh plan.
        for backend in Backend::ALL {
            let cached_plan = SweepPlan::with_schedule(&b, backend, Arc::clone(&sb)).unwrap();
            let fresh_plan = SweepPlan::new(&b, backend).unwrap();
            let mut ws_c = cached_plan.workspace();
            let mut ws_f = fresh_plan.workspace();
            let mut out_c = CMatrix::zeros(0, 0);
            let mut out_f = CMatrix::zeros(0, 0);
            cached_plan
                .evaluate_into(&mut ws_c, 1.547, &mut out_c)
                .unwrap();
            fresh_plan
                .evaluate_into(&mut ws_f, 1.547, &mut out_f)
                .unwrap();
            assert_eq!(out_c, out_f, "{backend}");
        }
    }

    #[test]
    fn no_connections_circuit_short_circuits() {
        let netlist = NetlistBuilder::new()
            .instance_with("wg", "waveguide", &[("length", 5.0)])
            .port("I1", "wg,I1")
            .port("O1", "wg,O1")
            .model("waveguide", "waveguide")
            .build();
        let circuit = elaborate(&netlist);
        for backend in Backend::ALL {
            let plan = SweepPlan::new(&circuit, backend).unwrap();
            let mut ws = plan.workspace();
            let mut out = CMatrix::zeros(0, 0);
            plan.evaluate_into(&mut ws, 1.55, &mut out).unwrap();
            let naive = evaluate(&circuit, 1.55, backend).unwrap();
            assert!(out.max_abs_diff(naive.matrix()) < 1e-14);
        }
    }

    #[test]
    fn model_errors_carry_instance_names() {
        let netlist = NetlistBuilder::new()
            .instance_with("badcoupler", "coupler", &[("coupling", 2.0)])
            .port("I1", "badcoupler,I1")
            .port("O1", "badcoupler,O1")
            .model("coupler", "coupler")
            .build();
        let circuit = elaborate(&netlist);
        // The coupler is wavelength-independent, so the invalid setting
        // surfaces at plan construction.
        let err = SweepPlan::new(&circuit, Backend::Dense).unwrap_err();
        match &err {
            SimError::Model { instance, .. } => assert_eq!(instance, "badcoupler"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
