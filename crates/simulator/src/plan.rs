//! The plan/execute split of the wavelength-sweep hot path.
//!
//! A wavelength sweep evaluates the same circuit at many wavelengths. The
//! naive path ([`crate::evaluate`]) rebuilds everything from scratch at
//! every point: it re-derives the external/internal port partition, the
//! connection permutation and the elimination order, allocates a dozen
//! intermediate matrices, and re-evaluates every component model — even
//! the dispersionless ones whose S-matrix cannot change.
//!
//! This module freezes all wavelength-*independent* work into a
//! [`SweepPlan`] built once per circuit:
//!
//! * the external port index list and name list,
//! * for [`Backend::Dense`]: the internal port list and the *pre-permuted*
//!   gather indices that fuse `P·S_ii` and `P·S_ie` into direct reads of
//!   the assembled global matrix,
//! * for [`Backend::PortElimination`]: the per-connection pivot positions
//!   and surviving-row (`keep`) index lists of Filipsson's reduction,
//! * a per-instance S-matrix memo ([`SMatrixMemo`]) holding the blocks of
//!   wavelength-independent models, evaluated exactly once.
//!
//! The per-point state lives in a [`SolveWorkspace`]: the assembled global
//! matrix, the dense system and right-hand side, LU storage and the
//! elimination ping-pong buffers. All of it is reused between points, so
//! the steady-state scattering solve performs **zero heap allocations**
//! (dispersive component models still build their own small S-matrices;
//! every wavelength-independent model is served from the memo). Each
//! worker thread of the parallel sweep owns one workspace.
//!
//! Two plan-based sweeps (serial or parallel) are bit-identical. Against
//! the naive path, the Dense backend follows the same operation order
//! exactly; the elimination backend regroups the Filipsson numerator into
//! two fused coefficient terms, so plan and naive agree to machine
//! precision (~1e-15) rather than bit for bit — cross-checks must compare
//! with a tolerance, as the property tests do.

use crate::backend::{Backend, SimError};
use crate::elaborate::Circuit;
use picbench_math::{CMatrix, Complex, LuDecomposition};
use picbench_sparams::SMatrixMemo;

/// One precomputed step of the port-elimination reduction: the current
/// row/column positions of the connected port pair and the indices of the
/// surviving rows.
#[derive(Debug, Clone)]
struct ElimStep {
    p: usize,
    q: usize,
    keep: Vec<usize>,
}

/// Everything about a sweep that does not depend on wavelength, computed
/// once per circuit. See the [module docs](self) for the full story.
#[derive(Debug)]
pub struct SweepPlan<'c> {
    circuit: &'c Circuit,
    backend: Backend,
    /// External port global indices, in netlist order.
    ext_idx: Vec<usize>,
    /// Internal (connected) port global indices — Dense backend.
    int_idx: Vec<usize>,
    /// `int_idx[swap[r]]`: row gather indices with the connection
    /// permutation already applied, so `P·S_ii` and `P·S_ie` are direct
    /// reads of the global matrix — Dense backend.
    perm_int_idx: Vec<usize>,
    /// Reduction schedule — PortElimination backend.
    elim_steps: Vec<ElimStep>,
    /// Final positions of the external ports after the reduction —
    /// PortElimination backend.
    elim_ext_rows: Vec<usize>,
    /// Per-instance memo; holds the block of every wavelength-independent
    /// model after construction.
    memos: Vec<SMatrixMemo>,
}

/// Reference wavelength used to capture wavelength-independent S-matrices.
/// Any value works by definition; the C-band centre keeps diagnostics
/// unsurprising.
const MEMO_WAVELENGTH_UM: f64 = 1.55;

impl<'c> SweepPlan<'c> {
    /// Builds the plan for sweeping `circuit` with `backend`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Model`] when a wavelength-independent model
    /// rejects its settings (dispersive models are evaluated per point and
    /// report their errors from [`SweepPlan::evaluate_into`] instead).
    pub fn new(circuit: &'c Circuit, backend: Backend) -> Result<Self, SimError> {
        let n0 = circuit.total_ports;
        let ext_idx: Vec<usize> = circuit.externals.iter().map(|(_, i)| *i).collect();

        // Dense: internal partition and pre-permuted gather rows.
        let mut int_idx: Vec<usize> = Vec::with_capacity(circuit.connections.len() * 2);
        for &(a, b) in &circuit.connections {
            int_idx.push(a);
            int_idx.push(b);
        }
        // Connected pairs sit at adjacent positions (2k, 2k+1), so the
        // permutation swaps each even position with the following odd one.
        let mut perm_int_idx = vec![0usize; int_idx.len()];
        for k in 0..circuit.connections.len() {
            perm_int_idx[2 * k] = int_idx[2 * k + 1];
            perm_int_idx[2 * k + 1] = int_idx[2 * k];
        }

        // PortElimination: replay the index bookkeeping of the reduction
        // once, recording pivot positions and keep lists.
        const GONE: usize = usize::MAX;
        let mut index: Vec<usize> = (0..n0).collect();
        let mut n = n0;
        let mut elim_steps = Vec::with_capacity(circuit.connections.len());
        let mut new_pos = vec![GONE; n0];
        for &(ga, gb) in &circuit.connections {
            let p = index[ga];
            let q = index[gb];
            debug_assert!(p != GONE && q != GONE, "port connected twice");
            let keep: Vec<usize> = (0..n).filter(|&k| k != p && k != q).collect();
            for (ri, &old) in keep.iter().enumerate() {
                new_pos[old] = ri;
            }
            for gi in index.iter_mut() {
                if *gi != GONE {
                    *gi = new_pos[*gi];
                }
            }
            new_pos[..n].fill(GONE);
            n -= 2;
            elim_steps.push(ElimStep { p, q, keep });
        }
        let elim_ext_rows: Vec<usize> = circuit.externals.iter().map(|(_, g)| index[*g]).collect();
        debug_assert!(elim_ext_rows.iter().all(|&r| r != GONE));

        // Memoize every wavelength-independent instance once.
        let mut memos = Vec::with_capacity(circuit.instances.len());
        for inst in &circuit.instances {
            let mut memo = SMatrixMemo::new();
            if inst.model.is_wavelength_independent(&inst.settings) {
                memo.get_or_eval(inst.model.as_ref(), MEMO_WAVELENGTH_UM, &inst.settings)
                    .map_err(|source| SimError::Model {
                        instance: inst.name.clone(),
                        source,
                    })?;
            }
            memos.push(memo);
        }

        Ok(SweepPlan {
            circuit,
            backend,
            ext_idx,
            int_idx,
            perm_int_idx,
            elim_steps,
            elim_ext_rows,
            memos,
        })
    }

    /// The circuit this plan was built for.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// The composition backend this plan executes.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Number of external ports.
    pub fn external_count(&self) -> usize {
        self.ext_idx.len()
    }

    /// How many instances are served from the wavelength-independent memo
    /// (diagnostics; the rest are re-evaluated at every point).
    pub fn memoized_instance_count(&self) -> usize {
        self.memos.iter().filter(|m| m.is_cached()).count()
    }

    /// Allocates a workspace sized for this plan, with all memoized blocks
    /// already written into the global matrix.
    pub fn workspace(&self) -> SolveWorkspace {
        let n0 = self.circuit.total_ports;
        let n_int = self.int_idx.len();
        let n_ext = self.ext_idx.len();
        let mut ws = SolveWorkspace {
            global: CMatrix::zeros(n0, n0),
            system: CMatrix::zeros(n_int, n_int),
            rhs: CMatrix::zeros(n_int, n_ext),
            x: CMatrix::zeros(n_int, n_ext),
            lu: LuDecomposition::empty(),
            elim_a: CMatrix::zeros(n0, n0),
            elim_b: CMatrix::zeros(n0, n0),
        };
        for (inst, memo) in self.circuit.instances.iter().zip(&self.memos) {
            if let Some(block) = memo.cached() {
                write_block(&mut ws.global, inst.port_offset, block.matrix());
            }
        }
        ws
    }

    /// Evaluates the external S-matrix at one wavelength into `out`
    /// (reshaped to `n_ext × n_ext`), reusing `ws` for every intermediate.
    ///
    /// # Errors
    ///
    /// Mirrors [`crate::evaluate`]: [`SimError::Model`] when a dispersive
    /// model fails, [`SimError::SingularSystem`] on an undamped resonant
    /// loop, [`SimError::NonFiniteResult`] on a non-finite response.
    pub fn evaluate_into(
        &self,
        ws: &mut SolveWorkspace,
        wavelength_um: f64,
        out: &mut CMatrix,
    ) -> Result<(), SimError> {
        // Refresh the dispersive blocks; memoized blocks were written at
        // workspace construction and never change.
        for (inst, memo) in self.circuit.instances.iter().zip(&self.memos) {
            if memo.is_cached() {
                continue;
            }
            let s = inst
                .model
                .s_matrix(wavelength_um, &inst.settings)
                .map_err(|source| SimError::Model {
                    instance: inst.name.clone(),
                    source,
                })?;
            write_block(&mut ws.global, inst.port_offset, s.matrix());
        }

        match self.backend {
            Backend::Dense => self.evaluate_dense(ws, wavelength_um, out)?,
            Backend::PortElimination => self.evaluate_elimination(ws, wavelength_um, out)?,
        }
        if !out.is_finite() {
            return Err(SimError::NonFiniteResult { wavelength_um });
        }
        Ok(())
    }

    /// Dense global scattering solve
    /// `S_ext = S_ee + S_ei (I − P·S_ii)⁻¹ P·S_ie`, with the permutation
    /// folded into gather indices and all products running on workspace
    /// buffers.
    fn evaluate_dense(
        &self,
        ws: &mut SolveWorkspace,
        wavelength_um: f64,
        out: &mut CMatrix,
    ) -> Result<(), SimError> {
        let n_int = self.int_idx.len();
        let n_ext = self.ext_idx.len();
        out.reshape(n_ext, n_ext);

        if n_int == 0 {
            for r in 0..n_ext {
                for c in 0..n_ext {
                    *out.at_mut(r, c) = ws.global.at(self.ext_idx[r], self.ext_idx[c]);
                }
            }
            return Ok(());
        }

        // system = I − P·S_ii and rhs = P·S_ie, gathered straight from the
        // global matrix through the pre-permuted row indices.
        ws.system.reshape(n_int, n_int);
        ws.rhs.reshape(n_int, n_ext);
        for r in 0..n_int {
            let src_r = self.perm_int_idx[r];
            for c in 0..n_int {
                let v = ws.global.at(src_r, self.int_idx[c]);
                *ws.system.at_mut(r, c) = if r == c { Complex::ONE - v } else { -v };
            }
            for c in 0..n_ext {
                *ws.rhs.at_mut(r, c) = ws.global.at(src_r, self.ext_idx[c]);
            }
        }

        ws.lu
            .factor_into(&ws.system)
            .map_err(|_| SimError::SingularSystem { wavelength_um })?;
        ws.lu.solve_matrix_into(&ws.rhs, &mut ws.x);

        // S_ext = S_ee + S_ei · X, with S_ee and S_ei read directly from
        // the global matrix.
        for r in 0..n_ext {
            let g_r = self.ext_idx[r];
            for c in 0..n_ext {
                let mut acc = Complex::ZERO;
                for (k, &g_k) in self.int_idx.iter().enumerate() {
                    acc += ws.global.at(g_r, g_k) * ws.x.at(k, c);
                }
                *out.at_mut(r, c) = ws.global.at(g_r, self.ext_idx[c]) + acc;
            }
        }
        Ok(())
    }

    /// Filipsson pairwise reduction over the precomputed schedule, ping-
    /// ponging between the two workspace buffers.
    fn evaluate_elimination(
        &self,
        ws: &mut SolveWorkspace,
        wavelength_um: f64,
        out: &mut CMatrix,
    ) -> Result<(), SimError> {
        ws.elim_a.copy_from(&ws.global);
        let (mut cur, mut next) = (&mut ws.elim_a, &mut ws.elim_b);

        for step in &self.elim_steps {
            let (p, q) = (step.p, step.q);
            let s_pq = cur.at(p, q);
            let s_qp = cur.at(q, p);
            let s_pp = cur.at(p, p);
            let s_qq = cur.at(q, q);
            let one_m_pq = Complex::ONE - s_pq;
            let one_m_qp = Complex::ONE - s_qp;
            let denom = one_m_pq * one_m_qp - s_pp * s_qq;
            if denom.abs() < 1e-300 {
                return Err(SimError::SingularSystem { wavelength_um });
            }
            let inv_d = denom.recip();

            let m = step.keep.len();
            next.reshape(m, m);
            let src: &CMatrix = cur;
            let row_p = src.row_slice(p);
            let row_q = src.row_slice(q);
            for (ri, &i) in step.keep.iter().enumerate() {
                let s_ip = src.at(i, p);
                let s_iq = src.at(i, q);
                // Group the terms by their shared row-q / row-p factors so
                // the inner loop does two fused multiplies per source row.
                let coeff_q = one_m_pq * s_ip + s_pp * s_iq;
                let coeff_p = s_qq * s_ip + one_m_qp * s_iq;
                let row_i = src.row_slice(i);
                let next_row = &mut next.as_mut_slice()[ri * m..(ri + 1) * m];
                for (cj, &j) in step.keep.iter().enumerate() {
                    let numer = row_q[j] * coeff_q + row_p[j] * coeff_p;
                    next_row[cj] = row_i[j] + numer * inv_d;
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }

        let n_ext = self.elim_ext_rows.len();
        out.reshape(n_ext, n_ext);
        for (r, &src_r) in self.elim_ext_rows.iter().enumerate() {
            for (c, &src_c) in self.elim_ext_rows.iter().enumerate() {
                *out.at_mut(r, c) = cur.at(src_r, src_c);
            }
        }
        Ok(())
    }
}

/// Copies a model block onto the diagonal of the global matrix.
fn write_block(global: &mut CMatrix, offset: usize, block: &CMatrix) {
    let n = block.rows();
    for r in 0..n {
        for c in 0..n {
            *global.at_mut(offset + r, offset + c) = block.at(r, c);
        }
    }
}

/// Reusable per-worker storage for the per-point solve. Create via
/// [`SweepPlan::workspace`]; all buffers are sized once and reused, so the
/// steady-state point loop never touches the allocator.
#[derive(Debug)]
pub struct SolveWorkspace {
    /// Assembled block-diagonal global S-matrix.
    global: CMatrix,
    /// `I − P·S_ii` (Dense).
    system: CMatrix,
    /// `P·S_ie` (Dense).
    rhs: CMatrix,
    /// `(I − P·S_ii)⁻¹ P·S_ie` (Dense).
    x: CMatrix,
    /// LU factors + pivot permutation, re-factored in place per point.
    lu: LuDecomposition,
    /// Elimination ping-pong buffer A.
    elim_a: CMatrix,
    /// Elimination ping-pong buffer B.
    elim_b: CMatrix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::evaluate;
    use crate::registry::ModelRegistry;
    use picbench_netlist::{Netlist, NetlistBuilder};

    fn elaborate(netlist: &Netlist) -> Circuit {
        let registry = ModelRegistry::with_builtins();
        Circuit::elaborate(netlist, &registry, None).unwrap()
    }

    fn mzi_from_parts() -> Netlist {
        NetlistBuilder::new()
            .instance("split", "mmi1x2")
            .instance("combine", "mmi1x2")
            .instance_with("top", "waveguide", &[("length", 10.0)])
            .instance_with("bottom", "waveguide", &[("length", 25.0)])
            .connect("split,O1", "top,I1")
            .connect("split,O2", "bottom,I1")
            .connect("top,O1", "combine,O1")
            .connect("bottom,O1", "combine,O2")
            .port("I1", "split,I1")
            .port("O1", "combine,I1")
            .model("mmi1x2", "mmi1x2")
            .model("waveguide", "waveguide")
            .build()
    }

    #[test]
    fn plan_matches_naive_evaluate_on_both_backends() {
        let circuit = elaborate(&mzi_from_parts());
        for backend in [Backend::Dense, Backend::PortElimination] {
            let plan = SweepPlan::new(&circuit, backend).unwrap();
            let mut ws = plan.workspace();
            let mut out = CMatrix::zeros(0, 0);
            let mut wl = 1.51;
            while wl <= 1.59 {
                plan.evaluate_into(&mut ws, wl, &mut out).unwrap();
                let naive = evaluate(&circuit, wl, backend).unwrap();
                assert!(
                    out.max_abs_diff(naive.matrix()) < 1e-12,
                    "{backend} disagrees at {wl}: {:.3e}",
                    out.max_abs_diff(naive.matrix())
                );
                wl += 0.01;
            }
        }
    }

    #[test]
    fn plan_memoizes_dispersionless_instances() {
        let circuit = elaborate(&mzi_from_parts());
        let plan = SweepPlan::new(&circuit, Backend::Dense).unwrap();
        // The two MMIs are wavelength-independent; the two waveguides are
        // not.
        assert_eq!(plan.memoized_instance_count(), 2);
    }

    #[test]
    fn workspace_reuse_is_stable() {
        // Evaluating the same wavelength twice through one workspace must
        // be bit-identical — stale state may not leak between points.
        let circuit = elaborate(&mzi_from_parts());
        for backend in [Backend::Dense, Backend::PortElimination] {
            let plan = SweepPlan::new(&circuit, backend).unwrap();
            let mut ws = plan.workspace();
            let mut first = CMatrix::zeros(0, 0);
            let mut again = CMatrix::zeros(0, 0);
            plan.evaluate_into(&mut ws, 1.55, &mut first).unwrap();
            plan.evaluate_into(&mut ws, 1.532, &mut again).unwrap();
            plan.evaluate_into(&mut ws, 1.55, &mut again).unwrap();
            assert_eq!(first, again, "{backend}");
        }
    }

    #[test]
    fn no_connections_circuit_short_circuits() {
        let netlist = NetlistBuilder::new()
            .instance_with("wg", "waveguide", &[("length", 5.0)])
            .port("I1", "wg,I1")
            .port("O1", "wg,O1")
            .model("waveguide", "waveguide")
            .build();
        let circuit = elaborate(&netlist);
        for backend in [Backend::Dense, Backend::PortElimination] {
            let plan = SweepPlan::new(&circuit, backend).unwrap();
            let mut ws = plan.workspace();
            let mut out = CMatrix::zeros(0, 0);
            plan.evaluate_into(&mut ws, 1.55, &mut out).unwrap();
            let naive = evaluate(&circuit, 1.55, backend).unwrap();
            assert!(out.max_abs_diff(naive.matrix()) < 1e-14);
        }
    }

    #[test]
    fn model_errors_carry_instance_names() {
        let netlist = NetlistBuilder::new()
            .instance_with("badcoupler", "coupler", &[("coupling", 2.0)])
            .port("I1", "badcoupler,I1")
            .port("O1", "badcoupler,O1")
            .model("coupler", "coupler")
            .build();
        let circuit = elaborate(&netlist);
        // The coupler is wavelength-independent, so the invalid setting
        // surfaces at plan construction.
        let err = SweepPlan::new(&circuit, Backend::Dense).unwrap_err();
        match &err {
            SimError::Model { instance, .. } => assert_eq!(instance, "badcoupler"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
