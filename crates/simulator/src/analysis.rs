//! Spectrum analysis utilities: peak/notch finding, free spectral range,
//! 3 dB bandwidth, insertion loss and extinction ratio.
//!
//! These operate on the dB transmission series produced by
//! [`FrequencyResponse::transmission_db`] and power the WDM / filter
//! examples and ablation benches.
//!
//! [`FrequencyResponse::transmission_db`]: crate::FrequencyResponse::transmission_db

/// A local extremum in a transmission spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralPeak {
    /// Index into the wavelength grid.
    pub index: usize,
    /// Wavelength at the extremum (µm).
    pub wavelength_um: f64,
    /// Transmission at the extremum (dB).
    pub value_db: f64,
}

/// Finds local maxima with at least `min_prominence_db` of prominence
/// over the higher of the two flanking valleys.
///
/// # Panics
///
/// Panics if `wavelengths` and `values_db` have different lengths.
///
/// # Examples
///
/// ```
/// use picbench_sim::analysis::find_peaks;
/// let wl = vec![1.0, 2.0, 3.0, 4.0, 5.0];
/// let db = vec![-30.0, -3.0, -30.0, -2.0, -30.0];
/// let peaks = find_peaks(&wl, &db, 10.0);
/// assert_eq!(peaks.len(), 2);
/// assert_eq!(peaks[0].wavelength_um, 2.0);
/// ```
pub fn find_peaks(
    wavelengths: &[f64],
    values_db: &[f64],
    min_prominence_db: f64,
) -> Vec<SpectralPeak> {
    assert_eq!(
        wavelengths.len(),
        values_db.len(),
        "wavelength and value series must align"
    );
    let n = values_db.len();
    let mut peaks = Vec::new();
    if n < 3 {
        return peaks;
    }
    for i in 1..n - 1 {
        if values_db[i] < values_db[i - 1] || values_db[i] < values_db[i + 1] {
            continue;
        }
        // Plateau handling: only take the first sample of a flat top.
        if values_db[i] == values_db[i - 1] {
            continue;
        }
        // Prominence: drop to the highest flanking valley.
        let mut left_min = values_db[i];
        for j in (0..i).rev() {
            left_min = left_min.min(values_db[j]);
            if values_db[j] > values_db[i] {
                break;
            }
        }
        let mut right_min = values_db[i];
        for j in i + 1..n {
            right_min = right_min.min(values_db[j]);
            if values_db[j] > values_db[i] {
                break;
            }
        }
        let prominence = values_db[i] - left_min.max(right_min);
        if prominence >= min_prominence_db {
            peaks.push(SpectralPeak {
                index: i,
                wavelength_um: wavelengths[i],
                value_db: values_db[i],
            });
        }
    }
    peaks
}

/// Finds local minima (notches) with the given prominence.
pub fn find_notches(
    wavelengths: &[f64],
    values_db: &[f64],
    min_prominence_db: f64,
) -> Vec<SpectralPeak> {
    let inverted: Vec<f64> = values_db.iter().map(|v| -v).collect();
    find_peaks(wavelengths, &inverted, min_prominence_db)
        .into_iter()
        .map(|p| SpectralPeak {
            value_db: -p.value_db,
            ..p
        })
        .collect()
}

/// Mean spacing between consecutive extrema — the free spectral range in
/// µm. Returns `None` with fewer than two extrema.
pub fn free_spectral_range_um(peaks: &[SpectralPeak]) -> Option<f64> {
    if peaks.len() < 2 {
        return None;
    }
    let total: f64 = peaks
        .windows(2)
        .map(|w| w[1].wavelength_um - w[0].wavelength_um)
        .sum();
    Some(total / (peaks.len() - 1) as f64)
}

/// The theoretical interferometric FSR `λ²/(n_g·ΔL)` in µm.
///
/// ```
/// use picbench_sim::analysis::theoretical_fsr_um;
/// let fsr = theoretical_fsr_um(1.55, 4.2, 30.0);
/// assert!((fsr - 0.01906).abs() < 1e-4);
/// ```
pub fn theoretical_fsr_um(wavelength_um: f64, group_index: f64, delta_length_um: f64) -> f64 {
    wavelength_um * wavelength_um / (group_index * delta_length_um)
}

/// Full width of the region around `peak` that stays within 3 dB of its
/// value, in µm (linear interpolation at the crossings). Returns `None`
/// when a 3 dB crossing is missing on either side.
pub fn bandwidth_3db(wavelengths: &[f64], values_db: &[f64], peak: &SpectralPeak) -> Option<f64> {
    let threshold = peak.value_db - 3.0;
    let crossing = |i0: usize, i1: usize| -> f64 {
        // Linear interpolation between samples i0 (above) and i1 (below).
        let (w0, v0) = (wavelengths[i0], values_db[i0]);
        let (w1, v1) = (wavelengths[i1], values_db[i1]);
        w0 + (threshold - v0) * (w1 - w0) / (v1 - v0)
    };
    let mut left = None;
    for i in (0..peak.index).rev() {
        if values_db[i] < threshold {
            left = Some(crossing(i + 1, i));
            break;
        }
    }
    let mut right = None;
    for (i, &value) in values_db.iter().enumerate().skip(peak.index + 1) {
        if value < threshold {
            right = Some(crossing(i - 1, i));
            break;
        }
    }
    match (left, right) {
        (Some(l), Some(r)) => Some(r - l),
        _ => None,
    }
}

/// Insertion loss: the best transmission in the band, negated (dB).
pub fn insertion_loss_db(values_db: &[f64]) -> f64 {
    -values_db.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Extinction ratio: best minus worst transmission (dB).
pub fn extinction_ratio_db(values_db: &[f64]) -> f64 {
    let max = values_db.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values_db.iter().cloned().fold(f64::INFINITY, f64::min);
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_netlist, Backend, ModelRegistry, WavelengthGrid};
    use picbench_netlist::NetlistBuilder;

    fn mzi_spectrum(delta: f64) -> (Vec<f64>, Vec<f64>) {
        let netlist = NetlistBuilder::new()
            .instance_with("m", "mzi", &[("delta_length", delta), ("loss", 0.0)])
            .port("I1", "m,I1")
            .port("O1", "m,O1")
            .model("mzi", "mzi")
            .build();
        let registry = ModelRegistry::with_builtins();
        let response = simulate_netlist(
            &netlist,
            &registry,
            None,
            &WavelengthGrid::new(1.51, 1.59, 801),
            Backend::default(),
        )
        .unwrap();
        (
            response.wavelengths().to_vec(),
            response.transmission_db("I1", "O1").unwrap(),
        )
    }

    #[test]
    fn mzi_fsr_matches_theory() {
        let delta = 30.0;
        let (wl, db) = mzi_spectrum(delta);
        let peaks = find_peaks(&wl, &db, 10.0);
        assert!(
            peaks.len() >= 3,
            "expected several fringes, got {}",
            peaks.len()
        );
        let measured = free_spectral_range_um(&peaks).unwrap();
        let expected = theoretical_fsr_um(1.55, 4.2, delta);
        let rel_err = (measured - expected).abs() / expected;
        assert!(
            rel_err < 0.05,
            "FSR {measured:.5} vs theory {expected:.5} ({:.1}% off)",
            rel_err * 100.0
        );
    }

    #[test]
    fn notches_interleave_peaks() {
        let (wl, db) = mzi_spectrum(30.0);
        let peaks = find_peaks(&wl, &db, 10.0);
        let notches = find_notches(&wl, &db, 10.0);
        assert!(!notches.is_empty());
        // Between two consecutive peaks there is exactly one notch.
        for pair in peaks.windows(2) {
            let inside = notches
                .iter()
                .filter(|n| {
                    n.wavelength_um > pair[0].wavelength_um
                        && n.wavelength_um < pair[1].wavelength_um
                })
                .count();
            assert_eq!(inside, 1);
        }
    }

    #[test]
    fn bandwidth_is_positive_and_below_fsr() {
        let (wl, db) = mzi_spectrum(30.0);
        let peaks = find_peaks(&wl, &db, 10.0);
        let fsr = free_spectral_range_um(&peaks).unwrap();
        // Interior peak with both crossings present.
        let peak = &peaks[peaks.len() / 2];
        let bw = bandwidth_3db(&wl, &db, peak).expect("crossings exist");
        assert!(bw > 0.0);
        assert!(bw < fsr, "3 dB bandwidth {bw} must be below the FSR {fsr}");
        // For a sinusoidal fringe the 3 dB width is half the period.
        assert!((bw - fsr / 2.0).abs() / (fsr / 2.0) < 0.1);
    }

    #[test]
    fn loss_and_extinction_of_lossless_mzi() {
        let (_, db) = mzi_spectrum(30.0);
        assert!(
            insertion_loss_db(&db) < 0.01,
            "lossless fringe peaks at 0 dB"
        );
        assert!(
            extinction_ratio_db(&db) > 30.0,
            "deep interferometric nulls"
        );
    }

    #[test]
    fn degenerate_series() {
        assert!(find_peaks(&[1.0, 2.0], &[0.0, 0.0], 1.0).is_empty());
        assert_eq!(free_spectral_range_um(&[]), None);
        let flat = vec![-1.0; 10];
        assert_eq!(extinction_ratio_db(&flat), 0.0);
        assert_eq!(insertion_loss_db(&flat), 1.0);
    }
}
