//! Canonicalization and content-addressed hashing of netlists.
//!
//! LLM responses (and the synthetic corruption engine) routinely produce
//! documents that are *structurally identical* but differ in JSON key
//! order, instance ordering, or connection endpoint direction. The
//! evaluation cache must treat all of those as one design, and — because
//! cached results are replayed bit for bit — the simulator must also
//! *evaluate* all of them identically.
//!
//! Both needs are served by one definition: the **canonical form** of a
//! netlist.
//!
//! * instances sorted by name, each instance's settings sorted by key;
//! * every connection's endpoints ordered lexicographically by
//!   `(instance, port)` (the pairwise interconnect is symmetric, so the
//!   JSON key/value direction carries no information);
//! * connections sorted by their ordered endpoints;
//! * external ports sorted by external name;
//! * model bindings sorted by component.
//!
//! [`Netlist::canonicalize`] produces that form; [`Netlist::content_hash`]
//! is a 64-bit FNV-1a digest *of* that form, computed without building it.
//! The two are consistent by construction:
//! `n.canonicalize().content_hash() == n.content_hash()`, and the hash is
//! invariant under instance reordering, JSON key permutation and
//! connection flips — but distinct under any change to a component,
//! setting value, connection, port or model binding.

use crate::schema::{Connection, Netlist, PortRef};
use crate::OrderedMap;

/// Incremental FNV-1a (64-bit) over length-delimited fields.
///
/// Every variable-length field is prefixed with its byte length so that
/// adjacent fields can never alias each other's boundaries. Shared by
/// every content digest in the workspace (netlist hashes here, circuit
/// topology hashes in the simulator, cache keys in the evaluator) so the
/// mixing constants live in exactly one place.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;

    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET_BASIS)
    }

    /// One-shot digest of a string (no length delimiter).
    pub fn hash_str(s: &str) -> u64 {
        let mut h = Fnv64::new();
        h.write_bytes(s.as_bytes());
        h.finish()
    }

    /// Mixes raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Mixes a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Mixes a length-delimited string into the digest.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Mixes a float by bit pattern: any representable change — including
    /// `0.0` vs `-0.0` — yields a different digest.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn sorted_keys<V>(map: &OrderedMap<V>) -> Vec<&str> {
    let mut keys: Vec<&str> = map.keys().collect();
    keys.sort_unstable();
    keys
}

fn endpoint_key(p: &PortRef) -> (&str, &str) {
    (p.instance.as_str(), p.port.as_str())
}

/// The connection with its endpoints in canonical (lexicographic) order.
fn ordered_connection(c: &Connection) -> (&PortRef, &PortRef) {
    if endpoint_key(&c.a) <= endpoint_key(&c.b) {
        (&c.a, &c.b)
    } else {
        (&c.b, &c.a)
    }
}

impl Netlist {
    /// Returns the canonical form of this netlist (see the
    /// module docs of `canon`).
    ///
    /// Canonicalization is idempotent, preserves structural validity and
    /// is physically a no-op: the canonical netlist elaborates to an
    /// equivalent circuit. It *does* fix the port numbering and
    /// elimination order the simulator sees, which is exactly why the
    /// evaluation pipeline simulates canonical forms: every member of a
    /// hash class then produces the same frequency response bit for bit.
    pub fn canonicalize(&self) -> Netlist {
        let mut instances = OrderedMap::new();
        for name in sorted_keys(&self.instances) {
            let inst = self.instances.get(name).expect("key from map");
            let mut canon = crate::Instance::new(inst.component.clone());
            for key in sorted_keys(&inst.settings) {
                let value = *inst.settings.get(key).expect("key from map");
                canon.settings.insert(key.to_string(), value);
            }
            instances.insert(name.to_string(), canon);
        }

        let mut connections: Vec<Connection> = self
            .connections
            .iter()
            .map(|c| {
                let (a, b) = ordered_connection(c);
                Connection {
                    a: a.clone(),
                    b: b.clone(),
                }
            })
            .collect();
        connections.sort_by(|x, y| {
            (endpoint_key(&x.a), endpoint_key(&x.b)).cmp(&(endpoint_key(&y.a), endpoint_key(&y.b)))
        });

        let mut ports = OrderedMap::new();
        for name in sorted_keys(&self.ports) {
            ports.insert(name.to_string(), self.ports.get(name).expect("key").clone());
        }

        let mut models = OrderedMap::new();
        for component in sorted_keys(&self.models) {
            models.insert(
                component.to_string(),
                self.models.get(component).expect("key").clone(),
            );
        }

        Netlist {
            instances,
            connections,
            ports,
            models,
        }
    }

    /// 64-bit content hash of the canonical form.
    ///
    /// Two netlists have equal hashes whenever they are structurally
    /// identical — regardless of JSON key order, instance ordering or
    /// connection endpoint direction. Any change to a component type,
    /// setting (key or value bits), connection, external port or model
    /// binding changes the digest (up to the usual 64-bit collision odds).
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str("picbench-netlist/v1");

        h.write_str("instances");
        h.write_u64(self.instances.len() as u64);
        for name in sorted_keys(&self.instances) {
            let inst = self.instances.get(name).expect("key from map");
            h.write_str(name);
            h.write_str(&inst.component);
            h.write_u64(inst.settings.len() as u64);
            for key in sorted_keys(&inst.settings) {
                h.write_str(key);
                h.write_f64(*inst.settings.get(key).expect("key from map"));
            }
        }

        h.write_str("connections");
        h.write_u64(self.connections.len() as u64);
        let mut conns: Vec<(&str, &str, &str, &str)> = self
            .connections
            .iter()
            .map(|c| {
                let (a, b) = ordered_connection(c);
                (
                    a.instance.as_str(),
                    a.port.as_str(),
                    b.instance.as_str(),
                    b.port.as_str(),
                )
            })
            .collect();
        conns.sort_unstable();
        for (ai, ap, bi, bp) in conns {
            h.write_str(ai);
            h.write_str(ap);
            h.write_str(bi);
            h.write_str(bp);
        }

        h.write_str("ports");
        h.write_u64(self.ports.len() as u64);
        for name in sorted_keys(&self.ports) {
            let target = self.ports.get(name).expect("key from map");
            h.write_str(name);
            h.write_str(&target.instance);
            h.write_str(&target.port);
        }

        h.write_str("models");
        h.write_u64(self.models.len() as u64);
        for component in sorted_keys(&self.models) {
            h.write_str(component);
            h.write_str(self.models.get(component).expect("key from map"));
        }

        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn mzi() -> Netlist {
        NetlistBuilder::new()
            .instance("split", "mmi1x2")
            .instance("combine", "mmi1x2")
            .instance_with("top", "waveguide", &[("length", 10.0), ("loss", 2.0)])
            .instance_with("bottom", "waveguide", &[("length", 25.0)])
            .connect("split,O1", "top,I1")
            .connect("split,O2", "bottom,I1")
            .connect("top,O1", "combine,O1")
            .connect("bottom,O1", "combine,O2")
            .port("I1", "split,I1")
            .port("O1", "combine,I1")
            .model("mmi1x2", "mmi1x2")
            .model("waveguide", "waveguide")
            .build()
    }

    /// The same design entered in a different order everywhere.
    fn mzi_permuted() -> Netlist {
        NetlistBuilder::new()
            .instance_with("bottom", "waveguide", &[("length", 25.0)])
            .instance_with("top", "waveguide", &[("loss", 2.0), ("length", 10.0)])
            .instance("combine", "mmi1x2")
            .instance("split", "mmi1x2")
            .connect("combine,O2", "bottom,O1") // flipped endpoints
            .connect("top,O1", "combine,O1")
            .connect("bottom,I1", "split,O2")
            .connect("split,O1", "top,I1")
            .port("O1", "combine,I1")
            .port("I1", "split,I1")
            .model("waveguide", "waveguide")
            .model("mmi1x2", "mmi1x2")
            .build()
    }

    #[test]
    fn hash_invariant_under_reordering_and_flips() {
        assert_eq!(mzi().content_hash(), mzi_permuted().content_hash());
    }

    #[test]
    fn canonical_forms_of_permutations_are_equal() {
        assert_eq!(mzi().canonicalize(), mzi_permuted().canonicalize());
    }

    #[test]
    fn canonicalize_is_idempotent_and_hash_consistent() {
        let n = mzi();
        let canon = n.canonicalize();
        assert_eq!(canon, canon.canonicalize());
        assert_eq!(canon.content_hash(), n.content_hash());
    }

    #[test]
    fn hash_distinct_under_setting_change() {
        let mut tweaked = mzi();
        tweaked
            .instances
            .get_mut("top")
            .unwrap()
            .settings
            .insert("length".to_string(), 10.0 + 1e-12);
        assert_ne!(mzi().content_hash(), tweaked.content_hash());
    }

    #[test]
    fn hash_distinct_under_negative_zero_setting() {
        let mut a = mzi();
        a.instances
            .get_mut("top")
            .unwrap()
            .settings
            .insert("loss".to_string(), 0.0);
        let mut b = mzi();
        b.instances
            .get_mut("top")
            .unwrap()
            .settings
            .insert("loss".to_string(), -0.0);
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn hash_distinct_under_structural_changes() {
        let base = mzi().content_hash();
        let mut renamed = mzi();
        let inst = renamed.instances.remove("top").unwrap();
        renamed.instances.insert("topmost".to_string(), inst);
        assert_ne!(base, renamed.content_hash());

        let mut rewired = mzi();
        rewired.connections[0].b = PortRef::new("bottom", "I1");
        assert_ne!(base, rewired.content_hash());

        let mut reported = mzi();
        reported
            .ports
            .insert("O2".to_string(), PortRef::new("combine", "O2"));
        assert_ne!(base, reported.content_hash());

        let mut remodeled = mzi();
        remodeled
            .models
            .insert("waveguide".to_string(), "mzi".to_string());
        assert_ne!(base, remodeled.content_hash());
    }

    #[test]
    fn canonical_form_roundtrips_through_json() {
        let canon = mzi().canonicalize();
        let back = Netlist::from_json_str(&canon.to_json_string()).unwrap();
        assert_eq!(back, canon);
        assert_eq!(back.content_hash(), canon.content_hash());
    }

    #[test]
    fn empty_netlists_hash_equal() {
        assert_eq!(
            Netlist::default().content_hash(),
            Netlist::default().content_hash()
        );
    }
}
