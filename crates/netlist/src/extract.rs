//! Extraction of the netlist JSON from a raw language-model response.
//!
//! The system prompt asks the model to answer in two sections —
//! `<analysis>` prose and a `<result>` holding only the JSON netlist.
//! Real model output nevertheless arrives with markdown fences, stray
//! prose, or missing tags; the paper's "Extra contents found in JSON"
//! failure type exists precisely because of this.
//!
//! [`extract_payload`] locates the JSON document and reports what else it
//! found, so the evaluator can decide whether the surrounding noise
//! constitutes a classified failure.

use std::error::Error;
use std::fmt;

/// The result of scanning a response for its JSON payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedPayload {
    /// The JSON substring (from first `{` to its matching `}`).
    pub json: String,
    /// Whether a `<result>` section was present.
    pub had_result_tag: bool,
    /// Whether the payload was wrapped in markdown code fences.
    pub had_code_fence: bool,
    /// Non-whitespace text found around the JSON inside the result section
    /// (prose, advice, fence language tags are *not* counted).
    pub extra_content: Option<String>,
}

impl ExtractedPayload {
    /// Whether anything beyond the bare JSON appeared in the result
    /// section — the trigger for the "Extra contents found in JSON"
    /// failure type.
    pub fn has_extra_content(&self) -> bool {
        self.had_code_fence || self.extra_content.is_some()
    }
}

/// Error when no JSON document can be located at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError {
    /// Short reason.
    pub reason: &'static str,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "could not locate a JSON netlist in the response: {}",
            self.reason
        )
    }
}

impl Error for ExtractError {}

/// Finds the `<result>` section if present, returning `(section, found)`.
fn result_section(text: &str) -> (&str, bool) {
    let lower = text.to_lowercase();
    if let Some(start) = lower.find("<result>") {
        let after = start + "<result>".len();
        let end = lower[after..]
            .find("</result>")
            .map(|e| after + e)
            .unwrap_or(text.len());
        (&text[after..end], true)
    } else {
        (text, false)
    }
}

/// Finds the span of the first balanced `{ … }` block, respecting strings.
fn brace_span(text: &str) -> Option<(usize, usize)> {
    let bytes = text.as_bytes();
    let start = text.find('{')?;
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// Strips markdown code fences from around (but not inside) a block of
/// text, reporting whether any were found.
fn strip_fences(text: &str) -> (String, bool) {
    let mut found = false;
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            found = true;
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    (out, found)
}

/// Locates the JSON payload in a raw response.
///
/// # Errors
///
/// Returns [`ExtractError`] when the response contains no `{…}` block at
/// all (truncated or purely prose responses).
///
/// # Examples
///
/// ```
/// use picbench_netlist::extract::extract_payload;
///
/// let response = "<analysis>step by step…</analysis>\n<result>\n{\"a\": 1}\n</result>";
/// let payload = extract_payload(response)?;
/// assert_eq!(payload.json, "{\"a\": 1}");
/// assert!(payload.had_result_tag);
/// assert!(!payload.has_extra_content());
/// # Ok::<(), picbench_netlist::extract::ExtractError>(())
/// ```
pub fn extract_payload(response: &str) -> Result<ExtractedPayload, ExtractError> {
    let (section, had_result_tag) = result_section(response);
    let (unfenced, had_code_fence) = strip_fences(section);

    let (start, end) = brace_span(&unfenced).ok_or(ExtractError {
        reason: "no '{' ... '}' block found",
    })?;
    let json = unfenced[start..end].to_string();

    let before = unfenced[..start].trim();
    let after = unfenced[end..].trim();
    let mut extra = String::new();
    if !before.is_empty() {
        extra.push_str(before);
    }
    if !after.is_empty() {
        if !extra.is_empty() {
            extra.push_str(" … ");
        }
        extra.push_str(after);
    }

    Ok(ExtractedPayload {
        json,
        had_result_tag,
        had_code_fence,
        extra_content: if extra.is_empty() { None } else { Some(extra) },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_result_section() {
        let p = extract_payload("<result>{\"x\": {\"y\": 2}}</result>").unwrap();
        assert_eq!(p.json, "{\"x\": {\"y\": 2}}");
        assert!(p.had_result_tag);
        assert!(!p.has_extra_content());
    }

    #[test]
    fn bare_json_without_tags() {
        let p = extract_payload("{\"a\": 1}").unwrap();
        assert!(!p.had_result_tag);
        assert!(!p.has_extra_content());
        assert_eq!(p.json, "{\"a\": 1}");
    }

    #[test]
    fn fenced_json_is_flagged() {
        let p = extract_payload("<result>\n```json\n{\"a\": 1}\n```\n</result>").unwrap();
        assert_eq!(p.json.trim(), "{\"a\": 1}");
        assert!(p.had_code_fence);
        assert!(p.has_extra_content());
    }

    #[test]
    fn surrounding_prose_is_captured() {
        let p =
            extract_payload("<result>Here is the netlist: {\"a\": 1} Hope this helps!</result>")
                .unwrap();
        assert_eq!(p.json, "{\"a\": 1}");
        let extra = p.extra_content.unwrap();
        assert!(extra.contains("Here is the netlist:"));
        assert!(extra.contains("Hope this helps!"));
    }

    #[test]
    fn analysis_prose_outside_result_is_fine() {
        let p = extract_payload(
            "<analysis>Lots of step-by-step reasoning…</analysis>\n<result>{\"a\": 1}</result>",
        )
        .unwrap();
        assert!(!p.has_extra_content());
    }

    #[test]
    fn braces_inside_strings_do_not_confuse_the_scanner() {
        let p =
            extract_payload(r#"<result>{"note": "a } inside", "b": {"c": 1}}</result>"#).unwrap();
        assert_eq!(p.json, r#"{"note": "a } inside", "b": {"c": 1}}"#);
    }

    #[test]
    fn missing_close_tag_still_extracts() {
        let p = extract_payload("<result>\n{\"a\": 1}").unwrap();
        assert_eq!(p.json, "{\"a\": 1}");
        assert!(p.had_result_tag);
    }

    #[test]
    fn no_json_at_all_is_an_error() {
        let err = extract_payload("I cannot help with that.").unwrap_err();
        assert!(err.to_string().contains("could not locate"));
    }

    #[test]
    fn unbalanced_braces_error() {
        assert!(extract_payload("<result>{\"a\": 1").is_err());
    }

    #[test]
    fn case_insensitive_result_tag() {
        let p = extract_payload("<RESULT>{\"a\": 1}</RESULT>").unwrap();
        assert!(p.had_result_tag);
    }
}
