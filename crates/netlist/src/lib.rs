//! # picbench-netlist
//!
//! The netlist layer of the PICBench-rs reproduction: the JSON document
//! format LLM-generated photonic designs arrive in, plus everything needed
//! to judge their *structure*:
//!
//! * [`json`] — a from-scratch strict JSON parser/serializer with
//!   positioned errors (the offline crate set has no `serde_json`, and the
//!   benchmark wants to classify *why* parses fail);
//! * [`extract`] — locating the JSON payload inside a raw chat response
//!   (`<result>` sections, markdown fences, stray prose);
//! * the schema types [`Netlist`], [`Instance`], [`Connection`],
//!   [`PortRef`] with JSON round-tripping;
//! * [`FailureType`] — the ten-entry Table II error taxonomy with its
//!   restriction texts;
//! * [`validate`] — the structural rule checks that produce classified
//!   [`ValidationIssue`]s;
//! * [`NetlistBuilder`] — fluent programmatic construction for golden
//!   designs and tests;
//! * [`Netlist::canonicalize`] / [`Netlist::content_hash`] — the canonical
//!   form and its 64-bit content digest, the key of the evaluation cache
//!   (structurally identical designs hash equal regardless of JSON key
//!   order, instance ordering or connection direction).
//!
//! ## Example
//!
//! ```
//! use picbench_netlist::{Netlist, NetlistBuilder};
//!
//! let netlist = NetlistBuilder::new()
//!     .instance("wg", "waveguide")
//!     .port("I1", "wg,I1")
//!     .port("O1", "wg,O1")
//!     .model("waveguide", "waveguide")
//!     .build();
//! let text = netlist.to_json_string();
//! assert_eq!(Netlist::from_json_str(&text)?, netlist);
//! # Ok::<(), picbench_netlist::NetlistParseError>(())
//! ```

#![warn(missing_docs)]

mod builder;
mod canon;
pub mod extract;
mod failure;
pub mod json;
mod ordmap;
mod schema;
mod validate;

pub use builder::NetlistBuilder;
pub use canon::Fnv64;
pub use failure::{FailureType, ValidationIssue};
pub use ordmap::OrderedMap;
pub use schema::{
    Connection, Instance, Netlist, NetlistParseError, ParsePortRefError, PortRef, SchemaError,
};
pub use validate::{validate, ComponentCatalog, PortSpec};
