//! A small insertion-ordered map.
//!
//! Netlist sections (`instances`, `ports`, `models`) are JSON objects whose
//! order matters for readable serialization and stable diffs. Sizes are
//! tiny (tens of entries), so a `Vec` of pairs with linear lookup is both
//! simple and fast.

use std::fmt;

/// An insertion-ordered key-value map with `String` keys.
///
/// # Examples
///
/// ```
/// use picbench_netlist::OrderedMap;
///
/// let mut m = OrderedMap::new();
/// m.insert("b".to_string(), 1);
/// m.insert("a".to_string(), 2);
/// let keys: Vec<&str> = m.keys().collect();
/// assert_eq!(keys, vec!["b", "a"]); // insertion order, not sorted
/// ```
#[derive(Clone, PartialEq)]
pub struct OrderedMap<V> {
    entries: Vec<(String, V)>,
}

impl<V> Default for OrderedMap<V> {
    fn default() -> Self {
        OrderedMap {
            entries: Vec::new(),
        }
    }
}

impl<V> OrderedMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        OrderedMap {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or replaces; returns the previous value if the key existed.
    pub fn insert(&mut self, key: String, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut V> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Removes a key, returning its value if present. Preserves the order
    /// of the remaining entries.
    pub fn remove(&mut self, key: &str) -> Option<V> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &V)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterates over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Entry at a given insertion index.
    pub fn get_index(&self, index: usize) -> Option<(&str, &V)> {
        self.entries.get(index).map(|(k, v)| (k.as_str(), v))
    }
}

impl<V: fmt::Debug> fmt::Debug for OrderedMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

impl<V> FromIterator<(String, V)> for OrderedMap<V> {
    fn from_iter<I: IntoIterator<Item = (String, V)>>(iter: I) -> Self {
        let mut m = OrderedMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<V> Extend<(String, V)> for OrderedMap<V> {
    fn extend<I: IntoIterator<Item = (String, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_replace() {
        let mut m = OrderedMap::new();
        assert_eq!(m.insert("a".into(), 1), None);
        assert_eq!(m.insert("a".into(), 2), Some(1));
        assert_eq!(m.get("a"), Some(&2));
        assert_eq!(m.len(), 1);
        assert!(m.contains_key("a"));
        assert!(!m.contains_key("b"));
    }

    #[test]
    fn preserves_insertion_order_across_replace() {
        let mut m = OrderedMap::new();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        m.insert("x".into(), 3);
        let keys: Vec<&str> = m.keys().collect();
        assert_eq!(keys, vec!["x", "y"]);
    }

    #[test]
    fn remove_preserves_order() {
        let mut m: OrderedMap<i32> = [("a", 1), ("b", 2), ("c", 3)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        assert_eq!(m.remove("b"), Some(2));
        assert_eq!(m.remove("b"), None);
        let keys: Vec<&str> = m.keys().collect();
        assert_eq!(keys, vec!["a", "c"]);
    }

    #[test]
    fn get_mut_modifies_in_place() {
        let mut m = OrderedMap::new();
        m.insert("k".into(), 10);
        *m.get_mut("k").unwrap() += 5;
        assert_eq!(m.get("k"), Some(&15));
    }

    #[test]
    fn index_access() {
        let m: OrderedMap<i32> = [("p", 1), ("q", 2)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        assert_eq!(m.get_index(1), Some(("q", &2)));
        assert_eq!(m.get_index(2), None);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let mut m = OrderedMap::new();
        m.insert("a".into(), 1);
        assert!(format!("{m:?}").contains('a'));
    }
}
