//! A from-scratch strict JSON parser and serializer.
//!
//! The offline dependency set does not include `serde_json`, and the
//! benchmark actually benefits from owning this layer: classifying the
//! paper's "Extra contents found in JSON" failure type requires knowing
//! *where* a parse failed (trailing prose, `//` comments, markdown fences)
//! rather than just that it failed. Errors therefore carry line/column
//! positions and a structured [`JsonErrorKind`].
//!
//! Objects preserve key order (they are backed by a `Vec` of pairs), which
//! keeps serialized netlists in the author's order — important for
//! readable golden designs and byte-stable round-trips.

use std::error::Error;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// An unsigned integer too large for `f64` to hold exactly.
    ///
    /// [`parse`] only produces this variant for unsigned integer
    /// literals that would lose precision as `f64` (magnitude above
    /// 2⁵³ and not a multiple of a suitable power of two) — ordinary
    /// integers keep arriving as [`Value::Number`], and the two
    /// variants compare equal whenever they denote the same integer.
    /// Producers that must round-trip full-range counters (the event
    /// wire format) construct it directly for every `u64`.
    Uint(u64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved.
    Object(Vec<(String, Value)>),
}

/// 2⁶⁴ as `f64` — the first value *above* the `u64` range. An `f64`
/// strictly below this (and non-negative, integral) casts to `u64`
/// without saturation.
const TWO_POW_64: f64 = 18_446_744_073_709_551_616.0;

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::Uint(a), Value::Uint(b)) => a == b,
            // A float equals an unsigned integer exactly when it denotes
            // the same mathematical integer.
            (Value::Number(n), Value::Uint(u)) | (Value::Uint(u), Value::Number(n)) => {
                *n >= 0.0 && n.fract() == 0.0 && *n < TWO_POW_64 && *n as u64 == *u
            }
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl Value {
    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric value, if this is a number. Lossy for a
    /// [`Value::Uint`] above 2⁵³ — use [`Value::as_u64`] when exactness
    /// matters.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Uint(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Returns the exact unsigned integer this value denotes, if it
    /// does: any [`Value::Uint`], or a [`Value::Number`] that is a
    /// non-negative integer representable in `u64` without rounding.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(u) => Some(*u),
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < TWO_POW_64 => {
                let u = *n as u64;
                (u as f64 == *n).then_some(u)
            }
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short lowercase name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) | Value::Uint(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// An unexpected character was encountered.
    UnexpectedChar(char),
    /// Input ended in the middle of a value.
    UnexpectedEnd,
    /// A number failed to parse.
    InvalidNumber,
    /// A string contained an invalid escape sequence.
    InvalidEscape,
    /// Non-whitespace content followed the first complete JSON value.
    TrailingContent,
    /// A specific token was expected (e.g. `":"`).
    Expected(&'static str),
    /// A `//` or `/* */` comment was found (JSON forbids comments; the
    /// benchmark classifies this as extra content).
    CommentFound,
}

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Error category.
    pub kind: JsonErrorKind,
    /// 1-based line of the offending character.
    pub line: usize,
    /// 1-based column of the offending character.
    pub column: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            JsonErrorKind::UnexpectedChar(c) => format!("unexpected character {c:?}"),
            JsonErrorKind::UnexpectedEnd => "unexpected end of input".to_string(),
            JsonErrorKind::InvalidNumber => "invalid number literal".to_string(),
            JsonErrorKind::InvalidEscape => "invalid string escape".to_string(),
            JsonErrorKind::TrailingContent => "unexpected content after the JSON value".to_string(),
            JsonErrorKind::Expected(tok) => format!("expected {tok}"),
            JsonErrorKind::CommentFound => "comments are not allowed in JSON".to_string(),
        };
        write!(f, "{what} at line {} column {}", self.line, self.column)
    }
}

impl Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, kind: JsonErrorKind) -> JsonError {
        self.error_at(kind, self.pos)
    }

    fn error_at(&self, kind: JsonErrorKind, pos: usize) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            kind,
            line,
            column: col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) -> Result<(), JsonError> {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'/' => {
                    // Comments are a classified failure, not mere noise.
                    return Err(self.error(JsonErrorKind::CommentFound));
                }
                _ => break,
            }
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws()?;
        match self.peek() {
            None => Err(self.error(JsonErrorKind::UnexpectedEnd)),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b'n') => self.parse_null(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(JsonErrorKind::UnexpectedChar(other as char))),
        }
    }

    fn expect_byte(&mut self, b: u8, token: &'static str) -> Result<(), JsonError> {
        self.skip_ws()?;
        match self.peek() {
            Some(x) if x == b => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(self.error(JsonErrorKind::Expected(token))),
            None => Err(self.error(JsonErrorKind::UnexpectedEnd)),
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'{', "'{'")?;
        let mut entries = Vec::new();
        self.skip_ws()?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws()?;
            let key = self.parse_string()?;
            self.expect_byte(b':', "':'")?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws()?;
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(entries)),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.error(JsonErrorKind::UnexpectedChar(c as char)));
                }
                None => return Err(self.error(JsonErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws()?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws()?;
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.error(JsonErrorKind::UnexpectedChar(c as char)));
                }
                None => return Err(self.error(JsonErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.skip_ws()?;
        match self.peek() {
            Some(b'"') => {}
            Some(_) => return Err(self.error(JsonErrorKind::Expected("a string"))),
            None => return Err(self.error(JsonErrorKind::UnexpectedEnd)),
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error(JsonErrorKind::UnexpectedEnd)),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    None => return Err(self.error(JsonErrorKind::UnexpectedEnd)),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .ok_or_else(|| self.error(JsonErrorKind::UnexpectedEnd))?;
                            let digit = (d as char).to_digit(16).ok_or_else(|| {
                                self.error_at(JsonErrorKind::InvalidEscape, self.pos - 1)
                            })?;
                            code = code * 16 + digit;
                        }
                        let ch = char::from_u32(code)
                            .ok_or_else(|| self.error(JsonErrorKind::InvalidEscape))?;
                        out.push(ch);
                    }
                    Some(_) => {
                        return Err(self.error_at(JsonErrorKind::InvalidEscape, self.pos - 1))
                    }
                },
                Some(b) if b < 0x20 => {
                    return Err(
                        self.error_at(JsonErrorKind::UnexpectedChar(b as char), self.pos - 1)
                    )
                }
                Some(b) => {
                    // Collect the full UTF-8 sequence.
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + width).min(self.bytes.len());
                    self.pos = end;
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => {
                            return Err(
                                self.error_at(JsonErrorKind::UnexpectedChar('\u{FFFD}'), start)
                            )
                        }
                    }
                }
            }
        }
    }

    fn parse_bool(&mut self) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(Value::Bool(true))
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(Value::Bool(false))
        } else {
            Err(self.error(JsonErrorKind::Expected("'true' or 'false'")))
        }
    }

    fn parse_null(&mut self) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            Ok(Value::Null)
        } else {
            Err(self.error(JsonErrorKind::Expected("'null'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error_at(JsonErrorKind::InvalidNumber, start))?;
        // An unsigned integer literal that `f64` cannot hold exactly
        // keeps its exact value as a `Uint`; everything else — floats,
        // negatives, and integers f64 represents exactly — stays a
        // `Number`, so consumers matching on `Number` see what they
        // always saw.
        if !text.starts_with('-') && !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                let f = u as f64;
                if f < TWO_POW_64 && f as u64 == u {
                    return Ok(Value::Number(f));
                }
                return Ok(Value::Uint(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error_at(JsonErrorKind::InvalidNumber, start))
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with position information on malformed input,
/// including [`JsonErrorKind::TrailingContent`] when non-whitespace follows
/// the first value and [`JsonErrorKind::CommentFound`] for `//`-style
/// comments.
///
/// # Examples
///
/// ```
/// use picbench_netlist::json;
/// let v = json::parse(r#"{"a": [1, 2.5], "b": "x"}"#)?;
/// assert_eq!(v.get("b").and_then(|b| b.as_str()), Some("x"));
/// # Ok::<(), json::JsonError>(())
/// ```
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser::new(text);
    let value = p.parse_value()?;
    p.skip_ws()?;
    if p.pos < p.bytes.len() {
        return Err(p.error(JsonErrorKind::TrailingContent));
    }
    Ok(value)
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no lexeme for NaN or infinity; `null` is the
        // conventional stand-in (what JSON.stringify emits) and keeps
        // the output parseable instead of corrupting the document.
        return "null".to_string();
    }
    if n == 0.0 && n.is_sign_negative() {
        // `0` would silently drop the sign; `-0` parses back to -0.0.
        return "-0".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&format_number(*n)),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if indent > 0 {
                    out.push('\n');
                    out.push_str(&" ".repeat(indent * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if indent > 0 {
                out.push('\n');
                out.push_str(&" ".repeat(indent * level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if indent > 0 {
                    out.push('\n');
                    out.push_str(&" ".repeat(indent * (level + 1)));
                }
                escape_into(out, k);
                out.push(':');
                if indent > 0 {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if indent > 0 {
                out.push('\n');
                out.push_str(&" ".repeat(indent * level));
            }
            out.push('}');
        }
    }
}

/// Serializes a value compactly (no whitespace).
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 0, 0);
    out
}

/// Serializes a value with 2-space indentation.
///
/// ```
/// use picbench_netlist::json::{parse, to_string_pretty};
/// let v = parse(r#"{"a":1}"#).unwrap();
/// assert_eq!(to_string_pretty(&v), "{\n  \"a\": 1\n}");
/// ```
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 2, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("3.25").unwrap(), Value::Number(3.25));
        assert_eq!(parse("-10").unwrap(), Value::Number(-10.0));
        assert_eq!(parse("1e3").unwrap(), Value::Number(1000.0));
        assert_eq!(
            parse("\"hi\\nthere\"").unwrap(),
            Value::String("hi\nthere".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": {"b": [1, {"c": null}]}, "d": "e"}"#).unwrap();
        let b = v.get("a").unwrap().get("b").unwrap();
        assert_eq!(b.as_array().unwrap().len(), 2);
        assert_eq!(v.get("d").unwrap().as_str(), Some("e"));
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            Value::String("Aé".into())
        );
    }

    #[test]
    fn utf8_passthrough() {
        assert_eq!(parse("\"µm→\"").unwrap(), Value::String("µm→".into()));
    }

    #[test]
    fn trailing_content_is_flagged() {
        let err = parse("{} trailing").unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TrailingContent);
        assert_eq!(err.line, 1);
    }

    #[test]
    fn comment_is_flagged_specifically() {
        let err = parse("{\n  // a comment\n  \"a\": 1\n}").unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::CommentFound);
        assert_eq!(err.line, 2);
    }

    #[test]
    fn truncated_document_reports_end() {
        let err = parse(r#"{"a": [1, 2"#).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::UnexpectedEnd);
    }

    #[test]
    fn error_position_is_accurate() {
        let err = parse("{\"a\": 1,\n\"b\": @}").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, JsonErrorKind::UnexpectedChar('@'));
    }

    #[test]
    fn invalid_escape_reported() {
        let err = parse(r#""bad \q escape""#).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::InvalidEscape);
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let src = r#"{"netlist":{"instances":{"mmi1":"mmi"},"connections":{"a,O1":"b,I1"},"ports":{"I1":"mmi1,I1"}},"models":{"mmi":"mmi1x2"}}"#;
        let v = parse(src).unwrap();
        assert_eq!(to_string(&v), src);
        let pretty = to_string_pretty(&v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integer_formatting_avoids_trailing_zeroes() {
        assert_eq!(to_string(&Value::Number(10.0)), "10");
        assert_eq!(to_string(&Value::Number(10.5)), "10.5");
        assert_eq!(to_string(&Value::Number(-0.25)), "-0.25");
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        assert_eq!(to_string(&Value::Number(-0.0)), "-0");
        let back = parse("-0").unwrap().as_f64().unwrap();
        assert_eq!(back, 0.0);
        assert!(back.is_sign_negative());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
        assert_eq!(to_string(&Value::Number(f64::NEG_INFINITY)), "null");
        // The stand-in stays parseable.
        assert_eq!(parse("null").unwrap(), Value::Null);
    }

    #[test]
    fn huge_unsigned_integers_round_trip_exactly() {
        for u in [
            9_007_199_254_740_993u64, // 2^53 + 1: first f64-unrepresentable
            u64::MAX,
            u64::MAX - 1,
        ] {
            let s = u.to_string();
            let v = parse(&s).unwrap();
            assert_eq!(v, Value::Uint(u), "{s}");
            assert_eq!(v.as_u64(), Some(u));
            assert_eq!(to_string(&v), s);
        }
        // Exactly-representable big integers stay `Number` for
        // backwards-compatible pattern matching…
        let v = parse("9007199254740992").unwrap();
        assert_eq!(v, Value::Number(9_007_199_254_740_992.0));
        // …but still read back exactly through as_u64.
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_992u64));
    }

    #[test]
    fn cross_variant_number_equality() {
        assert_eq!(Value::Number(3.0), Value::Uint(3));
        assert_eq!(Value::Uint(0), Value::Number(0.0));
        assert_ne!(Value::Number(3.5), Value::Uint(3));
        assert_ne!(Value::Number(-1.0), Value::Uint(1));
        // 2^53 + 1 rounds to 2^53 as f64 — they are different integers.
        assert_ne!(
            Value::Number(9_007_199_254_740_992.0),
            Value::Uint(9_007_199_254_740_993)
        );
        assert_ne!(Value::Number(f64::NAN), Value::Uint(0));
    }

    #[test]
    fn as_u64_rejects_inexact_and_out_of_range() {
        assert_eq!(Value::Number(1.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(f64::NAN).as_u64(), None);
        assert_eq!(Value::Number(TWO_POW_64).as_u64(), None);
        assert_eq!(Value::String("3".into()).as_u64(), None);
        assert_eq!(Value::Number(7.0).as_u64(), Some(7));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&parse("[]").unwrap()), "[]");
        assert_eq!(to_string(&parse("{}").unwrap()), "{}");
        assert_eq!(to_string_pretty(&parse("{}").unwrap()), "{}");
    }

    #[test]
    fn get_on_non_object_is_none() {
        assert!(parse("[1]").unwrap().get("a").is_none());
    }

    #[test]
    fn type_names() {
        assert_eq!(parse("1").unwrap().type_name(), "number");
        assert_eq!(parse("{}").unwrap().type_name(), "object");
        assert_eq!(parse("[]").unwrap().type_name(), "array");
        assert_eq!(parse("null").unwrap().type_name(), "null");
    }

    #[test]
    fn control_char_in_string_rejected() {
        let err = parse("\"a\u{0001}b\"").unwrap_err();
        assert!(matches!(err.kind, JsonErrorKind::UnexpectedChar(_)));
    }
}
