//! The Table II failure taxonomy.
//!
//! The paper's error-classification loop distilled every syntax failure
//! observed during benchmark development into ten categories, each paired
//! with a restriction sentence that is injected into the system prompt.
//! This module is the single source of truth for both texts.

use std::fmt;

/// The failure types of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FailureType {
    /// "Use undefined models".
    UndefinedModel,
    /// "Bind the I/O ports" — external ports also wired internally.
    BoundIoPorts,
    /// "Mess up 'Instances' and 'models' part".
    InstancesModelsConfusion,
    /// "Extra contents found in JSON" — prose, comments, code fences.
    ExtraJsonContent,
    /// "Duplicate connections to the same port".
    DuplicatePortConnection,
    /// "Wrong connections for dangling ports".
    DanglingPortConnection,
    /// "Wrong ports number".
    WrongPortCount,
    /// "Wrong ports" — invalid or undefined port mappings.
    WrongPort,
    /// "Wrong component name" — underscores are prohibited.
    InvalidComponentName,
    /// "Other syntax error".
    OtherSyntax,
}

impl FailureType {
    /// All failure types in Table II order.
    pub const ALL: [FailureType; 10] = [
        FailureType::UndefinedModel,
        FailureType::BoundIoPorts,
        FailureType::InstancesModelsConfusion,
        FailureType::ExtraJsonContent,
        FailureType::DuplicatePortConnection,
        FailureType::DanglingPortConnection,
        FailureType::WrongPortCount,
        FailureType::WrongPort,
        FailureType::InvalidComponentName,
        FailureType::OtherSyntax,
    ];

    /// The failure-type label from the first column of Table II.
    pub fn label(self) -> &'static str {
        match self {
            FailureType::UndefinedModel => "Use undefined models",
            FailureType::BoundIoPorts => "Bind the I/O ports",
            FailureType::InstancesModelsConfusion => "Mess up 'Instances' and 'models' part",
            FailureType::ExtraJsonContent => "Extra contents found in JSON",
            FailureType::DuplicatePortConnection => "Duplicate connections to the same port",
            FailureType::DanglingPortConnection => "Wrong connections for dangling ports",
            FailureType::WrongPortCount => "Wrong ports number",
            FailureType::WrongPort => "Wrong ports",
            FailureType::InvalidComponentName => "Wrong component name",
            FailureType::OtherSyntax => "Other syntax error",
        }
    }

    /// The restriction sentence from the second column of Table II
    /// (empty for [`FailureType::OtherSyntax`], as in the paper).
    pub fn restriction(self) -> &'static str {
        match self {
            FailureType::UndefinedModel => {
                "Only built-in devices are permitted unless otherwise specified; \
                 never use undefined models."
            }
            FailureType::BoundIoPorts => {
                "Input or output ports in the ports section represent only the \
                 system's start or end points; they must not appear in any \
                 internal connections."
            }
            FailureType::InstancesModelsConfusion => {
                "When specifying built-in components, the model reference must \
                 appear in the models section like '... : \"<ref>\"' rather than \
                 '\"<ref>\" : ...'. The instances section only instantiates these \
                 components."
            }
            FailureType::ExtraJsonContent => {
                "Only the required JSON netlist elements should appear in the \
                 output. Do not include comments, advice, or code block markings."
            }
            FailureType::DuplicatePortConnection => {
                "Each port can only be connected once; duplicate connections to \
                 the same port are prohibited."
            }
            FailureType::DanglingPortConnection => {
                "If a specific port mapping is not explicitly required, omit it \
                 rather than introducing arbitrary or unused port names."
            }
            FailureType::WrongPortCount => {
                "The total number of input and output ports must align with the \
                 design specification. Each input port typically starts with I, \
                 and each output port with O."
            }
            FailureType::WrongPort => {
                "Ensure all connections and ports are valid and consistent with \
                 the defined instances and models. Do not generate invalid or \
                 undefined mappings."
            }
            FailureType::InvalidComponentName => "Underscores are prohibited in component names.",
            FailureType::OtherSyntax => "",
        }
    }

    /// A short machine-friendly identifier.
    pub fn id(self) -> &'static str {
        match self {
            FailureType::UndefinedModel => "undefined-model",
            FailureType::BoundIoPorts => "bound-io-ports",
            FailureType::InstancesModelsConfusion => "instances-models-confusion",
            FailureType::ExtraJsonContent => "extra-json-content",
            FailureType::DuplicatePortConnection => "duplicate-port-connection",
            FailureType::DanglingPortConnection => "dangling-port-connection",
            FailureType::WrongPortCount => "wrong-port-count",
            FailureType::WrongPort => "wrong-port",
            FailureType::InvalidComponentName => "invalid-component-name",
            FailureType::OtherSyntax => "other-syntax",
        }
    }
}

impl fmt::Display for FailureType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One validation finding: a classified failure plus a human-readable
/// message (the "detailed error report" fed back to the language model).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationIssue {
    /// Taxonomy category.
    pub failure: FailureType,
    /// Detailed report, e.g. the paper's
    /// `Instance mmi2 does not contain port I2. Available ports: [...]`.
    pub message: String,
}

impl ValidationIssue {
    /// Creates an issue.
    pub fn new(failure: FailureType, message: impl Into<String>) -> Self {
        ValidationIssue {
            failure,
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error, {}", self.failure.label(), self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_ten_entries_in_order() {
        assert_eq!(FailureType::ALL.len(), 10);
        assert_eq!(FailureType::ALL[0], FailureType::UndefinedModel);
        assert_eq!(FailureType::ALL[9], FailureType::OtherSyntax);
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = FailureType::ALL.iter().map(|f| f.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn every_type_but_other_has_a_restriction() {
        for ft in FailureType::ALL {
            if ft == FailureType::OtherSyntax {
                assert!(ft.restriction().is_empty());
            } else {
                assert!(!ft.restriction().is_empty(), "{ft:?} lacks a restriction");
            }
        }
    }

    #[test]
    fn issue_display_matches_paper_format() {
        let issue = ValidationIssue::new(
            FailureType::WrongPort,
            "Instance mmi2 does not contain port I2. Available ports: [\"I1\", \"O1\", \"O2\"].",
        );
        let text = issue.to_string();
        assert!(text.starts_with("Wrong ports error, "));
        assert!(text.contains("does not contain port I2"));
    }
}
