//! The netlist data model and its JSON mapping.
//!
//! The document layout follows the paper's system prompt (Fig. 3):
//!
//! ```json
//! {
//!   "netlist": {
//!     "instances": {
//!       "mmi1": "mmi",
//!       "ps1": {"component": "phaseshifter", "settings": {"phase": 1.57}}
//!     },
//!     "connections": { "mmi1,O1": "ps1,I1" },
//!     "ports": { "I1": "mmi1,I1", "O1": "ps1,O1" }
//!   },
//!   "models": { "mmi": "mmi1x2", "phaseshifter": "phaseshifter" }
//! }
//! ```
//!
//! `instances` maps instance names to component types (optionally with
//! settings); `models` binds component types to built-in model references;
//! `connections` joins instance ports pairwise; `ports` exposes external
//! ports.

use crate::json::{self, Value};
use crate::OrderedMap;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A reference to one port of one instance, serialized as
/// `"instance,port"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// Instance name.
    pub instance: String,
    /// Port name on that instance.
    pub port: String,
}

impl PortRef {
    /// Creates a port reference.
    pub fn new(instance: impl Into<String>, port: impl Into<String>) -> Self {
        PortRef {
            instance: instance.into(),
            port: port.into(),
        }
    }
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.instance, self.port)
    }
}

/// Error when a `"instance,port"` string is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePortRefError {
    /// The offending text.
    pub text: String,
}

impl fmt::Display for ParsePortRefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid port reference {:?}: expected \"<instance>,<port>\"",
            self.text
        )
    }
}

impl Error for ParsePortRefError {}

impl FromStr for PortRef {
    type Err = ParsePortRefError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.splitn(2, ',');
        let instance = parts.next().unwrap_or("").trim();
        let port = parts.next().unwrap_or("").trim();
        if instance.is_empty() || port.is_empty() || port.contains(',') {
            return Err(ParsePortRefError {
                text: s.to_string(),
            });
        }
        Ok(PortRef::new(instance, port))
    }
}

/// One instantiated component.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Instance {
    /// Component type name (bound to a model by the `models` section).
    pub component: String,
    /// Parameter overrides.
    pub settings: OrderedMap<f64>,
}

impl Instance {
    /// Creates an instance of a component with default settings.
    pub fn new(component: impl Into<String>) -> Self {
        Instance {
            component: component.into(),
            settings: OrderedMap::new(),
        }
    }

    /// Adds a setting (builder style).
    pub fn with_setting(mut self, name: impl Into<String>, value: f64) -> Self {
        self.settings.insert(name.into(), value);
        self
    }
}

/// A pairwise connection between two instance ports.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Connection {
    /// First endpoint (the JSON key).
    pub a: PortRef,
    /// Second endpoint (the JSON value).
    pub b: PortRef,
}

/// A complete design document: netlist sections plus model bindings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    /// Instance name → component.
    pub instances: OrderedMap<Instance>,
    /// Pairwise port connections.
    pub connections: Vec<Connection>,
    /// External port name → internal instance port.
    pub ports: OrderedMap<PortRef>,
    /// Component type → built-in model reference.
    pub models: OrderedMap<String>,
}

/// Structural error while interpreting parsed JSON as a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// A required section is missing.
    MissingSection {
        /// Section name, e.g. `"netlist"` or `"instances"`.
        section: &'static str,
    },
    /// A node has the wrong JSON type.
    WrongType {
        /// Dotted path of the offending node.
        path: String,
        /// Expected type name.
        expected: &'static str,
        /// Found type name.
        found: &'static str,
    },
    /// A `"instance,port"` string did not parse.
    BadPortRef {
        /// Dotted path of the offending node.
        path: String,
        /// The malformed text.
        text: String,
    },
    /// A settings value was not numeric.
    NonNumericSetting {
        /// Instance name.
        instance: String,
        /// Parameter name.
        param: String,
        /// Found type name.
        found: &'static str,
    },
    /// A model binding was not a string reference (the
    /// instances/models-confusion signature).
    ModelRefNotString {
        /// Component key in the `models` section.
        component: String,
        /// Found type name.
        found: &'static str,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::MissingSection { section } => {
                write!(f, "required section '{section}' is missing")
            }
            SchemaError::WrongType {
                path,
                expected,
                found,
            } => write!(f, "'{path}' must be a {expected}, found {found}"),
            SchemaError::BadPortRef { path, text } => write!(
                f,
                "'{path}' contains invalid port reference {text:?}: expected \"<instance>,<port>\""
            ),
            SchemaError::NonNumericSetting {
                instance,
                param,
                found,
            } => write!(
                f,
                "setting '{param}' of instance '{instance}' must be a number, found {found}"
            ),
            SchemaError::ModelRefNotString { component, found } => write!(
                f,
                "models entry '{component}' must be a string model reference like \"<ref>\", found {found}"
            ),
        }
    }
}

impl Error for SchemaError {}

impl Netlist {
    /// Interprets a parsed JSON document as a netlist.
    ///
    /// # Errors
    ///
    /// Returns the first [`SchemaError`] encountered.
    pub fn from_value(v: &Value) -> Result<Netlist, SchemaError> {
        let root = v.as_object().ok_or(SchemaError::WrongType {
            path: "$".into(),
            expected: "object",
            found: v.type_name(),
        })?;
        let _ = root;

        let netlist_v = v
            .get("netlist")
            .ok_or(SchemaError::MissingSection { section: "netlist" })?;
        let instances_v = netlist_v
            .get("instances")
            .ok_or(SchemaError::MissingSection {
                section: "instances",
            })?;
        let connections_v = netlist_v
            .get("connections")
            .ok_or(SchemaError::MissingSection {
                section: "connections",
            })?;
        let ports_v = netlist_v
            .get("ports")
            .ok_or(SchemaError::MissingSection { section: "ports" })?;
        let models_v = v
            .get("models")
            .ok_or(SchemaError::MissingSection { section: "models" })?;

        // Instances.
        let mut instances = OrderedMap::new();
        let inst_entries = instances_v.as_object().ok_or(SchemaError::WrongType {
            path: "netlist.instances".into(),
            expected: "object",
            found: instances_v.type_name(),
        })?;
        for (name, spec) in inst_entries {
            let instance = match spec {
                Value::String(component) => Instance::new(component.clone()),
                Value::Object(_) => {
                    let component = spec
                        .get("component")
                        .ok_or(SchemaError::MissingSection {
                            section: "component",
                        })?
                        .as_str()
                        .ok_or_else(|| SchemaError::WrongType {
                            path: format!("netlist.instances.{name}.component"),
                            expected: "string",
                            found: spec.get("component").map_or("null", Value::type_name),
                        })?;
                    let mut instance = Instance::new(component);
                    if let Some(settings_v) = spec.get("settings") {
                        let entries = settings_v.as_object().ok_or(SchemaError::WrongType {
                            path: format!("netlist.instances.{name}.settings"),
                            expected: "object",
                            found: settings_v.type_name(),
                        })?;
                        for (param, value) in entries {
                            let num = value.as_f64().ok_or(SchemaError::NonNumericSetting {
                                instance: name.clone(),
                                param: param.clone(),
                                found: value.type_name(),
                            })?;
                            instance.settings.insert(param.clone(), num);
                        }
                    }
                    instance
                }
                other => {
                    return Err(SchemaError::WrongType {
                        path: format!("netlist.instances.{name}"),
                        expected: "string or object",
                        found: other.type_name(),
                    })
                }
            };
            instances.insert(name.clone(), instance);
        }

        // Connections.
        let mut connections = Vec::new();
        let conn_entries = connections_v.as_object().ok_or(SchemaError::WrongType {
            path: "netlist.connections".into(),
            expected: "object",
            found: connections_v.type_name(),
        })?;
        for (from, to_v) in conn_entries {
            let a: PortRef = from.parse().map_err(|_| SchemaError::BadPortRef {
                path: "netlist.connections".into(),
                text: from.clone(),
            })?;
            let to = to_v.as_str().ok_or_else(|| SchemaError::WrongType {
                path: format!("netlist.connections.{from}"),
                expected: "string",
                found: to_v.type_name(),
            })?;
            let b: PortRef = to.parse().map_err(|_| SchemaError::BadPortRef {
                path: format!("netlist.connections.{from}"),
                text: to.to_string(),
            })?;
            connections.push(Connection { a, b });
        }

        // External ports.
        let mut ports = OrderedMap::new();
        let port_entries = ports_v.as_object().ok_or(SchemaError::WrongType {
            path: "netlist.ports".into(),
            expected: "object",
            found: ports_v.type_name(),
        })?;
        for (name, target_v) in port_entries {
            let target = target_v.as_str().ok_or_else(|| SchemaError::WrongType {
                path: format!("netlist.ports.{name}"),
                expected: "string",
                found: target_v.type_name(),
            })?;
            let pr: PortRef = target.parse().map_err(|_| SchemaError::BadPortRef {
                path: format!("netlist.ports.{name}"),
                text: target.to_string(),
            })?;
            ports.insert(name.clone(), pr);
        }

        // Models.
        let mut models = OrderedMap::new();
        let model_entries = models_v.as_object().ok_or(SchemaError::WrongType {
            path: "models".into(),
            expected: "object",
            found: models_v.type_name(),
        })?;
        for (component, ref_v) in model_entries {
            let model_ref = ref_v
                .as_str()
                .ok_or_else(|| SchemaError::ModelRefNotString {
                    component: component.clone(),
                    found: ref_v.type_name(),
                })?;
            models.insert(component.clone(), model_ref.to_string());
        }

        Ok(Netlist {
            instances,
            connections,
            ports,
            models,
        })
    }

    /// Parses a JSON string directly into a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistParseError`] wrapping either a JSON or a schema
    /// error.
    pub fn from_json_str(text: &str) -> Result<Netlist, NetlistParseError> {
        let value = json::parse(text).map_err(NetlistParseError::Json)?;
        Netlist::from_value(&value).map_err(NetlistParseError::Schema)
    }

    /// Converts the netlist back to a JSON value in the canonical layout.
    pub fn to_value(&self) -> Value {
        let mut inst_entries = Vec::new();
        for (name, inst) in self.instances.iter() {
            let v = if inst.settings.is_empty() {
                Value::String(inst.component.clone())
            } else {
                let settings = Value::Object(
                    inst.settings
                        .iter()
                        .map(|(k, v)| (k.to_string(), Value::Number(*v)))
                        .collect(),
                );
                Value::Object(vec![
                    (
                        "component".to_string(),
                        Value::String(inst.component.clone()),
                    ),
                    ("settings".to_string(), settings),
                ])
            };
            inst_entries.push((name.to_string(), v));
        }

        let conn_entries = self
            .connections
            .iter()
            .map(|c| (c.a.to_string(), Value::String(c.b.to_string())))
            .collect();

        let port_entries = self
            .ports
            .iter()
            .map(|(name, pr)| (name.to_string(), Value::String(pr.to_string())))
            .collect();

        let model_entries = self
            .models
            .iter()
            .map(|(component, model_ref)| (component.to_string(), Value::String(model_ref.clone())))
            .collect();

        Value::Object(vec![
            (
                "netlist".to_string(),
                Value::Object(vec![
                    ("instances".to_string(), Value::Object(inst_entries)),
                    ("connections".to_string(), Value::Object(conn_entries)),
                    ("ports".to_string(), Value::Object(port_entries)),
                ]),
            ),
            ("models".to_string(), Value::Object(model_entries)),
        ])
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        json::to_string_pretty(&self.to_value())
    }

    /// Removes an instance together with everything that references it:
    /// its connections, the external ports targeting it, and — when no
    /// other instance uses the same component — its model binding.
    /// Returns `false` (leaving the netlist untouched) when no instance
    /// of that name exists.
    ///
    /// Structural validity is preserved: a valid netlist stays valid
    /// because every dangling reference is dropped along with the
    /// instance. This is the primitive counterexample shrinkers are
    /// built from.
    pub fn remove_instance(&mut self, name: &str) -> bool {
        let Some(removed) = self.instances.remove(name) else {
            return false;
        };
        self.connections
            .retain(|c| c.a.instance != name && c.b.instance != name);
        let orphaned_ports: Vec<String> = self
            .ports
            .iter()
            .filter(|(_, pr)| pr.instance == name)
            .map(|(port, _)| port.to_string())
            .collect();
        for port in orphaned_ports {
            self.ports.remove(&port);
        }
        let component_still_used = self
            .instances
            .iter()
            .any(|(_, inst)| inst.component == removed.component);
        if !component_still_used {
            self.models.remove(&removed.component);
        }
        true
    }

    /// All connection endpoints plus external port targets — every
    /// instance-port usage in the document.
    pub fn all_endpoint_refs(&self) -> Vec<&PortRef> {
        let mut refs: Vec<&PortRef> = Vec::new();
        for c in &self.connections {
            refs.push(&c.a);
            refs.push(&c.b);
        }
        for (_, pr) in self.ports.iter() {
            refs.push(pr);
        }
        refs
    }
}

/// Error from [`Netlist::from_json_str`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistParseError {
    /// The text is not valid JSON.
    Json(json::JsonError),
    /// The JSON does not have the netlist structure.
    Schema(SchemaError),
}

impl fmt::Display for NetlistParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistParseError::Json(e) => write!(f, "JSON error: {e}"),
            NetlistParseError::Schema(e) => write!(f, "schema error: {e}"),
        }
    }
}

impl Error for NetlistParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetlistParseError::Json(e) => Some(e),
            NetlistParseError::Schema(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MZI_PS: &str = r#"{
      "netlist": {
        "instances": {
          "mmi1": "mmi",
          "mmi2": "mmi",
          "waveBottom": {"component": "waveguide", "settings": {"length": 20}},
          "phaseShifter": {"component": "phaseshifter", "settings": {"length": 10}}
        },
        "connections": {
          "mmi1,O1": "waveBottom,I1",
          "waveBottom,O1": "mmi2,O1",
          "mmi1,O2": "phaseShifter,I1",
          "phaseShifter,O1": "mmi2,O2"
        },
        "ports": {
          "I1": "mmi1,I1",
          "O1": "mmi2,I1"
        }
      },
      "models": {
        "mmi": "mmi1x2",
        "waveguide": "waveguide",
        "phaseshifter": "phaseshifter"
      }
    }"#;

    #[test]
    fn parses_the_paper_example() {
        let n = Netlist::from_json_str(MZI_PS).unwrap();
        assert_eq!(n.instances.len(), 4);
        assert_eq!(n.connections.len(), 4);
        assert_eq!(n.ports.len(), 2);
        assert_eq!(n.models.len(), 3);
        assert_eq!(
            n.instances
                .get("waveBottom")
                .unwrap()
                .settings
                .get("length"),
            Some(&20.0)
        );
        assert_eq!(n.models.get("mmi").map(String::as_str), Some("mmi1x2"));
        assert_eq!(n.ports.get("O1"), Some(&PortRef::new("mmi2", "I1")));
    }

    #[test]
    fn portref_parsing() {
        let pr: PortRef = "mmi1,O2".parse().unwrap();
        assert_eq!(pr, PortRef::new("mmi1", "O2"));
        assert_eq!(pr.to_string(), "mmi1,O2");
        assert!(" spaced , O1 ".parse::<PortRef>().is_ok());
        assert!("noport".parse::<PortRef>().is_err());
        assert!(",".parse::<PortRef>().is_err());
        assert!("a,b,c".parse::<PortRef>().is_err());
        assert!("a,".parse::<PortRef>().is_err());
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let n = Netlist::from_json_str(MZI_PS).unwrap();
        let text = n.to_json_string();
        let n2 = Netlist::from_json_str(&text).unwrap();
        assert_eq!(n, n2);
    }

    #[test]
    fn missing_sections_are_reported() {
        let err = Netlist::from_json_str(r#"{"models": {}}"#).unwrap_err();
        assert!(matches!(
            err,
            NetlistParseError::Schema(SchemaError::MissingSection { section: "netlist" })
        ));
        let err = Netlist::from_json_str(
            r#"{"netlist": {"instances": {}, "connections": {}, "ports": {}}}"#,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            NetlistParseError::Schema(SchemaError::MissingSection { section: "models" })
        ));
    }

    #[test]
    fn model_ref_must_be_string() {
        let text = r#"{
          "netlist": {"instances": {}, "connections": {}, "ports": {}},
          "models": {"mmi1x2": {"component": "mmi"}}
        }"#;
        let err = Netlist::from_json_str(text).unwrap_err();
        match err {
            NetlistParseError::Schema(SchemaError::ModelRefNotString { component, found }) => {
                assert_eq!(component, "mmi1x2");
                assert_eq!(found, "object");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn non_numeric_setting_is_reported() {
        let text = r#"{
          "netlist": {
            "instances": {"wg": {"component": "waveguide", "settings": {"length": "ten"}}},
            "connections": {},
            "ports": {}
          },
          "models": {"waveguide": "waveguide"}
        }"#;
        let err = Netlist::from_json_str(text).unwrap_err();
        assert!(matches!(
            err,
            NetlistParseError::Schema(SchemaError::NonNumericSetting { .. })
        ));
    }

    #[test]
    fn bad_portref_in_connection() {
        let text = r#"{
          "netlist": {
            "instances": {"a": "waveguide"},
            "connections": {"a": "b,I1"},
            "ports": {}
          },
          "models": {"waveguide": "waveguide"}
        }"#;
        let err = Netlist::from_json_str(text).unwrap_err();
        assert!(matches!(
            err,
            NetlistParseError::Schema(SchemaError::BadPortRef { .. })
        ));
    }

    #[test]
    fn endpoint_refs_cover_connections_and_ports() {
        let n = Netlist::from_json_str(MZI_PS).unwrap();
        let refs = n.all_endpoint_refs();
        assert_eq!(refs.len(), 4 * 2 + 2);
    }

    #[test]
    fn remove_instance_drops_all_references() {
        let mut n = Netlist::from_json_str(MZI_PS).unwrap();
        assert!(n.remove_instance("mmi2"));
        assert!(!n.instances.contains_key("mmi2"));
        assert!(n.all_endpoint_refs().iter().all(|pr| pr.instance != "mmi2"));
        // "mmi" is still used by mmi1, so the binding survives; removing
        // the unique phaseShifter takes its binding with it.
        assert!(n.models.contains_key("mmi"));
        assert!(n.remove_instance("phaseShifter"));
        assert!(!n.models.contains_key("phaseshifter"));
        assert!(!n.remove_instance("phantom"));
    }

    #[test]
    fn json_error_passthrough() {
        let err = Netlist::from_json_str("not json").unwrap_err();
        assert!(matches!(err, NetlistParseError::Json(_)));
        assert!(err.to_string().contains("JSON error"));
    }
}
