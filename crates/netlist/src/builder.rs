//! Fluent construction of netlists.
//!
//! Golden designs, examples and tests build netlists programmatically; the
//! builder keeps that terse while still producing the exact document
//! structure the JSON schema defines.

use crate::schema::{Connection, Instance, Netlist, PortRef};

/// A non-consuming builder for [`Netlist`].
///
/// # Examples
///
/// ```
/// use picbench_netlist::NetlistBuilder;
///
/// let netlist = NetlistBuilder::new()
///     .instance("mmi1", "mmi")
///     .instance_with("ps", "phaseshifter", &[("phase", 1.5708)])
///     .connect("mmi1,O1", "ps,I1")
///     .port("I1", "mmi1,I1")
///     .port("O1", "ps,O1")
///     .model("mmi", "mmi1x2")
///     .model("phaseshifter", "phaseshifter")
///     .build();
/// assert_eq!(netlist.instances.len(), 2);
/// ```
///
/// # Panics
///
/// `connect` and `port` panic on malformed `"instance,port"` strings; the
/// builder is meant for trusted, test-covered construction code. Use
/// [`Netlist::from_json_str`] for untrusted input.
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    netlist: Netlist,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetlistBuilder::default()
    }

    /// Adds an instance of `component` with default settings.
    pub fn instance(&mut self, name: &str, component: &str) -> &mut Self {
        self.netlist
            .instances
            .insert(name.to_string(), Instance::new(component));
        self
    }

    /// Adds an instance with explicit settings.
    pub fn instance_with(
        &mut self,
        name: &str,
        component: &str,
        settings: &[(&str, f64)],
    ) -> &mut Self {
        let mut inst = Instance::new(component);
        for (k, v) in settings {
            inst.settings.insert((*k).to_string(), *v);
        }
        self.netlist.instances.insert(name.to_string(), inst);
        self
    }

    /// Connects two instance ports, each written `"instance,port"`.
    ///
    /// # Panics
    ///
    /// Panics if either reference is malformed.
    pub fn connect(&mut self, from: &str, to: &str) -> &mut Self {
        let a: PortRef = from
            .parse()
            .unwrap_or_else(|e| panic!("builder: bad connection endpoint: {e}"));
        let b: PortRef = to
            .parse()
            .unwrap_or_else(|e| panic!("builder: bad connection endpoint: {e}"));
        self.netlist.connections.push(Connection { a, b });
        self
    }

    /// Exposes an instance port as external port `name`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is malformed.
    pub fn port(&mut self, name: &str, target: &str) -> &mut Self {
        let pr: PortRef = target
            .parse()
            .unwrap_or_else(|e| panic!("builder: bad port target: {e}"));
        self.netlist.ports.insert(name.to_string(), pr);
        self
    }

    /// Binds a component type to a model reference.
    pub fn model(&mut self, component: &str, model_ref: &str) -> &mut Self {
        self.netlist
            .models
            .insert(component.to_string(), model_ref.to_string());
        self
    }

    /// Finishes, returning the netlist.
    pub fn build(&mut self) -> Netlist {
        std::mem::take(&mut self.netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_complete_netlist() {
        let n = NetlistBuilder::new()
            .instance("a", "waveguide")
            .instance_with("b", "phaseshifter", &[("phase", 2.5)])
            .connect("a,O1", "b,I1")
            .port("I1", "a,I1")
            .port("O1", "b,O1")
            .model("waveguide", "waveguide")
            .model("phaseshifter", "phaseshifter")
            .build();
        assert_eq!(n.instances.len(), 2);
        assert_eq!(n.connections.len(), 1);
        assert_eq!(n.ports.len(), 2);
        assert_eq!(n.models.len(), 2);
        assert_eq!(
            n.instances.get("b").unwrap().settings.get("phase"),
            Some(&2.5)
        );
    }

    #[test]
    fn builder_roundtrips_through_json() {
        let n = NetlistBuilder::new()
            .instance("x", "mzi")
            .port("I1", "x,I1")
            .port("O1", "x,O1")
            .model("mzi", "mzi")
            .build();
        let n2 = Netlist::from_json_str(&n.to_json_string()).unwrap();
        assert_eq!(n, n2);
    }

    #[test]
    #[should_panic(expected = "bad connection endpoint")]
    fn malformed_connection_panics() {
        NetlistBuilder::new().connect("nocomma", "b,I1");
    }

    #[test]
    #[should_panic(expected = "bad port target")]
    fn malformed_port_panics() {
        NetlistBuilder::new().port("I1", "nocomma");
    }

    #[test]
    fn build_resets_builder() {
        let mut b = NetlistBuilder::new();
        b.instance("a", "waveguide");
        let first = b.build();
        let second = b.build();
        assert_eq!(first.instances.len(), 1);
        assert_eq!(second.instances.len(), 0);
    }
}
