//! Structural validation of netlists against the Table II rules.
//!
//! Validation is deliberately *exhaustive* (it reports every issue it can
//! find, not just the first) because the feedback loop wants the full
//! error report, and the error-classification loop wants accurate
//! categories.
//!
//! Checks that need to know which models exist and which ports a component
//! exposes go through the [`ComponentCatalog`] trait, implemented by the
//! simulator's model registry.

use crate::failure::{FailureType, ValidationIssue};
use crate::schema::Netlist;
use std::collections::HashMap;

/// Knowledge about available component models, provided by the simulator.
pub trait ComponentCatalog {
    /// Whether `model_ref` names a known model.
    fn has_model(&self, model_ref: &str) -> bool;

    /// The port list of a model, or `None` if unknown.
    fn ports_of(&self, model_ref: &str) -> Option<Vec<String>>;
}

/// Expected external port counts for a problem (the "Wrong ports number"
/// rule checks against this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSpec {
    /// Required number of external input ports (`I1..In`).
    pub inputs: usize,
    /// Required number of external output ports (`O1..Om`).
    pub outputs: usize,
}

impl PortSpec {
    /// Creates a port spec.
    pub const fn new(inputs: usize, outputs: usize) -> Self {
        PortSpec { inputs, outputs }
    }

    /// The expected external port names: `I1..In` then `O1..Om`.
    pub fn expected_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.inputs + self.outputs);
        for i in 1..=self.inputs {
            names.push(format!("I{i}"));
        }
        for o in 1..=self.outputs {
            names.push(format!("O{o}"));
        }
        names
    }
}

/// Validates a netlist, returning every issue found.
///
/// `spec` enables the external-port-count checks when provided.
///
/// The rules, in Table II order:
///
/// 1. every instance's component must be bound in `models`, and every
///    binding must reference a known model (**Use undefined models**);
/// 2. external port targets must not also appear in internal connections
///    (**Bind the I/O ports**);
/// 3. a `models` entry keyed by a known model ref whose value is *not* a
///    known ref is the classic swapped form (**Mess up 'Instances' and
///    'models'**) — the structural variant (object instead of string) is
///    caught earlier at schema time;
/// 4. *(Extra JSON content is detected at extraction/parse time, not
///    here)*;
/// 5. no instance port may be used by more than one connection endpoint
///    (**Duplicate connections to the same port**);
/// 6. external ports beyond the specification that merely re-expose unused
///    internal ports (**Wrong connections for dangling ports**);
/// 7. external port names/counts must match the specification (**Wrong
///    ports number**);
/// 8. every endpoint must reference an existing instance and one of its
///    real ports (**Wrong ports**) — including the paper's
///    `Instance mmi2 does not contain port I2. Available ports: [...]`;
/// 9. instance names must not contain underscores (**Wrong component
///    name**).
pub fn validate(
    netlist: &Netlist,
    catalog: &dyn ComponentCatalog,
    spec: Option<&PortSpec>,
) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();

    check_component_names(netlist, &mut issues);
    check_models(netlist, catalog, &mut issues);
    let port_lookup = build_port_lookup(netlist, catalog);
    check_endpoints_exist(netlist, &port_lookup, &mut issues);
    check_duplicate_connections(netlist, &mut issues);
    check_bound_io(netlist, &mut issues);
    if let Some(spec) = spec {
        check_port_spec(netlist, spec, &mut issues);
    }
    issues
}

/// Resolved port list per instance (for instances whose model is known).
fn build_port_lookup(
    netlist: &Netlist,
    catalog: &dyn ComponentCatalog,
) -> HashMap<String, Vec<String>> {
    let mut lookup = HashMap::new();
    for (name, inst) in netlist.instances.iter() {
        let model_ref = match netlist.models.get(&inst.component) {
            Some(r) => r.as_str(),
            // Fall back to the component name itself; several designs bind
            // components 1:1 (e.g. "waveguide": "waveguide").
            None => inst.component.as_str(),
        };
        if let Some(ports) = catalog.ports_of(model_ref) {
            lookup.insert(name.to_string(), ports);
        }
    }
    lookup
}

fn check_component_names(netlist: &Netlist, issues: &mut Vec<ValidationIssue>) {
    for (name, _) in netlist.instances.iter() {
        if name.contains('_') {
            issues.push(ValidationIssue::new(
                FailureType::InvalidComponentName,
                format!("Component name '{name}' contains an underscore, which is prohibited."),
            ));
        }
        if name.is_empty() {
            issues.push(ValidationIssue::new(
                FailureType::InvalidComponentName,
                "Component name must not be empty.".to_string(),
            ));
        }
    }
}

fn check_models(
    netlist: &Netlist,
    catalog: &dyn ComponentCatalog,
    issues: &mut Vec<ValidationIssue>,
) {
    // Every component used by an instance needs a model binding (or must
    // itself be a known model ref).
    for (name, inst) in netlist.instances.iter() {
        let has_binding = netlist.models.contains_key(&inst.component);
        if !has_binding && !catalog.has_model(&inst.component) {
            issues.push(ValidationIssue::new(
                FailureType::UndefinedModel,
                format!(
                    "Component '{}' used by instance '{name}' has no model reference \
                     in the models section and is not a built-in model.",
                    inst.component
                ),
            ));
        }
    }
    // Every binding must reference a known model.
    for (component, model_ref) in netlist.models.iter() {
        if !catalog.has_model(model_ref) {
            // The swapped form '"<ref>" : <component>' the paper calls
            // out: the key is a valid model reference and the value is a
            // component type that instances actually use — distinguishing
            // it from a plain hallucinated reference.
            let value_is_used_component = netlist
                .instances
                .values()
                .any(|inst| inst.component == *model_ref);
            if catalog.has_model(component) && value_is_used_component {
                issues.push(ValidationIssue::new(
                    FailureType::InstancesModelsConfusion,
                    format!(
                        "Models entry '{component}: \"{model_ref}\"' appears swapped: \
                         '{component}' is a built-in model reference but '{model_ref}' is the \
                         component name. Write '<component> : \"<ref>\"'."
                    ),
                ));
            } else {
                issues.push(ValidationIssue::new(
                    FailureType::UndefinedModel,
                    format!("Model reference '{model_ref}' is not a built-in model."),
                ));
            }
        }
    }
}

fn check_endpoints_exist(
    netlist: &Netlist,
    port_lookup: &HashMap<String, Vec<String>>,
    issues: &mut Vec<ValidationIssue>,
) {
    for pr in netlist.all_endpoint_refs() {
        if !netlist.instances.contains_key(&pr.instance) {
            issues.push(ValidationIssue::new(
                FailureType::WrongPort,
                format!(
                    "Instance {} does not exist. Defined instances: {:?}.",
                    pr.instance,
                    netlist.instances.keys().collect::<Vec<_>>()
                ),
            ));
            continue;
        }
        if let Some(ports) = port_lookup.get(&pr.instance) {
            if !ports.iter().any(|p| p == &pr.port) {
                // The exact message format of Fig. 4 in the paper.
                issues.push(ValidationIssue::new(
                    FailureType::WrongPort,
                    format!(
                        "Instance {} does not contain port {}. Available ports: {:?}.",
                        pr.instance, pr.port, ports
                    ),
                ));
            }
        }
    }
}

fn check_duplicate_connections(netlist: &Netlist, issues: &mut Vec<ValidationIssue>) {
    let mut seen: HashMap<String, usize> = HashMap::new();
    for c in &netlist.connections {
        *seen.entry(c.a.to_string()).or_insert(0) += 1;
        *seen.entry(c.b.to_string()).or_insert(0) += 1;
    }
    // External port targets also occupy their internal port.
    for (_, pr) in netlist.ports.iter() {
        *seen.entry(pr.to_string()).or_insert(0) += 1;
    }
    let mut duplicated: Vec<(&String, usize)> = seen
        .iter()
        .filter(|(_, &n)| n > 1)
        .map(|(k, &n)| (k, n))
        .collect();
    duplicated.sort();
    for (port, count) in duplicated {
        issues.push(ValidationIssue::new(
            FailureType::DuplicatePortConnection,
            format!(
                "Port {port} is connected {count} times; each port can only be connected once."
            ),
        ));
    }
}

fn check_bound_io(netlist: &Netlist, issues: &mut Vec<ValidationIssue>) {
    // An external port target must not appear in internal connections.
    // (check_duplicate_connections already counts it once for the ports
    // section; here we produce the specific Table II category.)
    for (external, pr) in netlist.ports.iter() {
        let bound_internally = netlist.connections.iter().any(|c| c.a == *pr || c.b == *pr);
        if bound_internally {
            issues.push(ValidationIssue::new(
                FailureType::BoundIoPorts,
                format!(
                    "External port '{external}' maps to {pr}, which also appears in the \
                     internal connections; I/O ports must only mark the system's start or \
                     end points."
                ),
            ));
        }
    }
}

fn check_port_spec(netlist: &Netlist, spec: &PortSpec, issues: &mut Vec<ValidationIssue>) {
    let expected = spec.expected_names();
    let actual: Vec<&str> = netlist.ports.keys().collect();

    let missing: Vec<&String> = expected
        .iter()
        .filter(|e| !actual.iter().any(|a| a == &e.as_str()))
        .collect();
    let extra: Vec<&&str> = actual
        .iter()
        .filter(|a| !expected.iter().any(|e| e == **a))
        .collect();

    if !missing.is_empty() {
        issues.push(ValidationIssue::new(
            FailureType::WrongPortCount,
            format!(
                "The design requires {} input port(s) and {} output port(s) \
                 ({:?}), but {:?} are missing.",
                spec.inputs, spec.outputs, expected, missing
            ),
        ));
    }
    if !extra.is_empty() {
        // Counts match the spec only when nothing is missing; surplus port
        // names are the "arbitrary or unused port names" of Table II.
        let failure = if missing.is_empty() {
            FailureType::DanglingPortConnection
        } else {
            FailureType::WrongPortCount
        };
        issues.push(ValidationIssue::new(
            failure,
            format!(
                "Port mapping(s) {extra:?} are not required by the design \
                 specification; omit unneeded port names."
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    /// A catalog with the handful of models the tests reference.
    struct TestCatalog;

    impl ComponentCatalog for TestCatalog {
        fn has_model(&self, model_ref: &str) -> bool {
            matches!(
                model_ref,
                "mmi1x2" | "waveguide" | "phaseshifter" | "mmi2x2"
            )
        }

        fn ports_of(&self, model_ref: &str) -> Option<Vec<String>> {
            match model_ref {
                "mmi1x2" => Some(vec!["I1".into(), "O1".into(), "O2".into()]),
                "mmi2x2" => Some(vec!["I1".into(), "I2".into(), "O1".into(), "O2".into()]),
                "waveguide" | "phaseshifter" => Some(vec!["I1".into(), "O1".into()]),
                _ => None,
            }
        }
    }

    /// The paper's golden MZI-ps-like design (correct).
    fn golden() -> Netlist {
        NetlistBuilder::new()
            .instance("mmi1", "mmi")
            .instance("mmi2", "mmi")
            .instance_with("waveBottom", "waveguide", &[("length", 20.0)])
            .instance("phaseShifter", "phaseshifter")
            .connect("mmi1,O1", "waveBottom,I1")
            .connect("waveBottom,O1", "mmi2,O1")
            .connect("mmi1,O2", "phaseShifter,I1")
            .connect("phaseShifter,O1", "mmi2,O2")
            .port("I1", "mmi1,I1")
            .port("O1", "mmi2,I1")
            .model("mmi", "mmi1x2")
            .model("waveguide", "waveguide")
            .model("phaseshifter", "phaseshifter")
            .build()
    }

    const SPEC: PortSpec = PortSpec::new(1, 1);

    #[test]
    fn golden_design_is_clean() {
        let issues = validate(&golden(), &TestCatalog, Some(&SPEC));
        assert!(issues.is_empty(), "unexpected issues: {issues:?}");
    }

    #[test]
    fn wrong_port_reproduces_paper_message() {
        // The exact error of Fig. 4: connecting to non-existent mmi2,I2.
        let mut n = golden();
        n.connections[1].b = crate::PortRef::new("mmi2", "I2");
        let issues = validate(&n, &TestCatalog, Some(&SPEC));
        let wrong: Vec<_> = issues
            .iter()
            .filter(|i| i.failure == FailureType::WrongPort)
            .collect();
        assert_eq!(wrong.len(), 1);
        assert!(
            wrong[0]
                .message
                .starts_with("Instance mmi2 does not contain port I2. Available ports:"),
            "message was: {}",
            wrong[0].message
        );
    }

    #[test]
    fn unknown_instance_is_wrong_port() {
        let mut n = golden();
        n.connections[0].b = crate::PortRef::new("ghost", "I1");
        let issues = validate(&n, &TestCatalog, Some(&SPEC));
        assert!(issues
            .iter()
            .any(|i| i.failure == FailureType::WrongPort && i.message.contains("ghost")));
    }

    #[test]
    fn undefined_model_detected() {
        let mut n = golden();
        n.models.insert("mmi".into(), "super_mmi_3000".into());
        let issues = validate(&n, &TestCatalog, Some(&SPEC));
        assert!(issues
            .iter()
            .any(|i| i.failure == FailureType::UndefinedModel
                && i.message.contains("super_mmi_3000")));
    }

    #[test]
    fn missing_model_binding_detected() {
        let mut n = golden();
        n.models.remove("mmi");
        let issues = validate(&n, &TestCatalog, Some(&SPEC));
        assert!(issues
            .iter()
            .any(|i| i.failure == FailureType::UndefinedModel && i.message.contains("'mmi'")));
    }

    #[test]
    fn swapped_models_entry_is_confusion() {
        let mut n = golden();
        n.models.remove("mmi");
        // The swapped form the paper shows: '"<ref>" : ...'.
        n.models.insert("mmi1x2".into(), "mmi".into());
        // Rebind instances so the missing-binding rule doesn't also fire.
        let issues = validate(&n, &TestCatalog, None);
        assert!(issues
            .iter()
            .any(|i| i.failure == FailureType::InstancesModelsConfusion));
    }

    #[test]
    fn duplicate_connection_detected() {
        let mut n = golden();
        // Connect mmi1,O1 a second time.
        n.connections.push(crate::Connection {
            a: crate::PortRef::new("mmi1", "O1"),
            b: crate::PortRef::new("mmi2", "I1"),
        });
        let issues = validate(&n, &TestCatalog, Some(&SPEC));
        assert!(issues
            .iter()
            .any(|i| i.failure == FailureType::DuplicatePortConnection
                && i.message.contains("mmi1,O1")));
    }

    #[test]
    fn bound_io_detected() {
        let mut n = golden();
        // External I1 maps to mmi1,I1; also wire mmi1,I1 internally.
        n.connections.push(crate::Connection {
            a: crate::PortRef::new("phaseShifter", "O1"),
            b: crate::PortRef::new("mmi1", "I1"),
        });
        let issues = validate(&n, &TestCatalog, Some(&SPEC));
        assert!(issues
            .iter()
            .any(|i| i.failure == FailureType::BoundIoPorts));
        // It is *also* a duplicate connection (phaseShifter,O1 used twice),
        // which mirrors how real tool errors overlap.
        assert!(issues
            .iter()
            .any(|i| i.failure == FailureType::DuplicatePortConnection));
    }

    #[test]
    fn underscore_in_instance_name_detected() {
        let n = NetlistBuilder::new()
            .instance("phase_shifter", "phaseshifter")
            .port("I1", "phase_shifter,I1")
            .port("O1", "phase_shifter,O1")
            .model("phaseshifter", "phaseshifter")
            .build();
        let issues = validate(&n, &TestCatalog, Some(&SPEC));
        assert!(issues
            .iter()
            .any(|i| i.failure == FailureType::InvalidComponentName));
    }

    #[test]
    fn missing_external_port_is_wrong_count() {
        let mut n = golden();
        n.ports.remove("O1");
        let issues = validate(&n, &TestCatalog, Some(&SPEC));
        assert!(issues
            .iter()
            .any(|i| i.failure == FailureType::WrongPortCount && i.message.contains("O1")));
    }

    #[test]
    fn surplus_external_port_is_dangling() {
        let mut n = golden();
        n.ports
            .insert("O9".into(), crate::PortRef::new("mmi2", "I1"));
        // mmi2,I1 now used twice (O1 and O9) → also duplicate; and O9 is a
        // surplus name → dangling.
        let issues = validate(&n, &TestCatalog, Some(&SPEC));
        assert!(issues
            .iter()
            .any(|i| i.failure == FailureType::DanglingPortConnection && i.message.contains("O9")));
    }

    #[test]
    fn no_spec_skips_port_count_checks() {
        let mut n = golden();
        n.ports.remove("O1");
        let issues = validate(&n, &TestCatalog, None);
        assert!(issues
            .iter()
            .all(|i| i.failure != FailureType::WrongPortCount));
    }

    #[test]
    fn port_spec_expected_names() {
        let spec = PortSpec::new(2, 3);
        assert_eq!(spec.expected_names(), vec!["I1", "I2", "O1", "O2", "O3"]);
    }
}
