//! Property-based tests for JSON and netlist round-trips.

use picbench_netlist::{json, Connection, Instance, Netlist, OrderedMap, PortRef};
use proptest::prelude::*;

fn json_value_strategy() -> impl Strategy<Value = json::Value> {
    let leaf = prop_oneof![
        Just(json::Value::Null),
        any::<bool>().prop_map(json::Value::Bool),
        (-1e9f64..1e9).prop_map(|n| json::Value::Number((n * 1e3).round() / 1e3)),
        "[a-zA-Z0-9 _,.\\-{}\"\\\\]{0,20}".prop_map(json::Value::String),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(json::Value::Array),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..5).prop_map(|entries| {
                // JSON objects keep first occurrence of duplicate keys.
                let mut seen = Vec::new();
                let mut out = Vec::new();
                for (k, v) in entries {
                    if !seen.contains(&k) {
                        seen.push(k.clone());
                        out.push((k, v));
                    }
                }
                json::Value::Object(out)
            }),
        ]
    })
}

fn identifier() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9]{0,10}"
}

fn netlist_strategy() -> impl Strategy<Value = Netlist> {
    (
        proptest::collection::vec(
            (
                identifier(),
                identifier(),
                proptest::collection::vec(("[a-z]{1,8}", -100.0f64..100.0), 0..3),
            ),
            1..6,
        ),
        proptest::collection::vec((identifier(), "[IO][1-4]", identifier(), "[IO][1-4]"), 0..6),
        proptest::collection::vec(("[IO][1-9]", identifier(), "[IO][1-4]"), 0..4),
        proptest::collection::vec((identifier(), identifier()), 0..4),
    )
        .prop_map(|(instances, connections, ports, models)| {
            let mut netlist = Netlist::default();
            for (name, component, settings) in instances {
                let mut inst = Instance::new(component);
                for (param, value) in settings {
                    inst.settings.insert(param, (value * 1e3).round() / 1e3);
                }
                netlist.instances.insert(name, inst);
            }
            for (ai, ap, bi, bp) in connections {
                netlist.connections.push(Connection {
                    a: PortRef::new(ai, ap),
                    b: PortRef::new(bi, bp),
                });
            }
            let mut port_map = OrderedMap::new();
            for (ext, inst, port) in ports {
                port_map.insert(ext, PortRef::new(inst, port));
            }
            netlist.ports = port_map;
            for (component, model_ref) in models {
                netlist.models.insert(component, model_ref);
            }
            netlist
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_roundtrip_compact(v in json_value_strategy()) {
        let text = json::to_string(&v);
        let back = json::parse(&text).expect("serialized JSON must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn json_roundtrip_pretty(v in json_value_strategy()) {
        let text = json::to_string_pretty(&v);
        let back = json::parse(&text).expect("pretty JSON must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn json_rejects_truncation(v in json_value_strategy()) {
        let text = json::to_string(&v);
        prop_assume!(text.len() > 1);
        // Cutting the last byte must never parse to the same value.
        let truncated = &text[..text.len() - 1];
        if let Ok(other) = json::parse(truncated) { prop_assert_ne!(other, v) }
    }

    #[test]
    fn netlist_roundtrip(n in netlist_strategy()) {
        let text = n.to_json_string();
        let back = Netlist::from_json_str(&text).expect("netlist JSON must parse");
        prop_assert_eq!(back, n);
    }

    #[test]
    fn portref_display_parse_roundtrip(inst in "[a-zA-Z][a-zA-Z0-9]{0,10}", port in "[IO][0-9]{1,2}") {
        let pr = PortRef::new(inst, port);
        let back: PortRef = pr.to_string().parse().expect("round-trip");
        prop_assert_eq!(back, pr);
    }
}
