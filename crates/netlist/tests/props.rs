//! Property-based tests for JSON and netlist round-trips.

use picbench_netlist::{json, Connection, Instance, Netlist, OrderedMap, PortRef};
use proptest::prelude::*;

fn json_value_strategy() -> impl Strategy<Value = json::Value> {
    let leaf = prop_oneof![
        Just(json::Value::Null),
        any::<bool>().prop_map(json::Value::Bool),
        (-1e9f64..1e9).prop_map(|n| json::Value::Number((n * 1e3).round() / 1e3)),
        "[a-zA-Z0-9 _,.\\-{}\"\\\\]{0,20}".prop_map(json::Value::String),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(json::Value::Array),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..5).prop_map(|entries| {
                // JSON objects keep first occurrence of duplicate keys.
                let mut seen = Vec::new();
                let mut out = Vec::new();
                for (k, v) in entries {
                    if !seen.contains(&k) {
                        seen.push(k.clone());
                        out.push((k, v));
                    }
                }
                json::Value::Object(out)
            }),
        ]
    })
}

fn identifier() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9]{0,10}"
}

fn netlist_strategy() -> impl Strategy<Value = Netlist> {
    (
        proptest::collection::vec(
            (
                identifier(),
                identifier(),
                proptest::collection::vec(("[a-z]{1,8}", -100.0f64..100.0), 0..3),
            ),
            1..6,
        ),
        proptest::collection::vec((identifier(), "[IO][1-4]", identifier(), "[IO][1-4]"), 0..6),
        proptest::collection::vec(("[IO][1-9]", identifier(), "[IO][1-4]"), 0..4),
        proptest::collection::vec((identifier(), identifier()), 0..4),
    )
        .prop_map(|(instances, connections, ports, models)| {
            let mut netlist = Netlist::default();
            for (name, component, settings) in instances {
                let mut inst = Instance::new(component);
                for (param, value) in settings {
                    inst.settings.insert(param, (value * 1e3).round() / 1e3);
                }
                netlist.instances.insert(name, inst);
            }
            for (ai, ap, bi, bp) in connections {
                netlist.connections.push(Connection {
                    a: PortRef::new(ai, ap),
                    b: PortRef::new(bi, bp),
                });
            }
            let mut port_map = OrderedMap::new();
            for (ext, inst, port) in ports {
                port_map.insert(ext, PortRef::new(inst, port));
            }
            netlist.ports = port_map;
            for (component, model_ref) in models {
                netlist.models.insert(component, model_ref);
            }
            netlist
        })
}

/// Rebuilds a netlist with every section's entry order driven by `perm`
/// (a stream of pseudo-random ranks) and with connection endpoints
/// flipped where `flips` says so — structurally identical, differently
/// serialized.
fn permute_netlist(n: &Netlist, perm: u64) -> Netlist {
    // Splitmix-style rank stream: deterministic per (perm, index).
    let rank = |i: usize| -> u64 {
        let mut z = perm ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^ (z >> 31)
    };
    let reorder = |keys: Vec<String>| -> Vec<String> {
        let mut ranked: Vec<(u64, String)> = keys
            .into_iter()
            .enumerate()
            .map(|(i, k)| (rank(i), k))
            .collect();
        ranked.sort();
        ranked.into_iter().map(|(_, k)| k).collect()
    };

    let mut out = Netlist::default();
    for name in reorder(n.instances.keys().map(str::to_string).collect()) {
        let inst = n.instances.get(&name).unwrap();
        let mut copy = Instance::new(inst.component.clone());
        for key in reorder(inst.settings.keys().map(str::to_string).collect()) {
            copy.settings
                .insert(key.clone(), *inst.settings.get(&key).unwrap());
        }
        out.instances.insert(name, copy);
    }
    let mut ranked_conns: Vec<(u64, Connection)> = n
        .connections
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let flipped = rank(i + 1000) % 2 == 0;
            let conn = if flipped {
                Connection {
                    a: c.b.clone(),
                    b: c.a.clone(),
                }
            } else {
                c.clone()
            };
            (rank(i), conn)
        })
        .collect();
    ranked_conns.sort_by_key(|x| x.0);
    out.connections = ranked_conns.into_iter().map(|(_, c)| c).collect();
    for name in reorder(n.ports.keys().map(str::to_string).collect()) {
        out.ports
            .insert(name.clone(), n.ports.get(&name).unwrap().clone());
    }
    for component in reorder(n.models.keys().map(str::to_string).collect()) {
        out.models
            .insert(component.clone(), n.models.get(&component).unwrap().clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_roundtrip_compact(v in json_value_strategy()) {
        let text = json::to_string(&v);
        let back = json::parse(&text).expect("serialized JSON must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn json_roundtrip_pretty(v in json_value_strategy()) {
        let text = json::to_string_pretty(&v);
        let back = json::parse(&text).expect("pretty JSON must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn json_rejects_truncation(v in json_value_strategy()) {
        let text = json::to_string(&v);
        prop_assume!(text.len() > 1);
        // Cutting the last byte must never parse to the same value.
        let truncated = &text[..text.len() - 1];
        if let Ok(other) = json::parse(truncated) { prop_assert_ne!(other, v) }
    }

    #[test]
    fn netlist_roundtrip(n in netlist_strategy()) {
        let text = n.to_json_string();
        let back = Netlist::from_json_str(&text).expect("netlist JSON must parse");
        prop_assert_eq!(back, n);
    }

    #[test]
    fn portref_display_parse_roundtrip(inst in "[a-zA-Z][a-zA-Z0-9]{0,10}", port in "[IO][0-9]{1,2}") {
        let pr = PortRef::new(inst, port);
        let back: PortRef = pr.to_string().parse().expect("round-trip");
        prop_assert_eq!(back, pr);
    }

    #[test]
    fn content_hash_invariant_under_permutation(n in netlist_strategy(), perm in any::<u64>()) {
        // Reordering sections, settings and connections (including endpoint
        // flips) must not change the canonical hash or the canonical form.
        let permuted = permute_netlist(&n, perm);
        prop_assert_eq!(permuted.content_hash(), n.content_hash());
        prop_assert_eq!(permuted.canonicalize(), n.canonicalize());
        // And serializing through JSON (which permutes nothing further but
        // exercises the parser) keeps the digest stable.
        let reparsed = Netlist::from_json_str(&permuted.to_json_string()).unwrap();
        prop_assert_eq!(reparsed.content_hash(), n.content_hash());
    }

    #[test]
    fn content_hash_distinct_under_setting_change(
        n in netlist_strategy(),
        delta in prop_oneof![Just(1e-9f64), Just(0.5), Just(1000.0)],
    ) {
        // Changing any one settings value must change the digest.
        let victim = n
            .instances
            .iter()
            .find(|(_, inst)| !inst.settings.is_empty())
            .map(|(name, inst)| {
                let key = inst.settings.keys().next().unwrap().to_string();
                (name.to_string(), key)
            });
        prop_assume!(victim.is_some());
        let (inst_name, key) = victim.unwrap();
        let mut tweaked = n.clone();
        let slot = tweaked
            .instances
            .get_mut(&inst_name)
            .unwrap()
            .settings
            .get_mut(&key)
            .unwrap();
        *slot += delta;
        prop_assert_ne!(tweaked.content_hash(), n.content_hash());
    }
}
