//! Multi-wire netlist construction helper.
//!
//! Mesh and switch-fabric goldens are built column by column over a set of
//! parallel optical "wires". [`WireBus`] tracks the dangling end of each
//! wire so construction code can say "feed wire 3 into this component's
//! I2" without hand-managing connection bookkeeping, then exposes the
//! first/last port of every wire as the external `I*`/`O*` ports.

use picbench_netlist::NetlistBuilder;

/// Tracks the open ends of `n` parallel wires during construction.
#[derive(Debug)]
pub struct WireBus {
    /// Current dangling end (an `"instance,port"` string) per wire, if the
    /// wire has been driven.
    ends: Vec<Option<String>>,
    /// First component input seen per wire — becomes the external input.
    entries: Vec<Option<String>>,
}

impl WireBus {
    /// Creates a bus of `n` untouched wires.
    pub fn new(n: usize) -> Self {
        WireBus {
            ends: vec![None; n],
            entries: vec![None; n],
        }
    }

    /// Number of wires.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the bus has no wires.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Routes wire `w` into a component input port.
    ///
    /// If the wire already has a dangling end, a connection is recorded;
    /// otherwise the input becomes the wire's external entry point.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn feed(&mut self, builder: &mut NetlistBuilder, w: usize, input: &str) {
        match self.ends[w].take() {
            Some(end) => {
                builder.connect(&end, input);
            }
            None => {
                assert!(
                    self.entries[w].is_none(),
                    "wire {w} already has an entry point"
                );
                self.entries[w] = Some(input.to_string());
            }
        }
    }

    /// Declares a component output port as the new dangling end of wire
    /// `w`.
    ///
    /// # Panics
    ///
    /// Panics if the wire already has a dangling end (feed it first).
    pub fn drive(&mut self, w: usize, output: &str) {
        assert!(
            self.ends[w].is_none(),
            "wire {w} already has a dangling end"
        );
        self.ends[w] = Some(output.to_string());
    }

    /// Convenience: runs wire `w` through a 1-in/1-out stage.
    pub fn through(&mut self, builder: &mut NetlistBuilder, w: usize, input: &str, output: &str) {
        self.feed(builder, w, input);
        self.drive(w, output);
    }

    /// Finalizes: exposes each wire's entry as `I{w+1}` and its dangling
    /// end as `O{w+1}`.
    ///
    /// # Panics
    ///
    /// Panics if any wire was never driven or never fed.
    pub fn expose_standard_ports(self, builder: &mut NetlistBuilder) {
        let n = self.len();
        for (w, entry) in self.entries.iter().enumerate() {
            let entry = entry
                .as_ref()
                .unwrap_or_else(|| panic!("wire {w} has no entry point"));
            builder.port(&format!("I{}", w + 1), entry);
        }
        for (w, end) in self.ends.iter().enumerate() {
            let end = end
                .as_ref()
                .unwrap_or_else(|| panic!("wire {w} has no dangling end"));
            builder.port(&format!("O{}", w + 1), end);
        }
        let _ = n;
    }

    /// Finalizes with explicit external input/output exposure control:
    /// `inputs[w]`/`outputs[w]` give the external names, or `None` to
    /// leave that side of the wire unexposed.
    ///
    /// # Panics
    ///
    /// Panics if a named wire lacks the corresponding endpoint.
    pub fn expose_ports(
        self,
        builder: &mut NetlistBuilder,
        inputs: &[Option<&str>],
        outputs: &[Option<&str>],
    ) {
        for (w, name) in inputs.iter().enumerate() {
            if let Some(name) = name {
                let entry = self.entries[w]
                    .as_ref()
                    .unwrap_or_else(|| panic!("wire {w} has no entry point"));
                builder.port(name, entry);
            }
        }
        for (w, name) in outputs.iter().enumerate() {
            if let Some(name) = name {
                let end = self.ends[w]
                    .as_ref()
                    .unwrap_or_else(|| panic!("wire {w} has no dangling end"));
                builder.port(name, end);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_two_stages() {
        let mut b = NetlistBuilder::new();
        b.instance("a", "waveguide").instance("c", "waveguide");
        let mut bus = WireBus::new(1);
        bus.through(&mut b, 0, "a,I1", "a,O1");
        bus.through(&mut b, 0, "c,I1", "c,O1");
        bus.expose_standard_ports(&mut b);
        b.model("waveguide", "waveguide");
        let n = b.build();
        assert_eq!(n.connections.len(), 1);
        assert_eq!(n.connections[0].a.to_string(), "a,O1");
        assert_eq!(n.connections[0].b.to_string(), "c,I1");
        assert_eq!(n.ports.get("I1").unwrap().to_string(), "a,I1");
        assert_eq!(n.ports.get("O1").unwrap().to_string(), "c,O1");
    }

    #[test]
    fn two_wires_into_one_block() {
        let mut b = NetlistBuilder::new();
        b.instance("sw", "switch2x2");
        let mut bus = WireBus::new(2);
        bus.feed(&mut b, 0, "sw,I1");
        bus.feed(&mut b, 1, "sw,I2");
        bus.drive(0, "sw,O1");
        bus.drive(1, "sw,O2");
        bus.expose_standard_ports(&mut b);
        b.model("switch2x2", "switch2x2");
        let n = b.build();
        assert_eq!(n.connections.len(), 0);
        assert_eq!(n.ports.len(), 4);
    }

    #[test]
    #[should_panic(expected = "has no dangling end")]
    fn unfinished_wire_panics() {
        let mut b = NetlistBuilder::new();
        let mut bus = WireBus::new(1);
        bus.feed(&mut b, 0, "a,I1");
        bus.expose_standard_ports(&mut b);
    }

    #[test]
    fn selective_exposure() {
        let mut b = NetlistBuilder::new();
        b.instance("a", "waveguide");
        let mut bus = WireBus::new(1);
        bus.through(&mut b, 0, "a,I1", "a,O1");
        bus.expose_ports(&mut b, &[Some("I1")], &[None]);
        b.model("waveguide", "waveguide");
        let n = b.build();
        assert_eq!(n.ports.len(), 1);
    }
}
