//! # picbench-problems
//!
//! The 24 PIC design problems of PICBench (Table I of the paper), each
//! with a natural-language description (Fig. 2 style), an expected
//! external-port specification and an expert golden design built
//! programmatically and verified by simulation.
//!
//! Categories (Table I): 6 optical-computing circuits, 7 optical
//! interconnects, 9 optical switches and 2 fundamental devices.
//!
//! ## Example
//!
//! ```
//! use picbench_problems::{suite, Category};
//!
//! let problems = suite();
//! assert_eq!(problems.len(), 24);
//! let switches = problems
//!     .iter()
//!     .filter(|p| p.category == Category::OpticalSwitch)
//!     .count();
//! assert_eq!(switches, 9);
//! ```

#![warn(missing_docs)]

pub mod fundamental;
pub mod interconnect;
pub mod meshes;
mod registry;
pub mod routing;
pub mod serde;
pub mod switches;
pub mod wiring;

pub use registry::{ProblemRegistry, RegistryError};
pub use serde::{problems_from_json, problems_to_json, ProblemDecodeError};

use picbench_math::MeshScheme;
use picbench_netlist::{Netlist, PortSpec};
use std::fmt;
use std::sync::Arc;

/// The four problem categories of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// MZI meshes, the NLS gate, the U-matrix block.
    OpticalComputing,
    /// Modulators, WDM mux/demux, the 90° hybrid.
    OpticalInterconnect,
    /// Switch fabrics.
    OpticalSwitch,
    /// Foundational multi-component devices.
    FundamentalDevice,
}

impl Category {
    /// All categories in Table I order.
    pub const ALL: [Category; 4] = [
        Category::OpticalComputing,
        Category::OpticalInterconnect,
        Category::OpticalSwitch,
        Category::FundamentalDevice,
    ];
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::OpticalComputing => write!(f, "Optical Computing"),
            Category::OpticalInterconnect => write!(f, "Optical Interconnects"),
            Category::OpticalSwitch => write!(f, "Optical Switch"),
            Category::FundamentalDevice => write!(f, "Fundamental Devices"),
        }
    }
}

/// One benchmark problem: description, expected ports, golden design.
///
/// Problems are plain data: the built-in Table I suite is constructed in
/// code, but problems can equally be loaded from JSON
/// ([`problems_from_json`]) and registered at runtime in the
/// [`ProblemRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    /// Stable identifier, e.g. `"mzi-ps"`.
    pub id: String,
    /// Display name as in Table I, e.g. `"MZI ps"`.
    pub name: String,
    /// Table I category.
    pub category: Category,
    /// The natural-language design brief handed to the language model.
    pub description: String,
    /// Required external ports.
    pub spec: PortSpec,
    /// The expert golden design.
    pub golden: Netlist,
}

impl Problem {
    /// Number of component instances in the golden design — the
    /// difficulty proxy used by the synthetic language models.
    pub fn golden_instance_count(&self) -> usize {
        self.golden.instances.len()
    }
}

fn mesh_description(n: usize, scheme: MeshScheme) -> String {
    format!(
        "Create a {n} x {n} programmable MZI mesh arranged using the {scheme} method. \
         Use the built-in calibrated 2x2 MZI blocks (mzi2x2) as the unit cells, wiring \
         them over {n} parallel waveguide modes in the {scheme} arrangement, and append \
         one zero-length phase shifter per output mode to set the output phases. The mesh \
         must realize the {n}-point discrete Fourier transform unitary.\n\
         Parameters:\n  modes = {n};\n  unit cell = mzi2x2 (theta, phi);\n  \
         target unitary = DFT({n})"
    )
}

fn problem(
    id: &'static str,
    name: &'static str,
    category: Category,
    description: String,
    spec: PortSpec,
    golden: Netlist,
) -> Problem {
    Problem {
        id: id.to_string(),
        name: name.to_string(),
        category,
        description,
        spec,
        golden,
    }
}

/// Constructs the full 24-problem benchmark suite in Table I order.
///
/// This is the expensive rebuild-the-world path; [`suite`] and [`find`]
/// serve clones out of the lazily-initialized [`ProblemRegistry`] instead
/// of calling this per lookup.
pub(crate) fn build_builtin_suite() -> Vec<Problem> {
    let mut problems = Vec::with_capacity(24);

    // --- Optical computing -------------------------------------------
    for (id, name, n) in [
        ("clements-4x4", "Clements 4x4", 4usize),
        ("clements-8x8", "Clements 8x8", 8),
    ] {
        problems.push(problem(
            id,
            name,
            Category::OpticalComputing,
            mesh_description(n, MeshScheme::Clements),
            PortSpec::new(n, n),
            meshes::mesh_golden(n, MeshScheme::Clements),
        ));
    }
    for (id, name, n) in [
        ("reck-4x4", "Reck 4x4", 4usize),
        ("reck-8x8", "Reck 8x8", 8),
    ] {
        problems.push(problem(
            id,
            name,
            Category::OpticalComputing,
            mesh_description(n, MeshScheme::Reck),
            PortSpec::new(n, n),
            meshes::mesh_golden(n, MeshScheme::Reck),
        ));
    }
    problems.push(problem(
        "nls",
        "NLS",
        Category::OpticalComputing,
        "Create a Non-Linear Sign (NLS) gate with a signal channel and two additional \
         ancilla channels, following the Knill-Laflamme-Milburn construction. Use \
         built-in directional couplers as the beam splitters: one coupler mixing the \
         signal with the first ancilla whose bar amplitude is sqrt(2)-1 (coupling \
         2*sqrt(2)-2), two couplers on the ancilla pair with coupling 1/(4-2*sqrt(2)), \
         and a zero-length phase shifter providing a pi phase flip on the signal arm.\n\
         Parameters:\n  channels = 3 (I1/O1 signal, I2-I3/O2-O3 ancillas);\n  \
         signal coupler coupling = 0.8284;\n  ancilla coupler coupling = 0.8536;\n  \
         signal phase = pi"
            .to_string(),
        PortSpec::new(3, 3),
        meshes::nls_golden(),
    ));
    problems.push(problem(
        "umatrix",
        "U-matrix block",
        Category::OpticalComputing,
        "Create a fundamental block representing a 2x2 unitary matrix of arbitrary \
         values. Use one built-in calibrated 2x2 MZI block (mzi2x2) with theta = 0.93 \
         and phi = 0.37, followed by one zero-length phase shifter per output arm with \
         phases 0.25 and -0.60 respectively.\n\
         Parameters:\n  theta = 0.93 rad;\n  phi = 0.37 rad;\n  \
         output phases = [0.25, -0.60] rad"
            .to_string(),
        PortSpec::new(2, 2),
        meshes::umatrix_golden(),
    ));

    // --- Optical interconnects ---------------------------------------
    problems.push(problem(
        "direct-modulator",
        "Direct modulator",
        Category::OpticalInterconnect,
        "Create an optical direct (intensity) modulator: an input access waveguide, a \
         built-in Mach-Zehnder modulator (mzm) biased at quadrature by driving the top \
         arm with a pi/2 phase, and an output access waveguide.\n\
         Parameters:\n  access waveguide length = 10 microns;\n  \
         mzm phase_top = pi/2"
            .to_string(),
        PortSpec::new(1, 1),
        interconnect::direct_modulator_golden(),
    ));
    problems.push(problem(
        "qpsk-modulator",
        "QPSK modulator",
        Category::OpticalInterconnect,
        "Create an optical QPSK modulator as an IQ stage: split the input with a 1x2 \
         MMI, place one push-pull built-in Mach-Zehnder modulator (mzm, phases \
         +pi/4/-pi/4) on each branch, shift the Q branch by 90 degrees with a \
         zero-length phase shifter, and recombine with a reversed 1x2 MMI.\n\
         Parameters:\n  mzm bias = +pi/4 / -pi/4 push-pull;\n  Q-branch phase = pi/2"
            .to_string(),
        PortSpec::new(1, 1),
        interconnect::qpsk_modulator_golden(),
    ));
    problems.push(problem(
        "qam8-modulator",
        "8-QAM modulator",
        Category::OpticalInterconnect,
        "Create an optical 8-QAM modulator: split the input asymmetrically (2/3 of the \
         power) into a QPSK IQ stage and an amplitude branch consisting of one push-pull \
         mzm followed by a 6.02 dB attenuator, then combine the two branches with a \
         reversed 1x2 MMI.\n\
         Parameters:\n  input split ratio = 2/3;\n  amplitude branch attenuation = \
         6.0206 dB;\n  mzm bias = +pi/4 / -pi/4 push-pull"
            .to_string(),
        PortSpec::new(1, 1),
        interconnect::qam8_modulator_golden(),
    ));
    problems.push(problem(
        "qam64-modulator",
        "64-QAM modulator",
        Category::OpticalInterconnect,
        "Create an optical 64-QAM modulator from three binary-weighted QPSK IQ stages: \
         fan the input out with two splitters, run each branch through its own IQ stage \
         (1x2 MMI, two push-pull mzms, 90-degree phase shifter, reversed 1x2 MMI \
         combiner), weight the stages with 0 dB, 6.02 dB and 12.04 dB attenuators, and \
         recombine through a tree of reversed 1x2 MMIs.\n\
         Parameters:\n  stage weights = 0 / 6.0206 / 12.0412 dB;\n  \
         mzm bias = +pi/4 / -pi/4 push-pull;\n  Q-branch phase = pi/2"
            .to_string(),
        PortSpec::new(1, 1),
        interconnect::qam64_modulator_golden(),
    ));
    problems.push(problem(
        "wdm-mux",
        "WDM mux",
        Category::OpticalInterconnect,
        "Create a 4-channel WDM multiplexer using built-in add-drop microrings \
         (ringad). Chain the four ring through-ports into a common bus ending at the \
         single output; feed each channel into its ring's add port. Tune each ring \
         radius so its azimuthal order-10 resonance sits on its channel: channels at \
         1.52, 1.54, 1.56 and 1.58 microns, couplings 0.05 on both buses.\n\
         Parameters:\n  channels = [1.52, 1.54, 1.56, 1.58] microns;\n  \
         coupling1 = coupling2 = 0.05;\n  azimuthal order m = 10"
            .to_string(),
        PortSpec::new(4, 1),
        interconnect::wdm_mux_golden(),
    ));
    problems.push(problem(
        "wdm-demux",
        "WDM demux",
        Category::OpticalInterconnect,
        "Create a 4-channel WDM demultiplexer using built-in add-drop microrings \
         (ringad). Carry the input past four chained rings on a bus; each ring is \
         resonant at one channel and drops it to its own output port. Channels at 1.52, \
         1.54, 1.56 and 1.58 microns; ring radii set for azimuthal order 10; couplings \
         0.05 on both buses.\n\
         Parameters:\n  channels = [1.52, 1.54, 1.56, 1.58] microns;\n  \
         coupling1 = coupling2 = 0.05;\n  azimuthal order m = 10"
            .to_string(),
        PortSpec::new(1, 4),
        interconnect::wdm_demux_golden(),
    ));
    problems.push(problem(
        "optical-hybrid",
        "Optical hybrid",
        Category::OpticalInterconnect,
        "Create a 90-degree optical hybrid mixing a signal (I1) and a local oscillator \
         (I2) into four quadrature outputs. Split each input with a 1x2 MMI, mix the \
         first halves in one 2x2 MMI and the second halves in another, and insert a \
         90-degree zero-length phase shifter on the local-oscillator path into the \
         second mixer.\n\
         Parameters:\n  hybrid phase = pi/2;\n  outputs = 4 (balanced quarters)"
            .to_string(),
        PortSpec::new(2, 4),
        interconnect::optical_hybrid_golden(),
    ));

    // --- Optical switches ---------------------------------------------
    problems.push(problem(
        "os-2x2",
        "OS 2x2",
        Category::OpticalSwitch,
        "Create a fundamental 2x2 optical switch as a balanced Mach-Zehnder structure: \
         two 2x2 MMIs joined by a top arm holding a phase shifter (length 10 microns, \
         phase pi, i.e. the bar state) and a bottom arm holding a plain waveguide of \
         the same length.\n\
         Parameters:\n  arm length = 10 microns;\n  phase = pi (bar state)"
            .to_string(),
        PortSpec::new(2, 2),
        switches::os2x2_golden(),
    ));
    for (id, name, n) in [
        ("crossbar-4x4", "Crossbar 4x4", 4usize),
        ("crossbar-8x8", "Crossbar 8x8", 8),
    ] {
        problems.push(problem(
            id,
            name,
            Category::OpticalSwitch,
            format!(
                "Create a {n} x {n} optical switching network based on the Crossbar \
                 architecture using built-in 2x2 switches (switch2x2). Cell (i, j) takes \
                 the row bus on I1 and the column bus on I2, passing east on O1 and south \
                 on O2; external input i enters row i and external output j leaves the \
                 bottom of column j. Configure the diagonal cells in the cross state so \
                 the fabric routes the identity permutation.\n\
                 Parameters:\n  size = {n} x {n};\n  switches = {};\n  \
                 routing = identity (diagonal cells crossed)",
                n * n
            ),
            PortSpec::new(n, n),
            switches::crossbar_golden(n),
        ));
    }
    for (id, name, n) in [
        ("spanke-4x4", "Spanke 4x4", 4usize),
        ("spanke-8x8", "Spanke 8x8", 8),
    ] {
        problems.push(problem(
            id,
            name,
            Category::OpticalSwitch,
            format!(
                "Create a {n} x {n} optical switching network based on the Spanke \
                 architecture using built-in 1x2 switches (switch1x2). Give every input a \
                 binary splitting tree and every output a reversed combining tree, and \
                 connect leaf j of input tree i to leaf i of output tree j. Program the \
                 trees for the identity permutation.\n\
                 Parameters:\n  size = {n} x {n};\n  switches = {};\n  routing = identity",
                2 * n * (n - 1)
            ),
            PortSpec::new(n, n),
            switches::spanke_golden(n),
        ));
    }
    for (id, name, n) in [
        ("benes-4x4", "Benes 4x4", 4usize),
        ("benes-8x8", "Benes 8x8", 8),
    ] {
        problems.push(problem(
            id,
            name,
            Category::OpticalSwitch,
            format!(
                "Create a {n} x {n} optical switching network based on the Benes \
                 architecture using built-in 2x2 switches (switch2x2): an input column of \
                 {h} switches, two recursive {h}-port Benes subnetworks, and an output \
                 column of {h} switches, wired in the classic butterfly pattern. Leave \
                 every switch in the bar state so the fabric routes the identity \
                 permutation.\n\
                 Parameters:\n  size = {n} x {n};\n  switches = {s};\n  routing = identity \
                 (all bar)",
                h = n / 2,
                s = n / 2 * (2 * (n as f64).log2() as usize - 1),
            ),
            PortSpec::new(n, n),
            switches::benes_golden(n),
        ));
    }
    for (id, name, n) in [
        ("spankebenes-4x4", "Spanke-Benes 4x4", 4usize),
        ("spankebenes-8x8", "Spanke-Benes 8x8", 8),
    ] {
        problems.push(problem(
            id,
            name,
            Category::OpticalSwitch,
            format!(
                "Create a {n} x {n} optical switching network based on the planar \
                 Spanke-Benes architecture using built-in 2x2 switches (switch2x2): {n} \
                 columns of nearest-neighbour switches, even columns pairing wires \
                 (1,2), (3,4), ... and odd columns pairing (2,3), (4,5), ..., for \
                 {s} switches total. Leave every switch in the bar state so the fabric \
                 routes the identity permutation.\n\
                 Parameters:\n  size = {n} x {n};\n  switches = {s};\n  routing = identity \
                 (all bar)",
                s = n * (n - 1) / 2,
            ),
            PortSpec::new(n, n),
            switches::spankebenes_golden(n),
        ));
    }

    // --- Fundamental devices ------------------------------------------
    problems.push(problem(
        "mzm",
        "MZM",
        Category::FundamentalDevice,
        "Create a Mach-Zehnder modulator as a circuit: split the input with a 1x2 MMI, \
         place a phase shifter of length 10 microns on each arm driven push-pull at \
         +pi/4 and -pi/4, and recombine with a reversed 1x2 MMI, biasing the modulator \
         at quadrature.\n\
         Parameters:\n  arm length = 10 microns;\n  bias = +pi/4 / -pi/4"
            .to_string(),
        PortSpec::new(1, 1),
        fundamental::mzm_golden(),
    ));
    problems.push(problem(
        "mzi-ps",
        "MZI ps",
        Category::FundamentalDevice,
        "Create a Mach-Zehnder interferometer (MZI) with a single input and output, \
         featuring a path length difference of dL. A phase shifter with a length of L \
         should be applied to the top arm to modulate the phase of the optical signal. \
         Use the built-in multimode interferometer (MMI) component for splitting and \
         combining the optical signals, and the built-in phase shifters to achieve the \
         desired phase modulation.\n\
         Parameters:\n  dL = 10 microns;\n  L = 10 microns"
            .to_string(),
        PortSpec::new(1, 1),
        fundamental::mzi_ps_golden(),
    ));

    problems
}

/// The full 24-problem benchmark suite in Table I order.
///
/// Served from the lazily-initialized global [`ProblemRegistry`]: the
/// suite is constructed (and its descriptions rendered) exactly once per
/// process, then cloned per call. Runtime-registered problems are *not*
/// included — use [`ProblemRegistry::all`] for the extended set.
pub fn suite() -> Vec<Problem> {
    ProblemRegistry::global()
        .builtins()
        .iter()
        .map(|p| (**p).clone())
        .collect()
}

/// Looks up a problem by id — O(1) after the registry's first access,
/// covering both built-in and runtime-registered problems.
pub fn find(id: &str) -> Option<Problem> {
    ProblemRegistry::global().get(id).map(|p| (*p).clone())
}

/// Looks up a problem by id without cloning it.
pub fn find_shared(id: &str) -> Option<Arc<Problem>> {
    ProblemRegistry::global().get(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_24_problems_in_table_i_proportions() {
        let problems = suite();
        assert_eq!(problems.len(), 24);
        let count = |c: Category| problems.iter().filter(|p| p.category == c).count();
        assert_eq!(count(Category::OpticalComputing), 6);
        assert_eq!(count(Category::OpticalInterconnect), 7);
        assert_eq!(count(Category::OpticalSwitch), 9);
        assert_eq!(count(Category::FundamentalDevice), 2);
    }

    #[test]
    fn ids_are_unique_and_kebab_case() {
        let problems = suite();
        let mut ids: Vec<&str> = problems.iter().map(|p| p.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 24);
        for id in ids {
            assert!(
                id.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "bad id {id}"
            );
        }
    }

    #[test]
    fn descriptions_follow_fig2_shape() {
        for p in suite() {
            assert!(
                p.description.starts_with("Create"),
                "{}: description should open with the design brief",
                p.id
            );
            assert!(
                p.description.contains("Parameters:"),
                "{}: description should list parameters as in Fig. 2",
                p.id
            );
        }
    }

    #[test]
    fn find_by_id() {
        assert_eq!(find("mzi-ps").unwrap().name, "MZI ps");
        assert!(find("warp-core").is_none());
    }

    #[test]
    fn port_specs_match_golden_ports() {
        for p in suite() {
            assert_eq!(
                p.golden.ports.len(),
                p.spec.inputs + p.spec.outputs,
                "{}: golden port count vs spec",
                p.id
            );
            for name in p.spec.expected_names() {
                assert!(
                    p.golden.ports.contains_key(&name),
                    "{}: golden missing expected port {name}",
                    p.id
                );
            }
        }
    }

    #[test]
    fn golden_instance_counts_span_difficulty_range() {
        let problems = suite();
        let min = problems
            .iter()
            .map(Problem::golden_instance_count)
            .min()
            .unwrap();
        let max = problems
            .iter()
            .map(Problem::golden_instance_count)
            .max()
            .unwrap();
        assert!(min <= 5, "easiest problem should be small, got {min}");
        assert!(max >= 36, "hardest problem should be large, got {max}");
    }
}
