//! Optical-computing golden designs: Clements/Reck MZI meshes, the
//! non-linear-sign gate and the 2×2 U-matrix block.

use crate::wiring::WireBus;
use picbench_math::{decomp, CMatrix, MeshDecomposition, MeshScheme};
use picbench_netlist::{Netlist, NetlistBuilder};

/// Builds a netlist realizing a mesh decomposition with `mzi2x2` blocks
/// and output `phaseshifter`s.
///
/// Block `k` (in application order) becomes instance `mzi{k+1}`; output
/// phases become `ophase{w+1}` (zero-length phase shifters, so the phase
/// is exact). The resulting circuit's external S-matrix equals the
/// decomposed unitary to numerical precision.
pub fn mesh_netlist(mesh: &MeshDecomposition) -> Netlist {
    let n = mesh.size;
    let mut b = NetlistBuilder::new();
    let mut bus = WireBus::new(n);

    for (k, f) in mesh.factors.iter().enumerate() {
        let name = format!("mzi{}", k + 1);
        b.instance_with(&name, "mzi2x2", &[("theta", f.theta), ("phi", f.phi)]);
        bus.feed(&mut b, f.mode, &format!("{name},I1"));
        bus.feed(&mut b, f.mode + 1, &format!("{name},I2"));
        bus.drive(f.mode, &format!("{name},O1"));
        bus.drive(f.mode + 1, &format!("{name},O2"));
    }

    for (w, phase) in mesh.output_phases.iter().enumerate() {
        let name = format!("ophase{}", w + 1);
        b.instance_with(
            &name,
            "phaseshifter",
            &[("length", 0.0), ("phase", phase.arg())],
        );
        bus.through(&mut b, w, &format!("{name},I1"), &format!("{name},O1"));
    }

    bus.expose_standard_ports(&mut b);
    b.model("mzi2x2", "mzi2x2");
    b.model("phaseshifter", "phaseshifter");
    b.build()
}

/// The deterministic target unitary used by the mesh goldens: the N-point
/// DFT, a maximally mixing "arbitrary" unitary that is the conventional
/// demonstration target for programmable meshes.
pub fn mesh_target(n: usize) -> CMatrix {
    decomp::dft_matrix(n)
}

/// Golden design for the `Clements N×N` / `Reck N×N` problems.
///
/// # Panics
///
/// Panics if `n < 2` (the decomposition of the DFT target cannot fail for
/// valid sizes).
pub fn mesh_golden(n: usize, scheme: MeshScheme) -> Netlist {
    let target = mesh_target(n);
    let mesh = decomp::decompose(&target, scheme)
        .expect("DFT matrix is unitary; decomposition cannot fail");
    mesh_netlist(&mesh)
}

/// Golden design for the `U-matrix block` problem: a single calibrated
/// 2×2 MZI block plus output phases realizing a fixed "arbitrary" 2×2
/// unitary.
pub fn umatrix_golden() -> Netlist {
    // A fixed, non-trivial 2×2 unitary: θ = 0.93, φ = 0.37 with output
    // phases (0.25, −0.60). Any values work; these make every parameter
    // non-default so functional checks are sharp.
    let mut b = NetlistBuilder::new();
    b.instance_with("ublock", "mzi2x2", &[("theta", 0.93), ("phi", 0.37)]);
    b.instance_with(
        "ophase1",
        "phaseshifter",
        &[("length", 0.0), ("phase", 0.25)],
    );
    b.instance_with(
        "ophase2",
        "phaseshifter",
        &[("length", 0.0), ("phase", -0.60)],
    );
    b.connect("ublock,O1", "ophase1,I1");
    b.connect("ublock,O2", "ophase2,I1");
    b.port("I1", "ublock,I1");
    b.port("I2", "ublock,I2");
    b.port("O1", "ophase1,O1");
    b.port("O2", "ophase2,O1");
    b.model("mzi2x2", "mzi2x2");
    b.model("phaseshifter", "phaseshifter");
    b.build()
}

/// Golden design for the `NLS` (non-linear sign) gate: the KLM three-mode
/// beam-splitter network with one signal channel (I1/O1) and two ancilla
/// channels.
///
/// Beam-splitter strengths follow the Knill-Laflamme-Milburn construction
/// expressed in this library's coupler convention (`coupling` = cross-port
/// power): the signal/ancilla splitter keeps bar amplitude `√2 − 1` (so
/// its cross coupling is `2√2 − 2 ≈ 0.828`), and the two ancilla
/// splitters use coupling `1/(4 − 2√2) ≈ 0.854`, with a π phase on the
/// signal arm providing the sign flip.
pub fn nls_golden() -> Netlist {
    let sqrt2 = std::f64::consts::SQRT_2;
    let r13 = 1.0 / (4.0 - 2.0 * sqrt2);
    let r2 = 2.0 * sqrt2 - 2.0;

    let mut b = NetlistBuilder::new();
    b.instance_with("bsa", "coupler", &[("coupling", r13)]);
    b.instance_with("bsb", "coupler", &[("coupling", r2)]);
    b.instance_with("bsc", "coupler", &[("coupling", r13)]);
    b.instance_with(
        "psflip",
        "phaseshifter",
        &[("length", 0.0), ("phase", std::f64::consts::PI)],
    );

    // Mode layout: wire 0 = signal, wires 1-2 = ancillas.
    // Stage 1: bsa mixes ancilla wires 1,2.
    // Stage 2: psflip then bsb mixes signal wire 0 with wire 1.
    // Stage 3: bsc mixes wires 1,2 again.
    b.connect("psflip,O1", "bsb,I1");
    b.connect("bsa,O1", "bsb,I2");
    b.connect("bsb,O2", "bsc,I1");

    b.port("I1", "psflip,I1");
    b.port("I2", "bsa,I1");
    b.port("I3", "bsa,I2");
    b.port("O1", "bsb,O1");
    b.port("O2", "bsc,O1");
    b.port("O3", "bsc,O2");

    // bsa,O2 → bsc,I2 closes the ancilla path.
    b.connect("bsa,O2", "bsc,I2");

    b.model("coupler", "coupler");
    b.model("phaseshifter", "phaseshifter");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_sim::{evaluate, Backend, Circuit, ModelRegistry};

    fn external_matrix(netlist: &Netlist, n_in: usize, wl: f64) -> CMatrix {
        let registry = ModelRegistry::with_builtins();
        let circuit = Circuit::elaborate(netlist, &registry, None).unwrap();
        let s = evaluate(&circuit, wl, Backend::default()).unwrap();
        CMatrix::from_fn(n_in, n_in, |r, c| {
            s.s(&format!("I{}", c + 1), &format!("O{}", r + 1)).unwrap()
        })
    }

    #[test]
    fn clements_mesh_realizes_dft_4() {
        let golden = mesh_golden(4, MeshScheme::Clements);
        let m = external_matrix(&golden, 4, 1.55);
        let err = m.max_abs_diff(&mesh_target(4));
        assert!(err < 1e-9, "mesh does not realize the DFT: {err:.2e}");
    }

    #[test]
    fn reck_mesh_realizes_dft_4() {
        let golden = mesh_golden(4, MeshScheme::Reck);
        let m = external_matrix(&golden, 4, 1.55);
        assert!(m.max_abs_diff(&mesh_target(4)) < 1e-9);
    }

    #[test]
    fn mesh_8x8_has_28_blocks() {
        for scheme in [MeshScheme::Clements, MeshScheme::Reck] {
            let golden = mesh_golden(8, scheme);
            let mzis = golden
                .instances
                .iter()
                .filter(|(_, inst)| inst.component == "mzi2x2")
                .count();
            assert_eq!(mzis, 28, "{scheme}");
            // Plus 8 output phase shifters.
            assert_eq!(golden.instances.len(), 36, "{scheme}");
        }
    }

    #[test]
    fn mesh_8x8_realizes_dft_8() {
        let golden = mesh_golden(8, MeshScheme::Clements);
        let m = external_matrix(&golden, 8, 1.55);
        assert!(m.max_abs_diff(&mesh_target(8)) < 1e-8);
    }

    #[test]
    fn mesh_is_wavelength_flat() {
        // mzi2x2 blocks are idealized (calibrated), so the mesh transfer
        // must not depend on wavelength.
        let golden = mesh_golden(4, MeshScheme::Clements);
        let a = external_matrix(&golden, 4, 1.51);
        let b = external_matrix(&golden, 4, 1.59);
        assert!(a.max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn umatrix_block_is_unitary() {
        let golden = umatrix_golden();
        let m = external_matrix(&golden, 2, 1.55);
        assert!(m.is_unitary(1e-9));
        // Must be non-trivial (not the identity).
        assert!(m.max_abs_diff(&CMatrix::identity(2)) > 0.3);
    }

    #[test]
    fn nls_gate_is_lossless_three_mode() {
        let golden = nls_golden();
        let m = external_matrix(&golden, 3, 1.55);
        assert!(m.is_unitary(1e-9), "NLS network must be unitary");
        // The KLM signal-signal amplitude is 1 − √2 ≈ −0.414 up to the
        // network's phase conventions.
        let s11 = m[(0, 0)].abs();
        assert!(
            (s11 - (std::f64::consts::SQRT_2 - 1.0)).abs() < 1e-6,
            "signal amplitude should be √2−1, got {s11}"
        );
    }

    #[test]
    fn mesh_netlists_have_no_underscores() {
        let golden = mesh_golden(8, MeshScheme::Clements);
        for (name, _) in golden.instances.iter() {
            assert!(!name.contains('_'));
        }
    }
}
