//! Optical-interconnect golden designs: modulators, WDM mux/demux and the
//! 90° optical hybrid.

use picbench_netlist::{Netlist, NetlistBuilder};
use std::f64::consts::{FRAC_PI_2, PI};

/// Golden design for the `Direct modulator` problem: an input waveguide, a
/// Mach-Zehnder modulator biased at quadrature (half transmission) and an
/// output waveguide.
pub fn direct_modulator_golden() -> Netlist {
    let mut b = NetlistBuilder::new();
    b.instance_with("wgin", "waveguide", &[("length", 10.0)]);
    b.instance_with("mod1", "mzm", &[("phase_top", FRAC_PI_2)]);
    b.instance_with("wgout", "waveguide", &[("length", 10.0)]);
    b.connect("wgin,O1", "mod1,I1");
    b.connect("mod1,O1", "wgout,I1");
    b.port("I1", "wgin,I1");
    b.port("O1", "wgout,O1");
    b.model("waveguide", "waveguide");
    b.model("mzm", "mzm");
    b.build()
}

/// Appends one IQ (QPSK) modulator stage to a builder.
///
/// Creates instances `{prefix}split`, `{prefix}mzmi`, `{prefix}mzmq`,
/// `{prefix}ps` and `{prefix}comb`; the stage runs from
/// `{prefix}split,I1` to `{prefix}comb,I1` (the combiner is a reversed
/// 1×2 MMI, as in the paper's golden MZI design).
fn add_iq_stage(b: &mut NetlistBuilder, prefix: &str, bias_i: f64, bias_q: f64) {
    let split = format!("{prefix}split");
    let mzmi = format!("{prefix}mzmi");
    let mzmq = format!("{prefix}mzmq");
    let ps = format!("{prefix}ps");
    let comb = format!("{prefix}comb");
    b.instance(&split, "mmi");
    b.instance_with(
        &mzmi,
        "mzm",
        &[("phase_top", bias_i), ("phase_bottom", -bias_i)],
    );
    b.instance_with(
        &mzmq,
        "mzm",
        &[("phase_top", bias_q), ("phase_bottom", -bias_q)],
    );
    b.instance_with(
        &ps,
        "phaseshifter",
        &[("length", 0.0), ("phase", FRAC_PI_2)],
    );
    b.instance(&comb, "mmi");
    b.connect(&format!("{split},O1"), &format!("{mzmi},I1"));
    b.connect(&format!("{split},O2"), &format!("{mzmq},I1"));
    b.connect(&format!("{mzmi},O1"), &format!("{comb},O1"));
    b.connect(&format!("{mzmq},O1"), &format!("{ps},I1"));
    b.connect(&format!("{ps},O1"), &format!("{comb},O2"));
}

fn iq_models(b: &mut NetlistBuilder) {
    b.model("mmi", "mmi1x2");
    b.model("mzm", "mzm");
    b.model("phaseshifter", "phaseshifter");
}

/// Golden design for the `QPSK modulator` problem: a single IQ stage —
/// parallel I and Q Mach-Zehnder modulators with a 90° shift on the Q
/// path.
pub fn qpsk_modulator_golden() -> Netlist {
    let mut b = NetlistBuilder::new();
    add_iq_stage(&mut b, "iq", PI / 4.0, PI / 4.0);
    b.port("I1", "iqsplit,I1");
    b.port("O1", "iqcomb,I1");
    iq_models(&mut b);
    b.build()
}

/// Golden design for the `8-QAM modulator` problem: a QPSK stage in
/// parallel with an amplitude (BPSK) branch at half amplitude, combined
/// asymmetrically.
pub fn qam8_modulator_golden() -> Netlist {
    let mut b = NetlistBuilder::new();
    // Asymmetric split: 2/3 of the power to the QPSK stage.
    b.instance_with("insplit", "splitter", &[("ratio", 2.0 / 3.0)]);
    add_iq_stage(&mut b, "iq", PI / 4.0, PI / 4.0);
    b.instance_with(
        "mzmamp",
        "mzm",
        &[("phase_top", PI / 4.0), ("phase_bottom", -PI / 4.0)],
    );
    b.instance_with("att", "attenuator", &[("attenuation", 6.0206)]);
    b.instance("outcomb", "mmi");
    b.connect("insplit,O1", "iqsplit,I1");
    b.connect("insplit,O2", "mzmamp,I1");
    b.connect("mzmamp,O1", "att,I1");
    b.connect("iqcomb,I1", "outcomb,O1");
    b.connect("att,O1", "outcomb,O2");
    b.port("I1", "insplit,I1");
    b.port("O1", "outcomb,I1");
    iq_models(&mut b);
    b.model("splitter", "splitter");
    b.model("attenuator", "attenuator");
    b.build()
}

/// Golden design for the `64-QAM modulator` problem: three IQ stages with
/// binary-weighted amplitudes (0 dB, 6 dB, 12 dB) combined through a
/// splitter/combiner tree.
pub fn qam64_modulator_golden() -> Netlist {
    let mut b = NetlistBuilder::new();
    // Splitter tree: stage weights 1, 1/2, 1/4 in amplitude are applied by
    // attenuators; the splitters just fan out.
    b.instance("splita", "splitter");
    b.instance("splitb", "splitter");
    for (idx, prefix) in ["msb", "mid", "lsb"].iter().enumerate() {
        add_iq_stage(&mut b, prefix, PI / 4.0, PI / 4.0);
        let att_db = 6.0206 * idx as f64;
        b.instance_with(
            &format!("{prefix}att"),
            "attenuator",
            &[("attenuation", att_db)],
        );
        b.connect(&format!("{prefix}comb,I1"), &format!("{prefix}att,I1"));
    }
    b.connect("splita,O1", "msbsplit,I1");
    b.connect("splita,O2", "splitb,I1");
    b.connect("splitb,O1", "midsplit,I1");
    b.connect("splitb,O2", "lsbsplit,I1");
    // Combiner tree (reversed 1×2 MMIs).
    b.instance("comba", "mmi");
    b.instance("combb", "mmi");
    b.connect("midatt,O1", "combb,O1");
    b.connect("lsbatt,O1", "combb,O2");
    b.connect("msbatt,O1", "comba,O1");
    b.connect("combb,I1", "comba,O2");
    b.port("I1", "splita,I1");
    b.port("O1", "comba,I1");
    iq_models(&mut b);
    b.model("splitter", "splitter");
    b.model("attenuator", "attenuator");
    b.build()
}

/// The four WDM channel wavelengths (µm) used by the mux/demux goldens.
pub const WDM_CHANNELS_UM: [f64; 4] = [1.52, 1.54, 1.56, 1.58];

/// Ring radius resonant at `wavelength_um` with azimuthal order chosen
/// near a 1.1 µm radius (small enough that the free spectral range
/// exceeds the 1510–1590 nm band, so each ring addresses exactly one
/// channel).
pub fn wdm_ring_radius(wavelength_um: f64) -> f64 {
    let neff = picbench_sparams::models::effective_index(
        wavelength_um,
        picbench_sparams::models::DEFAULT_NEFF,
        picbench_sparams::models::DEFAULT_NG,
        picbench_sparams::models::DEFAULT_WL0_UM,
    );
    let m = 10.0; // azimuthal order
    m * wavelength_um / (2.0 * PI * neff)
}

fn wdm_ring(b: &mut NetlistBuilder, name: &str, channel_um: f64) {
    b.instance_with(
        name,
        "ringad",
        &[
            ("radius", wdm_ring_radius(channel_um)),
            ("coupling1", 0.05),
            ("coupling2", 0.05),
        ],
    );
}

/// Golden design for the `WDM demux` problem: a bus waveguide carrying
/// four channels past four add-drop rings, each resonant at one channel
/// and dropping it to its own output.
pub fn wdm_demux_golden() -> Netlist {
    let mut b = NetlistBuilder::new();
    for (k, &ch) in WDM_CHANNELS_UM.iter().enumerate() {
        wdm_ring(&mut b, &format!("ring{}", k + 1), ch);
    }
    // Bus: input → ring1 → ring2 → ring3 → ring4 (through ports chained).
    b.connect("ring1,O1", "ring2,I1");
    b.connect("ring2,O1", "ring3,I1");
    b.connect("ring3,O1", "ring4,I1");
    b.port("I1", "ring1,I1");
    for k in 1..=4 {
        b.port(&format!("O{k}"), &format!("ring{k},O2"));
    }
    b.model("ringad", "ringad");
    b.build()
}

/// Golden design for the `WDM mux` problem: the demux run in reverse —
/// each channel enters its ring's add port and joins the common bus.
pub fn wdm_mux_golden() -> Netlist {
    let mut b = NetlistBuilder::new();
    for (k, &ch) in WDM_CHANNELS_UM.iter().enumerate() {
        wdm_ring(&mut b, &format!("ring{}", k + 1), ch);
    }
    b.connect("ring1,O1", "ring2,I1");
    b.connect("ring2,O1", "ring3,I1");
    b.connect("ring3,O1", "ring4,I1");
    for k in 1..=4usize {
        b.port(&format!("I{k}"), &format!("ring{k},I2"));
    }
    b.port("O1", "ring4,O1");
    b.model("ringad", "ringad");
    b.build()
}

/// Golden design for the `Optical hybrid` problem: a 90° hybrid mixing a
/// signal (I1) and a local oscillator (I2) into four quadrature outputs,
/// built from two 1×2 splitters, two 2×2 MMIs and a 90° phase shifter.
pub fn optical_hybrid_golden() -> Netlist {
    let mut b = NetlistBuilder::new();
    b.instance("splitsig", "mmi");
    b.instance("splitlo", "mmi");
    b.instance_with(
        "ps90",
        "phaseshifter",
        &[("length", 0.0), ("phase", FRAC_PI_2)],
    );
    b.instance("mixa", "mmi22");
    b.instance("mixb", "mmi22");
    b.connect("splitsig,O1", "mixa,I1");
    b.connect("splitlo,O1", "mixa,I2");
    b.connect("splitsig,O2", "mixb,I1");
    b.connect("splitlo,O2", "ps90,I1");
    b.connect("ps90,O1", "mixb,I2");
    b.port("I1", "splitsig,I1");
    b.port("I2", "splitlo,I1");
    b.port("O1", "mixa,O1");
    b.port("O2", "mixa,O2");
    b.port("O3", "mixb,O1");
    b.port("O4", "mixb,O2");
    b.model("mmi", "mmi1x2");
    b.model("mmi22", "mmi2x2");
    b.model("phaseshifter", "phaseshifter");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_sim::{simulate_netlist, Backend, ModelRegistry, PortSpec, WavelengthGrid};

    fn simulate(netlist: &Netlist, spec: PortSpec) -> picbench_sim::FrequencyResponse {
        let registry = ModelRegistry::with_builtins();
        simulate_netlist(
            netlist,
            &registry,
            Some(&spec),
            &WavelengthGrid::paper_default(),
            Backend::default(),
        )
        .unwrap()
    }

    #[test]
    fn direct_modulator_sits_at_quadrature() {
        let r = simulate(&direct_modulator_golden(), PortSpec::new(1, 1));
        let t = r.transmission("I1", "O1").unwrap();
        for v in t {
            // cos²(π/4) = 1/2, minus a little waveguide loss.
            assert!((v.norm_sqr() - 0.5).abs() < 0.01, "got {}", v.norm_sqr());
        }
    }

    #[test]
    fn qpsk_modulator_passes_light() {
        let r = simulate(&qpsk_modulator_golden(), PortSpec::new(1, 1));
        let t = r.transmission("I1", "O1").unwrap();
        for v in t {
            assert!(v.norm_sqr() > 0.05 && v.norm_sqr() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn qam_goldens_are_passive_and_transmit() {
        for golden in [qam8_modulator_golden(), qam64_modulator_golden()] {
            let r = simulate(&golden, PortSpec::new(1, 1));
            let t = r.transmission("I1", "O1").unwrap();
            for v in &t {
                assert!(v.norm_sqr() <= 1.0 + 1e-9, "gain is unphysical");
            }
            assert!(
                t.iter().map(|v| v.norm_sqr()).fold(0.0, f64::max) > 0.01,
                "modulator should transmit some light"
            );
        }
    }

    #[test]
    fn qam64_has_three_iq_stages() {
        let golden = qam64_modulator_golden();
        let mzms = golden
            .instances
            .iter()
            .filter(|(_, i)| i.component == "mzm")
            .count();
        assert_eq!(mzms, 6, "three IQ stages, two MZMs each");
        assert!(golden.instances.len() >= 20);
    }

    #[test]
    fn wdm_demux_separates_channels() {
        let r = simulate(&wdm_demux_golden(), PortSpec::new(1, 4));
        let wavelengths = r.wavelengths().to_vec();
        for (k, &ch) in WDM_CHANNELS_UM.iter().enumerate() {
            let out = format!("O{}", k + 1);
            let t = r.transmission_db("I1", &out).unwrap();
            // Transmission at the channel wavelength…
            let at = |target: f64| -> f64 {
                let idx = wavelengths
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        (a.1 - target)
                            .abs()
                            .partial_cmp(&(b.1 - target).abs())
                            .unwrap()
                    })
                    .unwrap()
                    .0;
                t[idx]
            };
            let on_channel = at(ch);
            assert!(
                on_channel > -8.0,
                "channel {k} should drop near {ch} um, got {on_channel} dB"
            );
            // …must beat the transmission at the other channels by a
            // healthy margin (isolation).
            for (j, &other) in WDM_CHANNELS_UM.iter().enumerate() {
                if j != k {
                    let off_channel = at(other);
                    assert!(
                        on_channel - off_channel > 8.0,
                        "isolation {k} vs {j}: {on_channel} vs {off_channel} dB"
                    );
                }
            }
        }
    }

    #[test]
    fn wdm_mux_combines_channels() {
        let r = simulate(&wdm_mux_golden(), PortSpec::new(4, 1));
        let wavelengths = r.wavelengths().to_vec();
        for (k, &ch) in WDM_CHANNELS_UM.iter().enumerate() {
            let input = format!("I{}", k + 1);
            let t = r.transmission_db(&input, "O1").unwrap();
            let idx = wavelengths
                .iter()
                .enumerate()
                .min_by(|a, b| (a.1 - ch).abs().partial_cmp(&(b.1 - ch).abs()).unwrap())
                .unwrap()
                .0;
            assert!(
                t[idx] > -8.0,
                "channel {k} should reach the common port at {ch} um, got {} dB",
                t[idx]
            );
        }
    }

    #[test]
    fn hybrid_outputs_are_balanced_quarters() {
        let r = simulate(&optical_hybrid_golden(), PortSpec::new(2, 4));
        for out in ["O1", "O2", "O3", "O4"] {
            let t = r.transmission("I1", out).unwrap();
            for v in t {
                assert!(
                    (v.norm_sqr() - 0.25).abs() < 1e-9,
                    "signal power to {out} should be 1/4, got {}",
                    v.norm_sqr()
                );
            }
        }
    }

    #[test]
    fn hybrid_has_quadrature_relationship() {
        // The relative phase between the two mixers' beat terms is 90°:
        // compare arg(S_sig→O1 · conj(S_lo→O1)) with the same at O3.
        let r = simulate(&optical_hybrid_golden(), PortSpec::new(2, 4));
        let idx = 40; // mid-band sample
        let s = r.sample(idx).unwrap();
        let beat1 = (s.s("I1", "O1").unwrap() * s.s("I2", "O1").unwrap().conj()).arg();
        let beat3 = (s.s("I1", "O3").unwrap() * s.s("I2", "O3").unwrap().conj()).arg();
        let mut diff = (beat1 - beat3).abs() % (2.0 * PI);
        if diff > PI {
            diff = 2.0 * PI - diff;
        }
        assert!(
            (diff - FRAC_PI_2).abs() < 1e-6,
            "quadrature phase should be 90°, got {} rad",
            diff
        );
    }
}
