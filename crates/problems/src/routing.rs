//! Permutation routing for the switch fabrics.
//!
//! Given a permutation `perm` (input `i` exits at output `perm[i]`), these
//! algorithms compute the switch states that realize it:
//!
//! * crossbar — activate cell `(i, perm[i])` (trivial);
//! * Spanke — program each input tree to leaf `perm[i]` and each output
//!   tree to leaf `perm⁻¹(j)` (trivial);
//! * Benes — the classic **looping algorithm** over the recursive
//!   structure;
//! * Spanke-Benes — **odd-even transposition sorting**: run the planar
//!   column pattern as a sorting network over the destination labels and
//!   set a switch to cross exactly when the comparator swaps.
//!
//! All of these are validated by full S-parameter simulation in the test
//! suite: the routed fabric must deliver ≥ 99% of each input's power to
//! its permuted output.

use crate::switches::{
    benes_fabric, crossbar_fabric, spanke_fabric, spankebenes_column_pairs, spankebenes_fabric,
    BenesFabric, BenesNode,
};
use picbench_netlist::Netlist;
use std::error::Error;
use std::fmt;

/// Error for malformed permutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPermutationError {
    /// Explanation.
    pub reason: String,
}

impl fmt::Display for InvalidPermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid permutation: {}", self.reason)
    }
}

impl Error for InvalidPermutationError {}

/// Checks that `perm` is a permutation of `0..perm.len()`.
///
/// # Errors
///
/// Returns [`InvalidPermutationError`] otherwise.
pub fn check_permutation(perm: &[usize]) -> Result<(), InvalidPermutationError> {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n {
            return Err(InvalidPermutationError {
                reason: format!("target {p} out of range for size {n}"),
            });
        }
        if seen[p] {
            return Err(InvalidPermutationError {
                reason: format!("target {p} appears twice"),
            });
        }
        seen[p] = true;
    }
    Ok(())
}

/// Inverse of a (valid) permutation.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Routes an `n×n` crossbar: returns the fabric with cell `(i, perm[i])`
/// active.
///
/// # Errors
///
/// Returns [`InvalidPermutationError`] for malformed permutations.
pub fn route_crossbar(n: usize, perm: &[usize]) -> Result<Netlist, InvalidPermutationError> {
    expect_len(n, perm)?;
    check_permutation(perm)?;
    Ok(crossbar_fabric(n, perm))
}

/// Routes an `n×n` Spanke fabric.
///
/// # Errors
///
/// Returns [`InvalidPermutationError`] for malformed permutations.
pub fn route_spanke(n: usize, perm: &[usize]) -> Result<Netlist, InvalidPermutationError> {
    expect_len(n, perm)?;
    check_permutation(perm)?;
    Ok(spanke_fabric(n, perm))
}

fn expect_len(n: usize, perm: &[usize]) -> Result<(), InvalidPermutationError> {
    if perm.len() != n {
        return Err(InvalidPermutationError {
            reason: format!("expected {n} entries, got {}", perm.len()),
        });
    }
    Ok(())
}

/// Computes Benes switch states for `perm` with the looping algorithm,
/// returning `(switch name, state)` pairs.
fn benes_states(node: &BenesNode, perm: &[usize]) -> Vec<(String, f64)> {
    let n = perm.len();
    match node {
        BenesNode::Switch { name } => {
            debug_assert_eq!(n, 2);
            let state = if perm[0] == 0 { 0.0 } else { 1.0 };
            vec![(name.clone(), state)]
        }
        BenesNode::Stage {
            half,
            input_col,
            output_col,
            top,
            bottom,
        } => {
            let half = *half;
            let inv = invert_permutation(perm);
            // State conventions: an input switch in cross sends its even
            // input to the bottom subnetwork; an output switch in cross
            // receives its even output from the bottom subnetwork. For an
            // input `i` routed via `via_top`, the switch state is
            // `cross = (i even) != via_top`, and symmetrically for
            // outputs.
            let mut in_state: Vec<Option<bool>> = vec![None; half];
            let mut out_state: Vec<Option<bool>> = vec![None; half];

            // Looping algorithm: anchor an undecided input switch by
            // sending its even input through the top subnetwork, then
            // follow the forced chain. Routing input `i` via the top
            // forces its output switch; the sibling output of that switch
            // must arrive via the bottom, which forces its source input
            // `j`'s switch; `j`'s partner input `j^1` then rides the top
            // again, and so on until the chain returns to the anchor.
            // Every input the chain routes via the top constrains its
            // output switch; the bottom-routed `j`s share those output
            // switches, so they add no new constraints.
            for start in 0..half {
                if in_state[start].is_some() {
                    continue;
                }
                let mut input = 2 * start; // always routed via TOP here
                loop {
                    let sw = input / 2;
                    let cross = input % 2 == 1; // odd input via top ⇒ cross
                    match in_state[sw] {
                        None => in_state[sw] = Some(cross),
                        Some(existing) => debug_assert_eq!(existing, cross),
                    }

                    let output = perm[input];
                    let out_cross = output % 2 == 1; // odd output via top ⇒ cross
                    debug_assert!(out_state[output / 2].is_none_or(|s| s == out_cross));
                    out_state[output / 2] = Some(out_cross);

                    // Sibling output arrives via the BOTTOM from input j.
                    let j = inv[output ^ 1];
                    let j_cross = j.is_multiple_of(2); // even input via bottom ⇒ cross
                    match in_state[j / 2] {
                        Some(existing) => {
                            debug_assert_eq!(existing, j_cross, "looping conflict");
                            break; // loop closed at the anchor switch
                        }
                        None => in_state[j / 2] = Some(j_cross),
                    }
                    // j's partner input rides the top subnetwork next.
                    input = j ^ 1;
                }
            }

            // Derive the sub-permutations.
            let mut top_perm = vec![0usize; half];
            let mut bottom_perm = vec![0usize; half];
            for (input, &output) in perm.iter().enumerate().take(n) {
                let sw = input / 2;
                let cross = in_state[sw].expect("all input switches decided");
                let via_top = (input % 2 == 0) != cross;
                if via_top {
                    top_perm[sw] = output / 2;
                } else {
                    bottom_perm[sw] = output / 2;
                }
            }

            let mut states = Vec::new();
            for (k, name) in input_col.iter().enumerate() {
                states.push((name.clone(), if in_state[k].unwrap() { 1.0 } else { 0.0 }));
            }
            for (k, name) in output_col.iter().enumerate() {
                let s = out_state[k].expect("all output switches decided");
                states.push((name.clone(), if s { 1.0 } else { 0.0 }));
            }
            states.extend(benes_states(top, &top_perm));
            states.extend(benes_states(bottom, &bottom_perm));
            states
        }
    }
}

/// Applies `(instance, state)` pairs to a netlist's switch settings.
///
/// # Panics
///
/// Panics if an instance does not exist.
pub fn apply_switch_states(netlist: &mut Netlist, states: &[(String, f64)]) {
    for (name, state) in states {
        let inst = netlist
            .instances
            .get_mut(name)
            .unwrap_or_else(|| panic!("no such switch instance {name}"));
        inst.settings.insert("state".to_string(), *state);
    }
}

/// Routes an `n×n` Benes fabric with the looping algorithm.
///
/// # Errors
///
/// Returns [`InvalidPermutationError`] for malformed permutations.
pub fn route_benes(n: usize, perm: &[usize]) -> Result<Netlist, InvalidPermutationError> {
    expect_len(n, perm)?;
    check_permutation(perm)?;
    let BenesFabric {
        mut netlist, root, ..
    } = benes_fabric(n);
    let states = benes_states(&root, perm);
    apply_switch_states(&mut netlist, &states);
    Ok(netlist)
}

/// Routes an `n×n` Spanke-Benes fabric by odd-even transposition
/// sorting.
///
/// # Errors
///
/// Returns [`InvalidPermutationError`] for malformed permutations.
pub fn route_spankebenes(n: usize, perm: &[usize]) -> Result<Netlist, InvalidPermutationError> {
    expect_len(n, perm)?;
    check_permutation(perm)?;
    // Each wire carries its destination label; sorting the labels with the
    // planar comparator pattern routes every label to its position.
    let mut labels: Vec<usize> = perm.to_vec();
    let mut states: Vec<Vec<f64>> = Vec::with_capacity(n);
    for col in 0..n {
        let pairs = spankebenes_column_pairs(n, col);
        let mut col_states = Vec::with_capacity(pairs.len());
        for &row in &pairs {
            if labels[row] > labels[row + 1] {
                labels.swap(row, row + 1);
                col_states.push(1.0);
            } else {
                col_states.push(0.0);
            }
        }
        states.push(col_states);
    }
    debug_assert!(labels.windows(2).all(|w| w[0] <= w[1]), "sort incomplete");
    Ok(spankebenes_fabric(n, &states))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switches::tests::assert_routes;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn random_perm(n: usize, seed: u64) -> Vec<usize> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut p: Vec<usize> = (0..n).collect();
        p.shuffle(&mut rng);
        p
    }

    #[test]
    fn permutation_checking() {
        assert!(check_permutation(&[0, 1, 2]).is_ok());
        assert!(check_permutation(&[2, 0, 1]).is_ok());
        assert!(check_permutation(&[0, 0, 1]).is_err());
        assert!(check_permutation(&[0, 3, 1]).is_err());
        assert!(check_permutation(&[]).is_ok());
    }

    #[test]
    fn inversion_roundtrip() {
        let p = vec![2, 0, 3, 1];
        let inv = invert_permutation(&p);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        for (i, &t) in p.iter().enumerate() {
            assert_eq!(inv[t], i);
        }
    }

    #[test]
    fn benes4_routes_every_permutation() {
        // All 24 permutations of 4 elements, verified by simulation.
        let mut perms = Vec::new();
        for a in 0..4usize {
            for b in 0..4usize {
                for c in 0..4usize {
                    for d in 0..4usize {
                        let p = vec![a, b, c, d];
                        if check_permutation(&p).is_ok() {
                            perms.push(p);
                        }
                    }
                }
            }
        }
        assert_eq!(perms.len(), 24);
        for p in perms {
            let netlist = route_benes(4, &p).unwrap();
            assert_routes(&netlist, &p, 0.99, 1e-9);
        }
    }

    #[test]
    fn benes8_routes_random_permutations() {
        for seed in 0..5 {
            let p = random_perm(8, seed);
            let netlist = route_benes(8, &p).unwrap();
            assert_routes(&netlist, &p, 0.99, 1e-9);
        }
    }

    #[test]
    fn spankebenes_routes_random_permutations() {
        for (n, seeds) in [(4, 0..6u64), (8, 0..4u64)] {
            for seed in seeds {
                let p = random_perm(n, seed + 100);
                let netlist = route_spankebenes(n, &p).unwrap();
                assert_routes(&netlist, &p, 0.99, 1e-9);
            }
        }
    }

    #[test]
    fn crossbar_and_spanke_route_random_permutations() {
        for seed in 0..3 {
            let p = random_perm(8, seed + 7);
            assert_routes(&route_crossbar(8, &p).unwrap(), &p, 0.99, 1e-9);
            assert_routes(&route_spanke(8, &p).unwrap(), &p, 0.99, 1e-9);
        }
    }

    #[test]
    fn reversal_permutation_on_all_fabrics() {
        let p: Vec<usize> = (0..8).rev().collect();
        assert_routes(&route_crossbar(8, &p).unwrap(), &p, 0.99, 1e-9);
        assert_routes(&route_spanke(8, &p).unwrap(), &p, 0.99, 1e-9);
        assert_routes(&route_benes(8, &p).unwrap(), &p, 0.99, 1e-9);
        assert_routes(&route_spankebenes(8, &p).unwrap(), &p, 0.99, 1e-9);
    }

    #[test]
    fn malformed_permutations_rejected() {
        assert!(route_benes(4, &[0, 1, 2]).is_err());
        assert!(route_crossbar(4, &[0, 0, 1, 2]).is_err());
        assert!(route_spanke(4, &[4, 1, 2, 3]).is_err());
        assert!(route_spankebenes(4, &[1, 1, 2, 3]).is_err());
    }
}
