//! Optical-switch golden designs: the elementary 2×2 switch circuit and
//! the crossbar, Spanke, Benes and Spanke-Benes fabrics (4×4 and 8×8).
//!
//! Each fabric builder produces a netlist whose switches default to an
//! identity routing; [`crate::routing`] computes the switch states for an
//! arbitrary permutation.

use picbench_netlist::{Netlist, NetlistBuilder};
use std::f64::consts::PI;

/// Golden design for the `OS 2×2` problem: a fundamental 2×2 optical
/// switch realized as a balanced MZI — two 2×2 MMIs with a phase shifter
/// on the top arm (biased at π ⇒ bar state).
pub fn os2x2_golden() -> Netlist {
    let mut b = NetlistBuilder::new();
    b.instance("mmia", "mmi22");
    b.instance("mmib", "mmi22");
    b.instance_with("pstop", "phaseshifter", &[("length", 10.0), ("phase", PI)]);
    b.instance_with("wgbot", "waveguide", &[("length", 10.0)]);
    b.connect("mmia,O1", "pstop,I1");
    b.connect("mmia,O2", "wgbot,I1");
    b.connect("pstop,O1", "mmib,I1");
    b.connect("wgbot,O1", "mmib,I2");
    b.port("I1", "mmia,I1");
    b.port("I2", "mmia,I2");
    b.port("O1", "mmib,O1");
    b.port("O2", "mmib,O2");
    b.model("mmi22", "mmi2x2");
    b.model("phaseshifter", "phaseshifter");
    b.model("waveguide", "waveguide");
    b.build()
}

// ---------------------------------------------------------------------
// Crossbar
// ---------------------------------------------------------------------

/// Instance name of the crossbar cell at `row`, `col` (1-based).
pub fn crossbar_cell(row: usize, col: usize) -> String {
    format!("sw{row}{col}")
}

/// Builds an `n×n` crossbar switch fabric.
///
/// Cell `(i, j)` receives the row bus from the west on `I1` and the
/// column bus from the north on `I2`; `O1` continues east, `O2`
/// continues south. An input is routed to column `j` by putting cell
/// `(i, j)` in the cross state. `states[i]` gives the target column
/// (0-based) for input `i` — the identity uses `states[i] = i`.
///
/// # Panics
///
/// Panics if `n` is 0 or ≥ 10 (cell names use single digits) or if
/// `active` is not a permutation of `0..n`.
pub fn crossbar_fabric(n: usize, active: &[usize]) -> Netlist {
    assert!(n > 0 && n < 10, "crossbar size must be 1..=9");
    assert_eq!(active.len(), n, "active must assign a column per row");
    let mut b = NetlistBuilder::new();
    for i in 1..=n {
        for j in 1..=n {
            let state = if active[i - 1] == j - 1 { 1.0 } else { 0.0 };
            b.instance_with(&crossbar_cell(i, j), "switch2x2", &[("state", state)]);
        }
    }
    for i in 1..=n {
        for j in 1..=n {
            if j < n {
                b.connect(
                    &format!("{},O1", crossbar_cell(i, j)),
                    &format!("{},I1", crossbar_cell(i, j + 1)),
                );
            }
            if i < n {
                b.connect(
                    &format!("{},O2", crossbar_cell(i, j)),
                    &format!("{},I2", crossbar_cell(i + 1, j)),
                );
            }
        }
    }
    for i in 1..=n {
        b.port(&format!("I{i}"), &format!("{},I1", crossbar_cell(i, 1)));
    }
    for j in 1..=n {
        b.port(&format!("O{j}"), &format!("{},O2", crossbar_cell(n, j)));
    }
    b.model("switch2x2", "switch2x2");
    b.build()
}

/// Golden design for the `Crossbar n×n` problems (identity routing).
pub fn crossbar_golden(n: usize) -> Netlist {
    let identity: Vec<usize> = (0..n).collect();
    crossbar_fabric(n, &identity)
}

// ---------------------------------------------------------------------
// Spanke
// ---------------------------------------------------------------------

/// Instance name of a Spanke tree switch: input (`it`) or output (`ot`)
/// tree `tree`, stage `stage`, position `pos`.
pub fn spanke_switch(input_side: bool, tree: usize, stage: usize, pos: usize) -> String {
    let side = if input_side { "it" } else { "ot" };
    format!("{side}{tree}s{stage}p{pos}")
}

/// Builds an `n×n` Spanke fabric (`n` a power of two).
///
/// Each input feeds a binary tree of 1×2 switches whose `n` leaves
/// connect to the corresponding leaves of the output-side combining
/// trees (reversed 1×2 switches). `targets[i]` is the output each input
/// is routed to — the tree states encode the target's bits.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 2 or `targets` is not a
/// permutation.
pub fn spanke_fabric(n: usize, targets: &[usize]) -> Netlist {
    assert!(n.is_power_of_two() && n >= 2, "Spanke size must be 2^k");
    assert_eq!(targets.len(), n);
    let depth = n.trailing_zeros() as usize;
    let mut b = NetlistBuilder::new();

    // Inverse permutation: which input each output listens to.
    let mut inverse = vec![0usize; n];
    for (i, &t) in targets.iter().enumerate() {
        inverse[t] = i;
    }

    // Create tree switches with their routing states.
    for tree in 0..n {
        for stage in 0..depth {
            for pos in 0..(1 << stage) {
                // The switch at (stage, pos) lies on the path to leaf L
                // iff the first `stage` bits of L equal pos; its state is
                // the next bit of the leaf index being routed to.
                let in_leaf = targets[tree];
                let in_state = if in_leaf >> (depth - stage) == pos {
                    ((in_leaf >> (depth - stage - 1)) & 1) as f64
                } else {
                    0.0
                };
                b.instance_with(
                    &spanke_switch(true, tree, stage, pos),
                    "switch1x2",
                    &[("state", in_state)],
                );
                let out_leaf = inverse[tree];
                let out_state = if out_leaf >> (depth - stage) == pos {
                    ((out_leaf >> (depth - stage - 1)) & 1) as f64
                } else {
                    0.0
                };
                b.instance_with(
                    &spanke_switch(false, tree, stage, pos),
                    "switch1x2",
                    &[("state", out_state)],
                );
            }
        }
    }

    // Internal tree wiring: switch (s, p) output O1/O2 feeds (s+1, 2p) /
    // (s+1, 2p+1). Input trees run forward; output trees are reversed
    // (their O ports face the cross links, their root I1 is the output).
    for tree in 0..n {
        for stage in 0..depth.saturating_sub(1) {
            for pos in 0..(1 << stage) {
                for (port, child) in [("O1", 2 * pos), ("O2", 2 * pos + 1)] {
                    b.connect(
                        &format!("{},{port}", spanke_switch(true, tree, stage, pos)),
                        &format!("{},I1", spanke_switch(true, tree, stage + 1, child)),
                    );
                    b.connect(
                        &format!("{},I1", spanke_switch(false, tree, stage + 1, child)),
                        &format!("{},{port}", spanke_switch(false, tree, stage, pos)),
                    );
                }
            }
        }
    }

    // Cross links: input tree i, leaf j ↔ output tree j, leaf i.
    let leaf_port = |input_side: bool, tree: usize, leaf: usize| -> String {
        let stage = depth - 1;
        let pos = leaf >> 1;
        let port = if leaf & 1 == 0 { "O1" } else { "O2" };
        format!("{},{port}", spanke_switch(input_side, tree, stage, pos))
    };
    for i in 0..n {
        for j in 0..n {
            b.connect(&leaf_port(true, i, j), &leaf_port(false, j, i));
        }
    }

    for i in 0..n {
        b.port(
            &format!("I{}", i + 1),
            &format!("{},I1", spanke_switch(true, i, 0, 0)),
        );
        b.port(
            &format!("O{}", i + 1),
            &format!("{},I1", spanke_switch(false, i, 0, 0)),
        );
    }
    b.model("switch1x2", "switch1x2");
    b.build()
}

/// Golden design for the `Spanke n×n` problems (identity routing).
pub fn spanke_golden(n: usize) -> Netlist {
    let identity: Vec<usize> = (0..n).collect();
    spanke_fabric(n, &identity)
}

// ---------------------------------------------------------------------
// Benes
// ---------------------------------------------------------------------

/// The recursive structure of a Benes network, used by the looping
/// routing algorithm to address individual switches.
#[derive(Debug, Clone)]
pub enum BenesNode {
    /// A single 2×2 switch (the `n = 2` base case).
    Switch {
        /// Instance name.
        name: String,
    },
    /// An outer stage pair around two half-size subnetworks.
    Stage {
        /// Half size (`n/2` switches per column).
        half: usize,
        /// Input-column switch names (`half` of them).
        input_col: Vec<String>,
        /// Output-column switch names.
        output_col: Vec<String>,
        /// Upper subnetwork.
        top: Box<BenesNode>,
        /// Lower subnetwork.
        bottom: Box<BenesNode>,
    },
}

impl BenesNode {
    /// Every switch name in this subtree.
    pub fn switch_names(&self) -> Vec<String> {
        match self {
            BenesNode::Switch { name } => vec![name.clone()],
            BenesNode::Stage {
                input_col,
                output_col,
                top,
                bottom,
                ..
            } => {
                let mut names = input_col.clone();
                names.extend(top.switch_names());
                names.extend(bottom.switch_names());
                names.extend(output_col.clone());
                names
            }
        }
    }
}

/// A built Benes fabric: netlist plus the recursive switch map.
#[derive(Debug, Clone)]
pub struct BenesFabric {
    /// The netlist (all switches default to bar = identity routing).
    pub netlist: Netlist,
    /// Recursive topology for routing.
    pub root: BenesNode,
    /// Port count.
    pub n: usize,
}

/// Recursively constructs a Benes subnetwork, returning
/// `(node, input endpoints, output endpoints)`.
fn benes_sub(
    b: &mut NetlistBuilder,
    n: usize,
    counter: &mut usize,
) -> (BenesNode, Vec<String>, Vec<String>) {
    fn new_switch(b: &mut NetlistBuilder, counter: &mut usize) -> String {
        *counter += 1;
        let name = format!("sw{counter}");
        b.instance_with(&name, "switch2x2", &[("state", 0.0)]);
        name
    }

    if n == 2 {
        let name = new_switch(b, counter);
        return (
            BenesNode::Switch { name: name.clone() },
            vec![format!("{name},I1"), format!("{name},I2")],
            vec![format!("{name},O1"), format!("{name},O2")],
        );
    }

    let half = n / 2;
    let input_col: Vec<String> = (0..half).map(|_| new_switch(b, counter)).collect();
    let (top, top_in, top_out) = benes_sub(b, half, counter);
    let (bottom, bot_in, bot_out) = benes_sub(b, half, counter);
    let output_col: Vec<String> = (0..half).map(|_| new_switch(b, counter)).collect();

    for k in 0..half {
        b.connect(&format!("{},O1", input_col[k]), &top_in[k]);
        b.connect(&format!("{},O2", input_col[k]), &bot_in[k]);
        b.connect(&top_out[k], &format!("{},I1", output_col[k]));
        b.connect(&bot_out[k], &format!("{},I2", output_col[k]));
    }

    let inputs = input_col
        .iter()
        .flat_map(|s| [format!("{s},I1"), format!("{s},I2")])
        .collect();
    let outputs = output_col
        .iter()
        .flat_map(|s| [format!("{s},O1"), format!("{s},O2")])
        .collect();

    (
        BenesNode::Stage {
            half,
            input_col,
            output_col,
            top: Box::new(top),
            bottom: Box::new(bottom),
        },
        inputs,
        outputs,
    )
}

/// Builds an `n×n` Benes fabric (identity routing by default).
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 2.
pub fn benes_fabric(n: usize) -> BenesFabric {
    assert!(n.is_power_of_two() && n >= 2, "Benes size must be 2^k");
    let mut b = NetlistBuilder::new();
    let mut counter = 0usize;
    let (root, inputs, outputs) = benes_sub(&mut b, n, &mut counter);
    for (i, input) in inputs.iter().enumerate() {
        b.port(&format!("I{}", i + 1), input);
    }
    for (o, output) in outputs.iter().enumerate() {
        b.port(&format!("O{}", o + 1), output);
    }
    b.model("switch2x2", "switch2x2");
    BenesFabric {
        netlist: b.build(),
        root,
        n,
    }
}

/// Golden design for the `Benes n×n` problems (identity routing).
pub fn benes_golden(n: usize) -> Netlist {
    benes_fabric(n).netlist
}

// ---------------------------------------------------------------------
// Spanke-Benes
// ---------------------------------------------------------------------

/// Instance name of the Spanke-Benes switch at `col` (0-based) covering
/// wire pair `(row, row+1)`.
pub fn spankebenes_switch(col: usize, row: usize) -> String {
    format!("sbc{col}r{row}")
}

/// The wire pairs covered by column `col` of an `n`-wide Spanke-Benes
/// (planar, nearest-neighbour) network: even columns pair (0,1), (2,3),
/// …; odd columns pair (1,2), (3,4), ….
pub fn spankebenes_column_pairs(n: usize, col: usize) -> Vec<usize> {
    let start = col % 2;
    (start..n.saturating_sub(1)).step_by(2).collect()
}

/// Builds an `n×n` Spanke-Benes fabric with explicit per-switch states.
///
/// `states[col]` holds one state per switch in that column (in
/// [`spankebenes_column_pairs`] order). The network has `n` columns and
/// `n(n−1)/2` switches.
///
/// # Panics
///
/// Panics if `n < 2` or the state array does not match the topology.
pub fn spankebenes_fabric(n: usize, states: &[Vec<f64>]) -> Netlist {
    assert!(n >= 2, "Spanke-Benes needs at least two wires");
    assert_eq!(states.len(), n, "one state vector per column");
    let mut b = NetlistBuilder::new();
    let mut bus = crate::wiring::WireBus::new(n);

    for (col, col_states) in states.iter().enumerate() {
        let pairs = spankebenes_column_pairs(n, col);
        assert_eq!(col_states.len(), pairs.len(), "column {col} state count");
        for (&row, &state) in pairs.iter().zip(col_states) {
            let name = spankebenes_switch(col, row);
            b.instance_with(&name, "switch2x2", &[("state", state)]);
            bus.feed(&mut b, row, &format!("{name},I1"));
            bus.feed(&mut b, row + 1, &format!("{name},I2"));
            bus.drive(row, &format!("{name},O1"));
            bus.drive(row + 1, &format!("{name},O2"));
        }
    }
    bus.expose_standard_ports(&mut b);
    b.model("switch2x2", "switch2x2");
    b.build()
}

/// Golden design for the `Spanke-Benes n×n` problems (identity routing —
/// all switches bar).
pub fn spankebenes_golden(n: usize) -> Netlist {
    let states: Vec<Vec<f64>> = (0..n)
        .map(|col| vec![0.0; spankebenes_column_pairs(n, col).len()])
        .collect();
    spankebenes_fabric(n, &states)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use picbench_sim::{evaluate, Backend, Circuit, ModelRegistry};

    /// Computes the power routing matrix `P[out][in]` at 1.55 µm.
    pub(crate) fn routing_matrix(netlist: &Netlist, n: usize) -> Vec<Vec<f64>> {
        let registry = ModelRegistry::with_builtins();
        let circuit = Circuit::elaborate(netlist, &registry, None).unwrap();
        let s = evaluate(&circuit, 1.55, Backend::default()).unwrap();
        (0..n)
            .map(|o| {
                (0..n)
                    .map(|i| {
                        s.s(&format!("I{}", i + 1), &format!("O{}", o + 1))
                            .unwrap()
                            .norm_sqr()
                    })
                    .collect()
            })
            .collect()
    }

    /// Asserts the fabric routes input i → output perm[i] with ≥ `min`
    /// power and everything else below `max_leak`.
    pub(crate) fn assert_routes(netlist: &Netlist, perm: &[usize], min: f64, max_leak: f64) {
        let n = perm.len();
        let p = routing_matrix(netlist, n);
        for i in 0..n {
            for (o, row) in p.iter().enumerate().take(n) {
                if perm[i] == o {
                    assert!(
                        row[i] >= min,
                        "input {i} → output {o} expected ≥ {min}, got {}",
                        row[i]
                    );
                } else {
                    assert!(
                        row[i] <= max_leak,
                        "input {i} → output {o} expected ≤ {max_leak}, got {}",
                        row[i]
                    );
                }
            }
        }
    }

    #[test]
    fn os2x2_default_is_bar() {
        let id = [0usize, 1];
        assert_routes(&os2x2_golden(), &id, 0.99, 1e-9);
    }

    #[test]
    fn crossbar4_identity_routes() {
        let id: Vec<usize> = (0..4).collect();
        assert_routes(&crossbar_golden(4), &id, 0.99, 1e-9);
    }

    #[test]
    fn crossbar4_arbitrary_permutation_routes() {
        let perm = vec![2, 0, 3, 1];
        assert_routes(&crossbar_fabric(4, &perm), &perm, 0.99, 1e-9);
    }

    #[test]
    fn crossbar8_identity_routes() {
        let id: Vec<usize> = (0..8).collect();
        assert_routes(&crossbar_golden(8), &id, 0.99, 1e-9);
    }

    #[test]
    fn crossbar_has_n_squared_switches() {
        assert_eq!(crossbar_golden(4).instances.len(), 16);
        assert_eq!(crossbar_golden(8).instances.len(), 64);
    }

    #[test]
    fn spanke4_identity_routes() {
        let id: Vec<usize> = (0..4).collect();
        assert_routes(&spanke_golden(4), &id, 0.99, 1e-9);
    }

    #[test]
    fn spanke4_arbitrary_permutation_routes() {
        let perm = vec![3, 1, 0, 2];
        assert_routes(&spanke_fabric(4, &perm), &perm, 0.99, 1e-9);
    }

    #[test]
    fn spanke8_permutation_routes() {
        let perm = vec![5, 2, 7, 0, 3, 6, 1, 4];
        assert_routes(&spanke_fabric(8, &perm), &perm, 0.99, 1e-9);
    }

    #[test]
    fn spanke_switch_counts() {
        // 2·n·(n−1) 1×2 switches.
        assert_eq!(spanke_golden(4).instances.len(), 2 * 4 * 3);
        assert_eq!(spanke_golden(8).instances.len(), 2 * 8 * 7);
    }

    #[test]
    fn benes_identity_routes() {
        for n in [2, 4, 8] {
            let id: Vec<usize> = (0..n).collect();
            assert_routes(&benes_golden(n), &id, 0.99, 1e-9);
        }
    }

    #[test]
    fn benes_switch_counts() {
        assert_eq!(benes_golden(4).instances.len(), 6);
        assert_eq!(benes_golden(8).instances.len(), 20);
    }

    #[test]
    fn spankebenes_identity_routes() {
        for n in [4, 8] {
            let id: Vec<usize> = (0..n).collect();
            assert_routes(&spankebenes_golden(n), &id, 0.99, 1e-9);
        }
    }

    #[test]
    fn spankebenes_switch_counts() {
        assert_eq!(spankebenes_golden(4).instances.len(), 6);
        assert_eq!(spankebenes_golden(8).instances.len(), 28);
    }

    #[test]
    fn fabrics_have_no_underscores_in_names() {
        for netlist in [
            crossbar_golden(8),
            spanke_golden(8),
            benes_golden(8),
            spankebenes_golden(8),
        ] {
            for (name, _) in netlist.instances.iter() {
                assert!(!name.contains('_'), "{name}");
            }
        }
    }
}
