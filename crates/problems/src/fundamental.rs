//! Fundamental-device golden designs: the Mach-Zehnder modulator and the
//! MZI-with-phase-shifter (the paper's running example, Figs. 2 & 4).

use picbench_netlist::{Netlist, NetlistBuilder};
use std::f64::consts::FRAC_PI_2;

/// Golden design for the `MZI ps` problem, exactly as in the paper's
/// Fig. 4 (corrected version): a 1×2 MMI splitter, a waveguide on the
/// bottom arm carrying the ΔL = 10 µm path difference, a phase shifter of
/// length L = 10 µm on the top arm, and a reversed 1×2 MMI combiner.
pub fn mzi_ps_golden() -> Netlist {
    let mut b = NetlistBuilder::new();
    b.instance("mmi1", "mmi");
    b.instance("mmi2", "mmi");
    // Bottom arm: length = phase-shifter length + ΔL.
    b.instance_with("waveBottom", "waveguide", &[("length", 20.0)]);
    b.instance_with("phaseShifter", "phaseshifter", &[("length", 10.0)]);
    b.connect("mmi1,O1", "waveBottom,I1");
    b.connect("waveBottom,O1", "mmi2,O1");
    b.connect("mmi1,O2", "phaseShifter,I1");
    b.connect("phaseShifter,O1", "mmi2,O2");
    b.port("I1", "mmi1,I1");
    b.port("O1", "mmi2,I1");
    b.model("mmi", "mmi1x2");
    b.model("waveguide", "waveguide");
    b.model("phaseshifter", "phaseshifter");
    b.build()
}

/// Golden design for the `MZM` problem: a push-pull Mach-Zehnder
/// modulator circuit — splitter, phase shifters on both arms (biased at
/// ±π/4, i.e. quadrature), combiner.
pub fn mzm_golden() -> Netlist {
    let mut b = NetlistBuilder::new();
    b.instance("mmi1", "mmi");
    b.instance("mmi2", "mmi");
    b.instance_with(
        "psTop",
        "phaseshifter",
        &[("length", 10.0), ("phase", FRAC_PI_2 / 2.0)],
    );
    b.instance_with(
        "psBottom",
        "phaseshifter",
        &[("length", 10.0), ("phase", -FRAC_PI_2 / 2.0)],
    );
    b.connect("mmi1,O1", "psTop,I1");
    b.connect("mmi1,O2", "psBottom,I1");
    b.connect("psTop,O1", "mmi2,O1");
    b.connect("psBottom,O1", "mmi2,O2");
    b.port("I1", "mmi1,I1");
    b.port("O1", "mmi2,I1");
    b.model("mmi", "mmi1x2");
    b.model("phaseshifter", "phaseshifter");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_sim::{simulate_netlist, Backend, ModelRegistry, PortSpec, WavelengthGrid};

    #[test]
    fn mzi_ps_matches_builtin_mzi_shape() {
        // The golden (ΔL = 10, both arms sharing the same loss model) must
        // produce the same |S|² fringe as the built-in mzi with ΔL = 10.
        let registry = ModelRegistry::with_builtins();
        let golden = simulate_netlist(
            &mzi_ps_golden(),
            &registry,
            Some(&PortSpec::new(1, 1)),
            &WavelengthGrid::paper_default(),
            Backend::default(),
        )
        .unwrap();

        let builtin = picbench_netlist::NetlistBuilder::new()
            .instance_with("m", "mzi", &[("delta_length", 10.0), ("length", 10.0)])
            .port("I1", "m,I1")
            .port("O1", "m,O1")
            .model("mzi", "mzi")
            .build();
        let reference = simulate_netlist(
            &builtin,
            &registry,
            Some(&PortSpec::new(1, 1)),
            &WavelengthGrid::paper_default(),
            Backend::default(),
        )
        .unwrap();

        let got = golden.transmission("I1", "O1").unwrap();
        let want = reference.transmission("I1", "O1").unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g.norm_sqr() - w.norm_sqr()).abs() < 1e-9,
                "fringe mismatch: {} vs {}",
                g.norm_sqr(),
                w.norm_sqr()
            );
        }
    }

    #[test]
    fn mzi_ps_has_fringes_in_band() {
        let registry = ModelRegistry::with_builtins();
        let r = simulate_netlist(
            &mzi_ps_golden(),
            &registry,
            None,
            &WavelengthGrid::paper_default(),
            Backend::default(),
        )
        .unwrap();
        let powers: Vec<f64> = r
            .transmission("I1", "O1")
            .unwrap()
            .iter()
            .map(|t| t.norm_sqr())
            .collect();
        let max = powers.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = powers.iter().fold(1.0f64, |a, &b| a.min(b));
        assert!(max > 0.9, "fringe peak missing (max = {max})");
        assert!(min < 0.1, "fringe null missing (min = {min})");
    }

    #[test]
    fn mzm_sits_at_quadrature() {
        let registry = ModelRegistry::with_builtins();
        let r = simulate_netlist(
            &mzm_golden(),
            &registry,
            Some(&PortSpec::new(1, 1)),
            &WavelengthGrid::paper_default(),
            Backend::default(),
        )
        .unwrap();
        // Push-pull ±π/4 → |cos(π/4)|² = 1/2, balanced arms ⇒ flat.
        for t in r.transmission("I1", "O1").unwrap() {
            assert!((t.norm_sqr() - 0.5).abs() < 0.01, "got {}", t.norm_sqr());
        }
    }
}
