//! The lazily-initialized problem registry.
//!
//! The seed implementation rebuilt the entire 24-problem suite for every
//! `find(id)` call — re-rendering every description string and re-wiring
//! every golden netlist per lookup. The registry constructs the built-in
//! suite exactly once per process (on first access), indexes it by id,
//! and serves shared [`Arc<Problem>`] handles in O(1).
//!
//! Beyond caching, the registry is the extension seam for scenario
//! diversity: new problems can be registered at runtime — either built
//! programmatically or deserialized from JSON problem sets
//! ([`crate::problems_from_json`]) — and are immediately visible to
//! [`crate::find`] and to campaigns built over registry ids.

use crate::{build_builtin_suite, Problem};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Why a registration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A problem with this id already exists.
    DuplicateId(String),
    /// The problem failed basic sanity checks (empty id, port/spec
    /// mismatch).
    Invalid(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateId(id) => {
                write!(f, "a problem with id {id:?} is already registered")
            }
            RegistryError::Invalid(why) => write!(f, "invalid problem: {why}"),
        }
    }
}

impl std::error::Error for RegistryError {}

#[derive(Debug, Default)]
struct Inner {
    /// Problems in registration order (builtins first, Table I order).
    order: Vec<Arc<Problem>>,
    /// Id → index into `order`.
    by_id: HashMap<String, usize>,
    /// How many leading entries of `order` are the built-in suite.
    builtin_count: usize,
}

/// A thread-safe, runtime-extensible collection of benchmark problems.
///
/// [`ProblemRegistry::global`] is the shared instance behind
/// [`crate::suite`] and [`crate::find`]; independent registries
/// ([`ProblemRegistry::empty`]) exist for tests and custom problem sets.
#[derive(Debug, Default)]
pub struct ProblemRegistry {
    inner: RwLock<Inner>,
}

impl ProblemRegistry {
    /// An empty registry (no built-in problems).
    pub fn empty() -> Self {
        ProblemRegistry::default()
    }

    /// A registry pre-seeded with the built-in Table I suite.
    pub fn with_builtins() -> Self {
        let registry = ProblemRegistry::empty();
        {
            let mut inner = registry.inner.write().expect("registry poisoned");
            for problem in build_builtin_suite() {
                let index = inner.order.len();
                inner.by_id.insert(problem.id.clone(), index);
                inner.order.push(Arc::new(problem));
            }
            inner.builtin_count = inner.order.len();
        }
        registry
    }

    /// The process-wide registry, built (once) on first access.
    pub fn global() -> &'static ProblemRegistry {
        static GLOBAL: OnceLock<ProblemRegistry> = OnceLock::new();
        GLOBAL.get_or_init(ProblemRegistry::with_builtins)
    }

    /// Looks up a problem by id — a hash-map hit, no suite rebuild.
    pub fn get(&self, id: &str) -> Option<Arc<Problem>> {
        let inner = self.inner.read().expect("registry poisoned");
        inner.by_id.get(id).map(|&i| Arc::clone(&inner.order[i]))
    }

    /// Whether a problem with this id exists.
    pub fn contains(&self, id: &str) -> bool {
        self.inner
            .read()
            .expect("registry poisoned")
            .by_id
            .contains_key(id)
    }

    /// Total number of registered problems (builtins included).
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry poisoned").order.len()
    }

    /// Whether the registry holds no problems.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every problem id, in registration order.
    pub fn ids(&self) -> Vec<String> {
        let inner = self.inner.read().expect("registry poisoned");
        inner.order.iter().map(|p| p.id.clone()).collect()
    }

    /// Every registered problem, in registration order.
    pub fn all(&self) -> Vec<Arc<Problem>> {
        let inner = self.inner.read().expect("registry poisoned");
        inner.order.clone()
    }

    /// The built-in suite portion (Table I order), excluding runtime
    /// registrations.
    pub fn builtins(&self) -> Vec<Arc<Problem>> {
        let inner = self.inner.read().expect("registry poisoned");
        inner.order[..inner.builtin_count].to_vec()
    }

    /// Structural sanity checks shared by every registration path.
    fn validate(problem: &Problem) -> Result<(), RegistryError> {
        if problem.id.is_empty() {
            return Err(RegistryError::Invalid("empty problem id".to_string()));
        }
        let expected = problem.spec.inputs + problem.spec.outputs;
        if problem.golden.ports.len() != expected {
            return Err(RegistryError::Invalid(format!(
                "problem {:?}: golden exposes {} external ports but the spec requires {expected}",
                problem.id,
                problem.golden.ports.len(),
            )));
        }
        Ok(())
    }

    /// Inserts pre-validated problems; the caller holds the write lock,
    /// so the duplicate check and the insertions are one atomic step.
    fn insert_all(
        inner: &mut Inner,
        problems: Vec<Problem>,
    ) -> Result<Vec<Arc<Problem>>, RegistryError> {
        let mut fresh = std::collections::HashSet::new();
        for p in &problems {
            if inner.by_id.contains_key(&p.id) || !fresh.insert(p.id.clone()) {
                return Err(RegistryError::DuplicateId(p.id.clone()));
            }
        }
        let mut handles = Vec::with_capacity(problems.len());
        for problem in problems {
            let handle = Arc::new(problem);
            let index = inner.order.len();
            inner.by_id.insert(handle.id.clone(), index);
            inner.order.push(Arc::clone(&handle));
            handles.push(handle);
        }
        Ok(handles)
    }

    /// Registers a new problem, returning the shared handle.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateId`] when the id is taken;
    /// [`RegistryError::Invalid`] when the problem is structurally
    /// inconsistent (empty id, or golden ports not matching the spec).
    pub fn register(&self, problem: Problem) -> Result<Arc<Problem>, RegistryError> {
        Self::validate(&problem)?;
        let mut inner = self.inner.write().expect("registry poisoned");
        Self::insert_all(&mut inner, vec![problem]).map(|mut handles| handles.remove(0))
    }

    /// Parses a JSON problem set ([`crate::problems_from_json`]) and
    /// registers every problem in it, returning the shared handles.
    ///
    /// Registration is all-or-nothing: every problem is decoded and
    /// validated first, then all are inserted under one write lock — if
    /// anything fails (decode error, invalid problem, id collision with
    /// the registry, a concurrent registration, or within the set),
    /// nothing is registered.
    pub fn register_json(&self, text: &str) -> Result<Vec<Arc<Problem>>, RegistryError> {
        let problems =
            crate::problems_from_json(text).map_err(|e| RegistryError::Invalid(e.to_string()))?;
        for problem in &problems {
            Self::validate(problem)?;
        }
        let mut inner = self.inner.write().expect("registry poisoned");
        Self::insert_all(&mut inner, problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_netlist::PortSpec;

    #[test]
    fn global_serves_builtins_without_rebuilding() {
        let registry = ProblemRegistry::global();
        assert_eq!(registry.builtins().len(), 24);
        assert!(registry.len() >= 24);
        // Two lookups return the *same allocation* — the suite was built
        // once and cached, not reconstructed per call.
        let a = registry.get("mzi-ps").unwrap();
        let b = registry.get("mzi-ps").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.name, "MZI ps");
    }

    #[test]
    fn find_routes_through_the_registry() {
        let a = crate::find("mzi-ps").unwrap();
        let b = crate::find("mzi-ps").unwrap();
        assert_eq!(a, b);
        // The shared handle is the proof there was no rebuild.
        assert!(Arc::ptr_eq(
            &crate::find_shared("mzi-ps").unwrap(),
            &crate::find_shared("mzi-ps").unwrap()
        ));
    }

    #[test]
    fn register_rejects_duplicates_and_inconsistent_specs() {
        let registry = ProblemRegistry::with_builtins();
        let mut custom = crate::find("mzi-ps").unwrap();
        custom.id = "mzi-ps-custom".to_string();
        registry.register(custom.clone()).unwrap();
        assert!(matches!(
            registry.register(custom.clone()),
            Err(RegistryError::DuplicateId(_))
        ));
        custom.id = "mzi-ps-broken".to_string();
        custom.spec = PortSpec::new(3, 3);
        assert!(matches!(
            registry.register(custom),
            Err(RegistryError::Invalid(_))
        ));
    }

    #[test]
    fn register_json_is_all_or_nothing() {
        let registry = ProblemRegistry::with_builtins();
        let before = registry.len();
        let mut good = crate::find("mzi-ps").unwrap();
        good.id = "mzi-ps-json".to_string();
        let mut bad = crate::find("mzm").unwrap();
        bad.id = "mzm-json-broken".to_string();
        bad.spec = PortSpec::new(4, 4); // golden/spec mismatch → Invalid
        let text = crate::problems_to_json(&[good, bad]);
        assert!(matches!(
            registry.register_json(&text),
            Err(RegistryError::Invalid(_))
        ));
        // The valid first problem must NOT have been committed.
        assert_eq!(registry.len(), before);
        assert!(!registry.contains("mzi-ps-json"));
    }

    #[test]
    fn runtime_registrations_do_not_leak_into_builtins() {
        let registry = ProblemRegistry::with_builtins();
        let before = registry.builtins().len();
        let mut custom = crate::find("mzm").unwrap();
        custom.id = "mzm-variant".to_string();
        registry.register(custom).unwrap();
        assert_eq!(registry.builtins().len(), before);
        assert_eq!(registry.len(), before + 1);
        assert!(registry.contains("mzm-variant"));
    }
}
