//! Property tests: every *generated* netlist round-trips losslessly
//! through the problem-set JSON serde and canonicalizes stably.
//!
//! The built-in suite's 24 goldens already round-trip exactly; these
//! properties extend the guarantee to the whole generated circuit space
//! the conformance harness draws from — including settings with many
//! decimals, multi-digit port numbering and every structural family —
//! and pin the canonical content hash as an invariant of serialization
//! and of document-order permutations.

use picbench_conformance::{shuffle_netlist, CircuitStrategy, GeneratorConfig};
use picbench_problems::{problems_from_json, problems_to_json, Category, Problem};
use proptest::prelude::*;
use proptest::TestRng;

fn wrap_as_problem(index: usize, netlist: picbench_netlist::Netlist) -> Problem {
    let inputs = netlist
        .ports
        .iter()
        .filter(|(name, _)| name.starts_with('I'))
        .count();
    let outputs = netlist.ports.len() - inputs;
    Problem {
        id: format!("generated-{index}"),
        name: format!("Generated case {index}"),
        category: Category::ALL[index % Category::ALL.len()],
        description: "Create a generated conformance circuit.\nParameters:\n  none".to_string(),
        spec: picbench_netlist::PortSpec::new(inputs, outputs),
        golden: netlist,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_problems_round_trip_through_json(
        gen in CircuitStrategy::new(GeneratorConfig::default()),
        index in 0usize..1000,
    ) {
        let original_hash = gen.netlist.content_hash();
        let problem = wrap_as_problem(index, gen.netlist.clone());
        let text = problems_to_json(std::slice::from_ref(&problem));
        let decoded = problems_from_json(&text)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(decoded.len(), 1);
        let back = &decoded[0];
        prop_assert_eq!(&back.id, &problem.id);
        prop_assert_eq!(back.category, problem.category);
        prop_assert_eq!(back.spec, problem.spec);
        // The golden netlist survives exactly — structure, settings
        // bits, document order.
        prop_assert_eq!(&back.golden, &gen.netlist);
        prop_assert_eq!(back.golden.content_hash(), original_hash);
        // And serialization is byte-stable from the second trip on.
        prop_assert_eq!(problems_to_json(&decoded), text);
    }

    #[test]
    fn canonical_hash_is_stable_across_round_trip_and_shuffles(
        gen in CircuitStrategy::new(GeneratorConfig::default()),
        shuffle_seed in 0u64..1_000_000,
    ) {
        let netlist = gen.netlist;
        let hash = netlist.content_hash();
        let canonical = netlist.canonicalize();
        prop_assert_eq!(canonical.content_hash(), hash);
        prop_assert_eq!(canonical.canonicalize(), canonical.clone());

        // Round-trip through the problem-set serde.
        let problem = wrap_as_problem(0, netlist.clone());
        let decoded = problems_from_json(&problems_to_json(&[problem]))
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(decoded[0].golden.content_hash(), hash);
        prop_assert_eq!(decoded[0].golden.canonicalize(), canonical.clone());

        // Shuffle instance/port/model order and flip connections: the
        // canonical form and hash must not move.
        let mut rng = TestRng::new(shuffle_seed);
        let shuffled = shuffle_netlist(&netlist, &mut rng);
        prop_assert_eq!(shuffled.content_hash(), hash);
        prop_assert_eq!(shuffled.canonicalize(), canonical);
    }
}

#[test]
fn builtin_suite_canonical_hashes_survive_serde() {
    let suite = picbench_problems::suite();
    let text = problems_to_json(&suite);
    let decoded = problems_from_json(&text).expect("suite decodes");
    assert_eq!(decoded.len(), suite.len());
    for (a, b) in suite.iter().zip(&decoded) {
        assert_eq!(a.golden.content_hash(), b.golden.content_hash(), "{}", a.id);
    }
}
