//! Deterministic pacing decorator for providers.
//!
//! Synthetic models answer in microseconds, which makes "long-lived"
//! sessions finish before a test can observe them mid-flight. A
//! [`PacedProvider`] wraps any provider and sleeps a fixed interval
//! before every response — the *outputs* are bit-identical to the inner
//! provider's (same name, same seeding, same text), only wall-clock
//! changes. Cancellation drills and the load generator use it to hold
//! many sessions open simultaneously without perturbing results.

use picbench_problems::Problem;
use picbench_prompt::Conversation;
use picbench_synthllm::{LanguageModel, ModelProvider};
use std::sync::Arc;
use std::time::Duration;

/// A [`ModelProvider`] decorator that slows responses down without
/// changing them.
pub struct PacedProvider {
    inner: Arc<dyn ModelProvider>,
    pace: Duration,
}

impl PacedProvider {
    /// Wraps `inner`, sleeping `pace` before every response.
    pub fn new(inner: Arc<dyn ModelProvider>, pace: Duration) -> Self {
        PacedProvider { inner, pace }
    }
}

impl ModelProvider for PacedProvider {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn spawn(&self) -> Box<dyn LanguageModel> {
        Box::new(PacedLlm {
            inner: self.inner.spawn(),
            pace: self.pace,
        })
    }

    fn spawn_seeded(&self, seed: u64) -> Box<dyn LanguageModel> {
        Box::new(PacedLlm {
            inner: self.inner.spawn_seeded(seed),
            pace: self.pace,
        })
    }
}

struct PacedLlm {
    inner: Box<dyn LanguageModel>,
    pace: Duration,
}

impl LanguageModel for PacedLlm {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn begin_sample(&mut self, problem: &Problem, sample_index: u64) {
        self.inner.begin_sample(problem, sample_index);
    }

    fn respond(&mut self, conversation: &Conversation) -> String {
        std::thread::sleep(self.pace);
        self.inner.respond(conversation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_synthllm::ModelProfile;

    #[test]
    fn pacing_preserves_responses() {
        let profile = ModelProfile::gpt4();
        let paced = PacedProvider::new(Arc::new(profile.clone()), Duration::from_millis(1));
        assert_eq!(paced.name(), profile.name);
        let problem = picbench_problems::find("mzi-ps").unwrap();
        let conversation = Conversation::new();
        let mut a = profile.spawn_seeded(7);
        let mut b = paced.spawn_seeded(7);
        a.begin_sample(&problem, 0);
        b.begin_sample(&problem, 0);
        assert_eq!(a.respond(&conversation), b.respond(&conversation));
    }
}
