//! The NDJSON wire format for [`CampaignEvent`] streams.
//!
//! One event per line, one JSON object per event, `"event"` tag first,
//! remaining fields in declaration order. Encoding is deterministic —
//! the same event always produces the same bytes — which is what lets
//! the server promise *byte-identical* streams: the in-process observer
//! sequence encoded through [`encode_event`] equals the bytes a client
//! reads off `GET /v1/campaigns/{id}/events`, and `repro --events
//! ndjson` emits exactly the same lines.
//!
//! Counters ride as JSON numbers built with [`Value::Uint`], which the
//! JSON layer serializes and re-parses exactly over the whole `u64`
//! range — no f64 detour — so [`decode_event`] ∘ [`encode_event`] is
//! the identity for every event, including counters at or beyond 2⁵³.

use picbench_core::{
    CampaignEvent, EvalCacheStats, ProblemTally, ShardLossReason, TransportErrorKind,
};
use picbench_netlist::json::{self, Value};
use std::fmt;

/// Why a wire line failed to decode back into a [`CampaignEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line was not valid JSON.
    Json(String),
    /// The line decoded to JSON but not to an event (unknown tag,
    /// missing or mistyped field).
    Shape(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "invalid JSON: {e}"),
            WireError::Shape(e) => write!(f, "invalid event shape: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

pub(crate) fn num(v: u64) -> Value {
    Value::Uint(v)
}

fn text(v: &str) -> Value {
    Value::String(v.to_string())
}

fn tally_value(tally: &ProblemTally) -> Value {
    Value::Object(vec![
        ("n".into(), num(tally.n as u64)),
        ("syntax_passes".into(), num(tally.syntax_passes as u64)),
        (
            "functional_passes".into(),
            num(tally.functional_passes as u64),
        ),
    ])
}

pub(crate) fn stats_value(stats: &EvalCacheStats) -> Value {
    Value::Object(vec![
        ("response_hits".into(), num(stats.response_hits)),
        ("report_hits".into(), num(stats.report_hits)),
        ("sim_hits".into(), num(stats.sim_hits)),
        ("disk_hits".into(), num(stats.disk_hits)),
        ("misses".into(), num(stats.misses)),
    ])
}

/// The wire token of a transport-failure classification.
pub fn transport_kind_token(kind: TransportErrorKind) -> &'static str {
    match kind {
        TransportErrorKind::RateLimit => "rate_limit",
        TransportErrorKind::TransientIo => "transient_io",
        TransportErrorKind::Timeout => "timeout",
        TransportErrorKind::Garbled => "garbled",
        TransportErrorKind::Fatal => "fatal",
    }
}

fn transport_kind_from_token(token: &str) -> Option<TransportErrorKind> {
    Some(match token {
        "rate_limit" => TransportErrorKind::RateLimit,
        "transient_io" => TransportErrorKind::TransientIo,
        "timeout" => TransportErrorKind::Timeout,
        "garbled" => TransportErrorKind::Garbled,
        "fatal" => TransportErrorKind::Fatal,
        _ => return None,
    })
}

/// Encodes one event as its canonical single-line JSON form (no
/// trailing newline — stream writers append `\n`).
pub fn encode_event(event: &CampaignEvent) -> String {
    let mut fields: Vec<(String, Value)> = Vec::with_capacity(8);
    let tag = match event {
        CampaignEvent::CampaignStarted {
            problems,
            providers,
            cells,
        } => {
            fields.push(("problems".into(), num(*problems as u64)));
            fields.push(("providers".into(), num(*providers as u64)));
            fields.push(("cells".into(), num(*cells as u64)));
            "campaign_started"
        }
        CampaignEvent::CellStarted {
            problem_id,
            model,
            feedback_iters,
        } => {
            fields.push(("problem_id".into(), text(problem_id)));
            fields.push(("model".into(), text(model)));
            fields.push(("feedback_iters".into(), num(*feedback_iters as u64)));
            "cell_started"
        }
        CampaignEvent::CellFinished {
            problem_id,
            model,
            feedback_iters,
            tally,
            completed,
            total,
        } => {
            fields.push(("problem_id".into(), text(problem_id)));
            fields.push(("model".into(), text(model)));
            fields.push(("feedback_iters".into(), num(*feedback_iters as u64)));
            fields.push(("tally".into(), tally_value(tally)));
            fields.push(("completed".into(), num(*completed as u64)));
            fields.push(("total".into(), num(*total as u64)));
            "cell_finished"
        }
        CampaignEvent::CellRestored {
            problem_id,
            model,
            feedback_iters,
            tally,
            completed,
            total,
        } => {
            fields.push(("problem_id".into(), text(problem_id)));
            fields.push(("model".into(), text(model)));
            fields.push(("feedback_iters".into(), num(*feedback_iters as u64)));
            fields.push(("tally".into(), tally_value(tally)));
            fields.push(("completed".into(), num(*completed as u64)));
            fields.push(("total".into(), num(*total as u64)));
            "cell_restored"
        }
        CampaignEvent::SampleRetried {
            model,
            problem_id,
            sample,
            attempt,
            kind,
            backoff_ms,
        } => {
            fields.push(("model".into(), text(model)));
            fields.push(("problem_id".into(), text(problem_id)));
            fields.push(("sample".into(), num(*sample)));
            fields.push(("attempt".into(), num(u64::from(*attempt))));
            fields.push(("kind".into(), text(transport_kind_token(*kind))));
            fields.push(("backoff_ms".into(), num(*backoff_ms)));
            "sample_retried"
        }
        CampaignEvent::SampleDegraded {
            model,
            problem_id,
            sample,
            attempts,
            kind,
        } => {
            fields.push(("model".into(), text(model)));
            fields.push(("problem_id".into(), text(problem_id)));
            fields.push(("sample".into(), num(*sample)));
            fields.push(("attempts".into(), num(u64::from(*attempts))));
            fields.push(("kind".into(), text(transport_kind_token(*kind))));
            "sample_degraded"
        }
        CampaignEvent::StoreDegraded { write_errors } => {
            fields.push(("write_errors".into(), num(*write_errors)));
            "store_degraded"
        }
        CampaignEvent::ShardStarted {
            shard,
            generation,
            cells,
        } => {
            fields.push(("shard".into(), num(u64::from(*shard))));
            fields.push(("generation".into(), num(u64::from(*generation))));
            fields.push(("cells".into(), num(*cells as u64)));
            "shard_started"
        }
        CampaignEvent::ShardHeartbeat {
            shard,
            generation,
            seq,
            cells_done,
        } => {
            fields.push(("shard".into(), num(u64::from(*shard))));
            fields.push(("generation".into(), num(u64::from(*generation))));
            fields.push(("seq".into(), num(*seq)));
            fields.push(("cells_done".into(), num(*cells_done as u64)));
            "shard_heartbeat"
        }
        CampaignEvent::ShardLost {
            shard,
            generation,
            reason,
            cells_done,
        } => {
            fields.push(("shard".into(), num(u64::from(*shard))));
            fields.push(("generation".into(), num(u64::from(*generation))));
            match reason {
                ShardLossReason::LeaseExpired => {
                    fields.push(("reason".into(), text("lease_expired")));
                }
                ShardLossReason::WorkerExited { clean } => {
                    fields.push(("reason".into(), text("worker_exited")));
                    fields.push(("clean".into(), Value::Bool(*clean)));
                }
            }
            fields.push(("cells_done".into(), num(*cells_done as u64)));
            "shard_lost"
        }
        CampaignEvent::ShardReassigned {
            shard,
            from_generation,
            to_generation,
        } => {
            fields.push(("shard".into(), num(u64::from(*shard))));
            fields.push(("from_generation".into(), num(u64::from(*from_generation))));
            fields.push(("to_generation".into(), num(u64::from(*to_generation))));
            "shard_reassigned"
        }
        CampaignEvent::ShardMerged {
            shard,
            generation,
            cells,
            quarantined,
        } => {
            fields.push(("shard".into(), num(u64::from(*shard))));
            fields.push(("generation".into(), num(u64::from(*generation))));
            fields.push(("cells".into(), num(*cells as u64)));
            fields.push(("quarantined".into(), num(*quarantined as u64)));
            "shard_merged"
        }
        CampaignEvent::CacheStats(stats) => {
            fields.push(("stats".into(), stats_value(stats)));
            "cache_stats"
        }
        CampaignEvent::CampaignFinished {
            cells_completed,
            cells_total,
            cancelled,
        } => {
            fields.push(("cells_completed".into(), num(*cells_completed as u64)));
            fields.push(("cells_total".into(), num(*cells_total as u64)));
            fields.push(("cancelled".into(), Value::Bool(*cancelled)));
            "campaign_finished"
        }
    };
    fields.insert(0, ("event".into(), text(tag)));
    json::to_string(&Value::Object(fields))
}

fn shape(msg: impl Into<String>) -> WireError {
    WireError::Shape(msg.into())
}

fn field<'a>(value: &'a Value, key: &str) -> Result<&'a Value, WireError> {
    value
        .get(key)
        .ok_or_else(|| shape(format!("missing {key}")))
}

fn get_u64(value: &Value, key: &str) -> Result<u64, WireError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| shape(format!("{key} must be a non-negative integer")))
}

fn get_usize(value: &Value, key: &str) -> Result<usize, WireError> {
    Ok(get_u64(value, key)? as usize)
}

fn get_u32(value: &Value, key: &str) -> Result<u32, WireError> {
    u32::try_from(get_u64(value, key)?).map_err(|_| shape(format!("{key} out of range")))
}

fn get_str<'a>(value: &'a Value, key: &str) -> Result<&'a str, WireError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| shape(format!("{key} must be a string")))
}

fn get_bool(value: &Value, key: &str) -> Result<bool, WireError> {
    match field(value, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(shape(format!("{key} must be a boolean"))),
    }
}

fn get_tally(value: &Value, key: &str) -> Result<ProblemTally, WireError> {
    let tally = field(value, key)?;
    Ok(ProblemTally {
        n: get_usize(tally, "n")?,
        syntax_passes: get_usize(tally, "syntax_passes")?,
        functional_passes: get_usize(tally, "functional_passes")?,
    })
}

fn get_kind(value: &Value, key: &str) -> Result<TransportErrorKind, WireError> {
    let token = get_str(value, key)?;
    transport_kind_from_token(token)
        .ok_or_else(|| shape(format!("unknown transport kind {token:?}")))
}

/// Decodes one wire line back into a [`CampaignEvent`].
///
/// # Errors
///
/// Returns a [`WireError`] when the line is not JSON or does not carry
/// a well-formed event object.
pub fn decode_event(line: &str) -> Result<CampaignEvent, WireError> {
    let value = json::parse(line).map_err(|e| WireError::Json(e.to_string()))?;
    let tag = get_str(&value, "event")?;
    Ok(match tag {
        "campaign_started" => CampaignEvent::CampaignStarted {
            problems: get_usize(&value, "problems")?,
            providers: get_usize(&value, "providers")?,
            cells: get_usize(&value, "cells")?,
        },
        "cell_started" => CampaignEvent::CellStarted {
            problem_id: get_str(&value, "problem_id")?.to_string(),
            model: get_str(&value, "model")?.to_string(),
            feedback_iters: get_usize(&value, "feedback_iters")?,
        },
        "cell_finished" => CampaignEvent::CellFinished {
            problem_id: get_str(&value, "problem_id")?.to_string(),
            model: get_str(&value, "model")?.to_string(),
            feedback_iters: get_usize(&value, "feedback_iters")?,
            tally: get_tally(&value, "tally")?,
            completed: get_usize(&value, "completed")?,
            total: get_usize(&value, "total")?,
        },
        "cell_restored" => CampaignEvent::CellRestored {
            problem_id: get_str(&value, "problem_id")?.to_string(),
            model: get_str(&value, "model")?.to_string(),
            feedback_iters: get_usize(&value, "feedback_iters")?,
            tally: get_tally(&value, "tally")?,
            completed: get_usize(&value, "completed")?,
            total: get_usize(&value, "total")?,
        },
        "sample_retried" => CampaignEvent::SampleRetried {
            model: get_str(&value, "model")?.to_string(),
            problem_id: get_str(&value, "problem_id")?.to_string(),
            sample: get_u64(&value, "sample")?,
            attempt: get_u32(&value, "attempt")?,
            kind: get_kind(&value, "kind")?,
            backoff_ms: get_u64(&value, "backoff_ms")?,
        },
        "sample_degraded" => CampaignEvent::SampleDegraded {
            model: get_str(&value, "model")?.to_string(),
            problem_id: get_str(&value, "problem_id")?.to_string(),
            sample: get_u64(&value, "sample")?,
            attempts: get_u32(&value, "attempts")?,
            kind: get_kind(&value, "kind")?,
        },
        "store_degraded" => CampaignEvent::StoreDegraded {
            write_errors: get_u64(&value, "write_errors")?,
        },
        "shard_started" => CampaignEvent::ShardStarted {
            shard: get_u32(&value, "shard")?,
            generation: get_u32(&value, "generation")?,
            cells: get_usize(&value, "cells")?,
        },
        "shard_heartbeat" => CampaignEvent::ShardHeartbeat {
            shard: get_u32(&value, "shard")?,
            generation: get_u32(&value, "generation")?,
            seq: get_u64(&value, "seq")?,
            cells_done: get_usize(&value, "cells_done")?,
        },
        "shard_lost" => CampaignEvent::ShardLost {
            shard: get_u32(&value, "shard")?,
            generation: get_u32(&value, "generation")?,
            reason: match get_str(&value, "reason")? {
                "lease_expired" => ShardLossReason::LeaseExpired,
                "worker_exited" => ShardLossReason::WorkerExited {
                    clean: get_bool(&value, "clean")?,
                },
                other => return Err(shape(format!("unknown loss reason {other:?}"))),
            },
            cells_done: get_usize(&value, "cells_done")?,
        },
        "shard_reassigned" => CampaignEvent::ShardReassigned {
            shard: get_u32(&value, "shard")?,
            from_generation: get_u32(&value, "from_generation")?,
            to_generation: get_u32(&value, "to_generation")?,
        },
        "shard_merged" => CampaignEvent::ShardMerged {
            shard: get_u32(&value, "shard")?,
            generation: get_u32(&value, "generation")?,
            cells: get_usize(&value, "cells")?,
            quarantined: get_usize(&value, "quarantined")?,
        },
        "cache_stats" => {
            let stats = field(&value, "stats")?;
            CampaignEvent::CacheStats(EvalCacheStats {
                response_hits: get_u64(stats, "response_hits")?,
                report_hits: get_u64(stats, "report_hits")?,
                sim_hits: get_u64(stats, "sim_hits")?,
                disk_hits: get_u64(stats, "disk_hits")?,
                misses: get_u64(stats, "misses")?,
            })
        }
        "campaign_finished" => CampaignEvent::CampaignFinished {
            cells_completed: get_usize(&value, "cells_completed")?,
            cells_total: get_usize(&value, "cells_total")?,
            cancelled: get_bool(&value, "cancelled")?,
        },
        other => return Err(shape(format!("unknown event tag {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<CampaignEvent> {
        vec![
            CampaignEvent::CampaignStarted {
                problems: 3,
                providers: 2,
                cells: 12,
            },
            CampaignEvent::CellStarted {
                problem_id: "mzi-ps".into(),
                model: "GPT-4".into(),
                feedback_iters: 1,
            },
            CampaignEvent::CellFinished {
                problem_id: "mzi-ps".into(),
                model: "GPT-4".into(),
                feedback_iters: 1,
                tally: ProblemTally {
                    n: 5,
                    syntax_passes: 4,
                    functional_passes: 3,
                },
                completed: 1,
                total: 12,
            },
            CampaignEvent::CellRestored {
                problem_id: "mzm".into(),
                model: "Claude 3.5 Sonnet".into(),
                feedback_iters: 0,
                tally: ProblemTally {
                    n: 5,
                    syntax_passes: 5,
                    functional_passes: 5,
                },
                completed: 2,
                total: 12,
            },
            CampaignEvent::SampleRetried {
                model: "GPT-4".into(),
                problem_id: "mzi-ps".into(),
                sample: 3,
                attempt: 2,
                kind: TransportErrorKind::RateLimit,
                backoff_ms: 250,
            },
            CampaignEvent::SampleDegraded {
                model: "GPT-4".into(),
                problem_id: "mzi-ps".into(),
                sample: 3,
                attempts: 4,
                kind: TransportErrorKind::Fatal,
            },
            CampaignEvent::StoreDegraded { write_errors: 1 },
            CampaignEvent::ShardStarted {
                shard: 1,
                generation: 0,
                cells: 6,
            },
            CampaignEvent::ShardHeartbeat {
                shard: 1,
                generation: 0,
                seq: 7,
                cells_done: 3,
            },
            CampaignEvent::ShardLost {
                shard: 1,
                generation: 0,
                reason: ShardLossReason::LeaseExpired,
                cells_done: 3,
            },
            CampaignEvent::ShardLost {
                shard: 2,
                generation: 1,
                reason: ShardLossReason::WorkerExited { clean: false },
                cells_done: 0,
            },
            CampaignEvent::ShardReassigned {
                shard: 1,
                from_generation: 0,
                to_generation: 1,
            },
            CampaignEvent::ShardMerged {
                shard: 1,
                generation: 1,
                cells: 6,
                quarantined: 1,
            },
            CampaignEvent::CacheStats(EvalCacheStats {
                response_hits: 10,
                report_hits: 2,
                sim_hits: 3,
                disk_hits: 1,
                misses: 4,
            }),
            CampaignEvent::CampaignFinished {
                cells_completed: 12,
                cells_total: 12,
                cancelled: false,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for event in samples() {
            let line = encode_event(&event);
            assert!(!line.contains('\n'), "one line per event: {line}");
            let back = decode_event(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(event, back, "{line}");
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        for event in samples() {
            assert_eq!(encode_event(&event), encode_event(&event));
        }
    }

    #[test]
    fn unknown_and_malformed_lines_are_rejected() {
        assert!(matches!(decode_event("not json"), Err(WireError::Json(_))));
        assert!(matches!(
            decode_event(r#"{"event":"nope"}"#),
            Err(WireError::Shape(_))
        ));
        assert!(matches!(
            decode_event(r#"{"event":"campaign_started","problems":1.5,"providers":1,"cells":1}"#),
            Err(WireError::Shape(_))
        ));
        assert!(matches!(
            decode_event(r#"{"problems":1}"#),
            Err(WireError::Shape(_))
        ));
    }

    #[test]
    fn wire_tag_leads_every_line() {
        for event in samples() {
            assert!(encode_event(&event).starts_with(r#"{"event":""#));
        }
    }
}
