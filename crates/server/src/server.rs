//! The benchmark-as-a-service HTTP server.
//!
//! A [`PicbenchServer`] owns one process-wide [`EvalCache`] (optionally
//! backed by an [`EvalStore`] disk tier) and a multi-tenant
//! [`SessionTable`]. Campaigns submitted over HTTP run on supervised
//! worker threads against the *shared* cache, each under its tenant's
//! [`CacheScope`], so identical submissions from different tenants hit
//! each other's cached evaluations while their reported counters stay
//! fully partitioned.
//!
//! ## Routes
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /v1/problem-sets` | Register custom problems (JSON) |
//! | `POST /v1/campaigns` | Validate knobs, start a campaign session |
//! | `GET /v1/campaigns/{id}` | Session status and cell progress |
//! | `GET /v1/campaigns/{id}/events` | Long-lived NDJSON event stream |
//! | `DELETE /v1/campaigns/{id}` | Cooperative cancellation |
//! | `GET /v1/stats` | Cache / session / store counters |
//! | `POST /v1/coord/{op}` | Campaign coordination RPC (lease / append / cells / state) |
//!
//! The coordination routes are enabled by [`ServerConfig::coord_root`]
//! and delegate to a [`Coordinator`] owning the shard-journal tree on
//! the coordinator host; remote shard workers speak to them through
//! `picbench_coord::HttpTransport`. They are idempotent by design
//! (generation-fenced leases, `(fingerprint, seq)`-deduped appends), so
//! worker-side retries over a flaky network are safe.
//!
//! Tenancy rides on the `x-picbench-tenant` header; a session is only
//! visible to the tenant that created it (foreign lookups are
//! structurally 404). Shutdown is graceful: the acceptor stops, new
//! work is refused with 503, in-flight campaigns run to completion and
//! their streams drain before [`ServerHandle::shutdown`] returns.
//!
//! [`EvalStore`]: picbench_core::EvalStore

use crate::http::{self, Request, RequestError};
use crate::pace::PacedProvider;
use crate::session::{Session, SessionState, SessionTable};
use crate::wire;
use picbench_coord::Coordinator;
use picbench_core::{CacheScope, Campaign, CampaignEvent, EvalCache, EvalStore, SharedEvalStore};
use picbench_netlist::json::{self, Value};
use picbench_problems::Problem;
use picbench_synthllm::{ModelProfile, ModelProvider};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`PicbenchServer::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 (the default) picks an ephemeral port —
    /// read the real one from [`ServerHandle::addr`].
    pub addr: SocketAddr,
    /// Worker threads serving connections. Each long-lived event
    /// stream occupies a worker for the life of its campaign, so this
    /// bounds concurrent streams.
    pub workers: usize,
    /// Running campaigns admitted before `POST /v1/campaigns` answers
    /// 429.
    pub max_sessions: usize,
    /// When set, the shared cache gains a persistent [`EvalStore`]
    /// tier rooted here and `GET /v1/stats` reports its counters.
    ///
    /// [`EvalStore`]: picbench_core::EvalStore
    pub store_dir: Option<PathBuf>,
    /// Evaluation threads per campaign unless the request says
    /// otherwise. Defaults to 1: with a single evaluation thread the
    /// event *order* is deterministic, which is what makes streams
    /// byte-for-byte reproducible.
    pub default_threads: usize,
    /// When set, the server exposes `POST /v1/coord/{op}` backed by a
    /// [`Coordinator`] rooted at this shard-journal directory, turning
    /// the process into a campaign coordinator for remote shard
    /// workers. The supervising campaign on this host must merge from
    /// the same directory.
    pub coord_root: Option<PathBuf>,
    /// Socket read deadline per connection, in milliseconds. A client
    /// that stalls mid-request past this deadline gets a 408 and its
    /// worker thread is freed. `0` disables the deadline.
    pub read_timeout_ms: u64,
    /// Socket write deadline per connection, in milliseconds. Bounds
    /// how long a response (or one event-stream chunk) may sit blocked
    /// on a client that stopped reading. `0` disables the deadline.
    pub write_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("loopback addr parses"),
            workers: 64,
            max_sessions: 256,
            store_dir: None,
            default_threads: 1,
            coord_root: None,
            read_timeout_ms: 10_000,
            write_timeout_ms: 30_000,
        }
    }
}

/// Everything the worker threads share.
struct ServerState {
    config: ServerConfig,
    cache: Arc<EvalCache>,
    store: Option<SharedEvalStore>,
    sessions: SessionTable,
    scopes: Mutex<HashMap<String, Arc<CacheScope>>>,
    problem_sets: Mutex<HashMap<String, Vec<Problem>>>,
    next_set: AtomicU64,
    shutdown: AtomicBool,
    coord: Option<Arc<Coordinator>>,
}

impl ServerState {
    /// The per-tenant cache scope, created on the tenant's first
    /// campaign.
    fn scope_for(&self, tenant: &str) -> Arc<CacheScope> {
        let mut scopes = self.scopes.lock().expect("scope table poisoned");
        Arc::clone(
            scopes
                .entry(tenant.to_string())
                .or_insert_with(|| Arc::new(CacheScope::new())),
        )
    }
}

/// The benchmark service. Construct with [`PicbenchServer::start`].
pub struct PicbenchServer;

/// A running server: its bound address plus the shutdown lever.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl PicbenchServer {
    /// Binds, spawns the acceptor and worker pool, and returns the
    /// handle. The server is ready to serve when this returns.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the store directory
    /// cannot be opened.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let store = match &config.store_dir {
            Some(dir) => Some(Arc::new(EvalStore::open(dir)?)),
            None => None,
        };
        let mut cache = EvalCache::new();
        if let Some(store) = &store {
            cache = cache.with_disk(Arc::clone(store));
        }
        let coord = config
            .coord_root
            .as_ref()
            .map(|root| Arc::new(Coordinator::new(root)));
        let state = Arc::new(ServerState {
            cache: Arc::new(cache),
            store,
            sessions: SessionTable::new(),
            scopes: Mutex::new(HashMap::new()),
            problem_sets: Mutex::new(HashMap::new()),
            next_set: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            coord,
            config,
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..state.config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                std::thread::spawn(move || loop {
                    let conn = rx.lock().expect("worker queue poisoned").recv();
                    match conn {
                        Ok(mut stream) => serve_connection(&state, &mut stream),
                        Err(_) => break, // acceptor gone: shutdown
                    }
                })
            })
            .collect();

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                while !state.shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
                // Dropping `tx` here is what releases the workers.
            })
        };

        Ok(ServerHandle {
            addr,
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let in-flight campaigns run
    /// to completion, drain their streams, join every thread.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Campaigns finish → logs close → streaming workers drain.
        self.state.sessions.drain();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn serve_connection(state: &Arc<ServerState>, stream: &mut TcpStream) {
    // Deadlines keep a stalled or dead peer from pinning a worker
    // thread: reads give up with a 408, writes (including event-stream
    // chunks to a client that stopped reading) abort the connection.
    let timeout = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
    let _ = stream.set_read_timeout(timeout(state.config.read_timeout_ms));
    let _ = stream.set_write_timeout(timeout(state.config.write_timeout_ms));
    let request = match http::read_request(stream) {
        Ok(request) => request,
        Err(RequestError::ConnectionClosed) => return,
        Err(RequestError::BodyTooLarge) => {
            let _ = http::write_error(stream, 413, "request body too large");
            return;
        }
        Err(RequestError::Malformed(why)) => {
            let _ = http::write_error(stream, 400, why);
            return;
        }
        Err(RequestError::TimedOut) => {
            let _ = http::write_error(stream, 408, "request timed out");
            return;
        }
        Err(RequestError::Io(_)) => return,
    };
    // Responses to a departed client are not errors worth surfacing.
    let _ = route(state, &request, stream);
}

fn tenant_of(request: &Request) -> String {
    request
        .header("x-picbench-tenant")
        .filter(|t| !t.is_empty())
        .unwrap_or("default")
        .to_string()
}

fn route(state: &Arc<ServerState>, request: &Request, stream: &mut TcpStream) -> io::Result<()> {
    let path = request.path.as_str();
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "problem-sets"]) => post_problem_set(state, request, stream),
        ("POST", ["v1", "campaigns"]) => post_campaign(state, request, stream),
        ("GET", ["v1", "campaigns", id]) => get_campaign(state, request, id, stream),
        ("GET", ["v1", "campaigns", id, "events"]) => get_events(state, request, id, stream),
        ("DELETE", ["v1", "campaigns", id]) => delete_campaign(state, request, id, stream),
        ("GET", ["v1", "stats"]) => get_stats(state, stream),
        ("POST", ["v1", "coord", op]) => post_coord(state, request, op, stream),
        ("POST" | "GET" | "DELETE", _) => http::write_error(stream, 404, "no such route"),
        _ => http::write_error(stream, 405, "method not allowed"),
    }
}

/// Campaign coordination RPC: delegates to the [`Coordinator`], which
/// owns all protocol decisions (lease fencing, append dedup) and maps
/// them onto HTTP statuses. Deliberately *not* gated on the shutdown
/// flag: workers retry idempotently, and a coordinator restarting
/// mid-campaign should answer in-flight appends for as long as the
/// socket is alive.
fn post_coord(
    state: &Arc<ServerState>,
    request: &Request,
    op: &str,
    stream: &mut TcpStream,
) -> io::Result<()> {
    let Some(coordinator) = &state.coord else {
        return http::write_error(stream, 404, "coordination is not enabled on this server");
    };
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return http::write_error(stream, 400, "body is not UTF-8"),
    };
    let reply = coordinator.handle(op, body);
    http::write_json(stream, reply.status, &reply.body)
}

fn post_problem_set(
    state: &Arc<ServerState>,
    request: &Request,
    stream: &mut TcpStream,
) -> io::Result<()> {
    if state.shutdown.load(Ordering::Acquire) {
        return http::write_error(stream, 503, "server is shutting down");
    }
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return http::write_error(stream, 400, "body is not UTF-8"),
    };
    let problems = match picbench_problems::problems_from_json(body) {
        Ok(problems) => problems,
        Err(e) => return http::write_error(stream, 400, &format!("invalid problem set: {e}")),
    };
    if problems.is_empty() {
        return http::write_error(stream, 400, "problem set is empty");
    }
    let id = format!("ps-{}", state.next_set.fetch_add(1, Ordering::Relaxed) + 1);
    let ids: Vec<Value> = problems
        .iter()
        .map(|p| Value::String(p.id.to_string()))
        .collect();
    state
        .problem_sets
        .lock()
        .expect("problem-set table poisoned")
        .insert(id.clone(), problems);
    let body = json::to_string(&Value::Object(vec![
        ("id".into(), Value::String(id)),
        ("problems".into(), Value::Array(ids)),
    ]));
    http::write_json(stream, 201, &body)
}

/// The validated content of a `POST /v1/campaigns` body.
struct CampaignRequest {
    problems: Vec<Problem>,
    providers: Vec<Arc<dyn ModelProvider>>,
    samples_per_problem: usize,
    k_values: Vec<usize>,
    feedback_iters: Vec<usize>,
    seed: u64,
    threads: usize,
    restrictions: bool,
    cache: bool,
}

fn get_usize(value: &Value, key: &str, default: usize) -> Result<usize, String> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => match v.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 && n < 9.0e15 => Ok(n as usize),
            _ => Err(format!("field '{key}' must be a non-negative integer")),
        },
    }
}

fn get_usize_list(value: &Value, key: &str, default: &[usize]) -> Result<Vec<usize>, String> {
    match value.get(key) {
        None => Ok(default.to_vec()),
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v.as_f64() {
                Some(n) if n >= 0.0 && n.fract() == 0.0 && n < 9.0e15 => Ok(n as usize),
                _ => Err(format!("field '{key}' must hold non-negative integers")),
            })
            .collect(),
        Some(_) => Err(format!("field '{key}' must be an array of integers")),
    }
}

fn parse_campaign_request(
    state: &ServerState,
    body: &Value,
) -> Result<(CampaignRequest, u64), String> {
    let models = body
        .get("models")
        .and_then(Value::as_array)
        .ok_or("field 'models' (array of model names) is required")?;
    if models.is_empty() {
        return Err("field 'models' is empty".to_string());
    }
    let mut providers: Vec<Arc<dyn ModelProvider>> = Vec::new();
    let pace_ms = match body.get("pace_ms") {
        None => 0,
        Some(v) => match v.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= 60_000.0 => n as u64,
            _ => return Err("field 'pace_ms' must be an integer in [0, 60000]".to_string()),
        },
    };
    for model in models {
        let name = model.as_str().ok_or("model names must be strings")?;
        let profile =
            ModelProfile::by_name(name).ok_or_else(|| format!("unknown model '{name}'"))?;
        let provider: Arc<dyn ModelProvider> = if pace_ms > 0 {
            Arc::new(PacedProvider::new(
                Arc::new(profile),
                Duration::from_millis(pace_ms),
            ))
        } else {
            Arc::new(profile)
        };
        providers.push(provider);
    }

    let mut problems: Vec<Problem> = Vec::new();
    if let Some(set_id) = body.get("problem_set") {
        let set_id = set_id
            .as_str()
            .ok_or("field 'problem_set' must be a string")?;
        let sets = state
            .problem_sets
            .lock()
            .expect("problem-set table poisoned");
        let set = sets
            .get(set_id)
            .ok_or_else(|| format!("unknown problem set '{set_id}'"))?;
        problems.extend(set.iter().cloned());
    }
    if let Some(ids) = body.get("problems") {
        let ids = ids.as_array().ok_or("field 'problems' must be an array")?;
        for id in ids {
            let id = id.as_str().ok_or("problem ids must be strings")?;
            let problem = picbench_problems::find(id)
                .ok_or_else(|| format!("unknown builtin problem '{id}'"))?;
            problems.push(problem);
        }
    }
    if problems.is_empty() {
        return Err("no problems: give 'problems' (builtin ids), 'problem_set', or both".into());
    }

    let samples_per_problem = get_usize(body, "samples_per_problem", 2)?;
    let k_values = get_usize_list(body, "k_values", &[1])?;
    let feedback_iters = get_usize_list(body, "feedback_iters", &[0])?;
    let seed = match body.get("seed") {
        None => picbench_synthllm::PAPER_SEED,
        Some(v) => match v.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 && n < 9.0e15 => n as u64,
            _ => return Err("field 'seed' must be a non-negative integer".to_string()),
        },
    };
    let threads = get_usize(body, "threads", state.config.default_threads)?;
    let restrictions = match body.get("restrictions") {
        None => true,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err("field 'restrictions' must be a boolean".to_string()),
    };
    let cache = match body.get("cache") {
        None => true,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err("field 'cache' must be a boolean".to_string()),
    };
    Ok((
        CampaignRequest {
            problems,
            providers,
            samples_per_problem,
            k_values,
            feedback_iters,
            seed,
            threads,
            restrictions,
            cache,
        },
        pace_ms,
    ))
}

fn post_campaign(
    state: &Arc<ServerState>,
    request: &Request,
    stream: &mut TcpStream,
) -> io::Result<()> {
    if state.shutdown.load(Ordering::Acquire) {
        return http::write_error(stream, 503, "server is shutting down");
    }
    let tenant = tenant_of(request);
    let body = match std::str::from_utf8(&request.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(body) => body,
        Err(e) => return http::write_error(stream, 400, &format!("invalid JSON body: {e}")),
    };
    let (spec, _pace_ms) = match parse_campaign_request(state, &body) {
        Ok(parsed) => parsed,
        Err(e) => return http::write_error(stream, 400, &e),
    };

    let Some(session) = state.sessions.admit(&tenant, state.config.max_sessions) else {
        return http::write_error(stream, 429, "session capacity reached");
    };

    let campaign = {
        let observer_session = Arc::clone(&session);
        let mut builder = Campaign::builder()
            .problems(spec.problems)
            .providers(spec.providers)
            .samples_per_problem(spec.samples_per_problem)
            .k_values(spec.k_values)
            .feedback_iters(spec.feedback_iters)
            .seed(spec.seed)
            .threads(spec.threads)
            .restrictions(spec.restrictions)
            .cache(spec.cache)
            .cancel_token(session.cancel.clone())
            .observer(Arc::new(move |event: &CampaignEvent| {
                match event {
                    CampaignEvent::CampaignStarted { cells, .. } => {
                        observer_session.set_cells_total(*cells);
                    }
                    CampaignEvent::CellFinished { completed, .. }
                    | CampaignEvent::CellRestored { completed, .. } => {
                        observer_session.note_cell_completed(*completed);
                    }
                    _ => {}
                }
                observer_session.log.push(wire::encode_event(event));
            }));
        if spec.cache {
            builder = builder
                .shared_cache(Arc::clone(&state.cache))
                .cache_scope(state.scope_for(&tenant));
        }
        match builder.build() {
            Ok(campaign) => campaign,
            Err(e) => {
                state.sessions.finish(&session, SessionState::Failed);
                return http::write_error(stream, 400, &format!("invalid campaign: {e:?}"));
            }
        }
    };

    let runner = {
        let state = Arc::clone(state);
        let session = Arc::clone(&session);
        std::thread::spawn(move || {
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| campaign.execute()));
            let final_state = match &outcome {
                Ok(outcome) if outcome.cancelled => SessionState::Cancelled,
                Ok(_) => SessionState::Finished,
                Err(_) => SessionState::Failed,
            };
            state.sessions.finish(&session, final_state);
        })
    };
    state.sessions.track_runner(runner);

    let body = json::to_string(&Value::Object(vec![
        ("id".into(), Value::String(session.id.clone())),
        ("state".into(), Value::String("running".into())),
    ]));
    http::write_json(stream, 201, &body)
}

fn session_status(session: &Session) -> Value {
    let (completed, total) = session.progress();
    Value::Object(vec![
        ("id".into(), Value::String(session.id.clone())),
        (
            "state".into(),
            Value::String(session.state().token().into()),
        ),
        ("cells_completed".into(), wire::num(completed as u64)),
        ("cells_total".into(), wire::num(total as u64)),
    ])
}

fn get_campaign(
    state: &Arc<ServerState>,
    request: &Request,
    id: &str,
    stream: &mut TcpStream,
) -> io::Result<()> {
    let tenant = tenant_of(request);
    match state.sessions.get(&tenant, id) {
        Some(session) => http::write_json(stream, 200, &json::to_string(&session_status(&session))),
        None => http::write_error(stream, 404, "no such campaign"),
    }
}

fn get_events(
    state: &Arc<ServerState>,
    request: &Request,
    id: &str,
    stream: &mut TcpStream,
) -> io::Result<()> {
    let tenant = tenant_of(request);
    let Some(session) = state.sessions.get(&tenant, id) else {
        return http::write_error(stream, 404, "no such campaign");
    };
    let _guard = state.sessions.stream_guard();
    http::write_stream_head(stream)?;
    let mut cursor = 0usize;
    // Chunks arrive newline-terminated (the log's commit watermark only
    // rests on line boundaries), so they stream straight through. A
    // departed client ends the stream, nothing more.
    while let Some(chunk) = session.log.wait_from(cursor) {
        cursor += chunk.len();
        use std::io::Write;
        stream.write_all(&chunk)?;
        stream.flush()?;
    }
    Ok(())
}

fn delete_campaign(
    state: &Arc<ServerState>,
    request: &Request,
    id: &str,
    stream: &mut TcpStream,
) -> io::Result<()> {
    let tenant = tenant_of(request);
    let Some(session) = state.sessions.get(&tenant, id) else {
        return http::write_error(stream, 404, "no such campaign");
    };
    session.cancel.cancel();
    let body = json::to_string(&Value::Object(vec![
        ("id".into(), Value::String(session.id.clone())),
        ("state".into(), Value::String("cancelling".into())),
    ]));
    http::write_json(stream, 202, &body)
}

fn get_stats(state: &Arc<ServerState>, stream: &mut TcpStream) -> io::Result<()> {
    let sessions = state.sessions.stats();
    let session_obj = Value::Object(vec![
        ("active".into(), wire::num(sessions.active as u64)),
        ("peak_active".into(), wire::num(sessions.peak_active as u64)),
        (
            "active_streams".into(),
            wire::num(sessions.active_streams as u64),
        ),
        (
            "peak_streams".into(),
            wire::num(sessions.peak_streams as u64),
        ),
        ("started".into(), wire::num(sessions.started)),
        ("finished".into(), wire::num(sessions.finished)),
        ("cancelled".into(), wire::num(sessions.cancelled)),
    ]);
    let tenants = {
        let scopes = state.scopes.lock().expect("scope table poisoned");
        let mut entries: Vec<(String, Value)> = scopes
            .iter()
            .map(|(tenant, scope)| (tenant.clone(), wire::stats_value(&scope.stats())))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    };
    let store = match &state.store {
        None => Value::Null,
        Some(store) => {
            let stats = store.stats();
            Value::Object(vec![
                ("reads".into(), wire::num(stats.reads)),
                ("read_hits".into(), wire::num(stats.read_hits)),
                ("writes".into(), wire::num(stats.writes)),
                ("syncs".into(), wire::num(stats.syncs)),
                ("write_errors".into(), wire::num(stats.write_errors)),
                ("degraded".into(), Value::Bool(stats.degraded)),
            ])
        }
    };
    let body = json::to_string(&Value::Object(vec![
        ("sessions".into(), session_obj),
        ("cache".into(), wire::stats_value(&state.cache.stats())),
        ("tenants".into(), tenants),
        ("store".into(), store),
    ]));
    http::write_json(stream, 200, &body)
}
