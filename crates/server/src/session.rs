//! The multi-tenant session table: one entry per campaign run over the
//! wire.
//!
//! A [`Session`] bridges the in-process observer seam to any number of
//! HTTP stream readers: the campaign's [`CampaignObserver`] pushes each
//! event — already encoded to its canonical wire line — into an
//! append-only [`EventLog`]; readers replay the log from byte 0 and
//! block on a condvar for more, so a reader that connects late (or
//! reconnects) sees exactly the same byte sequence as one that was
//! there from the start. Publication is gated by a commit watermark
//! that only ever rests on a newline boundary, so no reader — however
//! unluckily scheduled against the writer — can observe a torn NDJSON
//! line. The log closes when the campaign thread finishes, which is
//! what ends the streams.
//!
//! [`CampaignObserver`]: picbench_core::CampaignObserver

use picbench_core::CancelToken;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// The campaign is still evaluating.
    Running,
    /// The campaign ran to completion.
    Finished,
    /// The campaign was cut short by cooperative cancellation.
    Cancelled,
    /// The campaign thread panicked (a bug, surfaced rather than hung).
    Failed,
}

impl SessionState {
    /// The wire token served in status responses.
    pub fn token(self) -> &'static str {
        match self {
            SessionState::Running => "running",
            SessionState::Finished => "finished",
            SessionState::Cancelled => "cancelled",
            SessionState::Failed => "failed",
        }
    }
}

#[derive(Default)]
struct LogInner {
    /// Raw NDJSON bytes: one `\n`-terminated line per event. Bytes past
    /// `committed` belong to a line still being appended.
    buf: Vec<u8>,
    /// Publication watermark. Always rests on a newline boundary (or 0),
    /// and everything below it is immutable — readers are handed
    /// exactly `buf[..committed]` and can never see a torn line.
    committed: usize,
    closed: bool,
}

/// An append-only, multi-reader byte log of encoded event lines.
///
/// Readers address the log by *byte* offset and only ever observe the
/// committed prefix, which grows monotonically and ends at a newline.
/// Writers may stage a line incrementally with [`EventLog::append_bytes`];
/// staged bytes publish when their terminating newline lands.
#[derive(Default)]
pub struct EventLog {
    inner: Mutex<LogInner>,
    grew: Condvar,
}

impl EventLog {
    /// Appends one encoded line (no trailing newline), commits it and
    /// wakes readers.
    pub fn push(&self, line: String) {
        debug_assert!(
            !line.contains('\n'),
            "wire lines are single-line by contract"
        );
        let mut inner = self.inner.lock().expect("event log poisoned");
        inner.buf.extend_from_slice(line.as_bytes());
        inner.buf.push(b'\n');
        inner.committed = inner.buf.len();
        self.grew.notify_all();
    }

    /// Appends raw stream bytes, committing only up to the last newline
    /// they complete. A partial trailing line stays staged — invisible
    /// to every reader — until a later append delivers its `\n`.
    pub fn append_bytes(&self, bytes: &[u8]) {
        let mut inner = self.inner.lock().expect("event log poisoned");
        inner.buf.extend_from_slice(bytes);
        let committed = inner.committed;
        if let Some(last_nl) = inner.buf[committed..].iter().rposition(|&b| b == b'\n') {
            inner.committed = committed + last_nl + 1;
            self.grew.notify_all();
        }
    }

    /// Closes the log: readers drain the committed prefix and stop. Any
    /// staged partial line is discarded rather than published torn.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("event log poisoned");
        inner.closed = true;
        let committed = inner.committed;
        inner.buf.truncate(committed);
        self.grew.notify_all();
    }

    /// Committed (reader-visible) bytes currently in the log.
    pub fn committed_len(&self) -> usize {
        self.inner.lock().expect("event log poisoned").committed
    }

    /// Whether the log holds no committed bytes yet.
    pub fn is_empty(&self) -> bool {
        self.committed_len() == 0
    }

    /// Returns the committed bytes from offset `from` on, blocking until
    /// some are available or the log closes. `None` means
    /// closed-and-drained — the reader's stream is complete. The
    /// returned chunk always ends at a newline boundary.
    pub fn wait_from(&self, from: usize) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().expect("event log poisoned");
        loop {
            if inner.committed > from {
                return Some(inner.buf[from..inner.committed].to_vec());
            }
            if inner.closed {
                return None;
            }
            inner = self.grew.wait(inner).expect("event log poisoned");
        }
    }

    /// A snapshot of the committed prefix (non-blocking).
    pub fn snapshot(&self) -> Vec<u8> {
        let inner = self.inner.lock().expect("event log poisoned");
        inner.buf[..inner.committed].to_vec()
    }
}

/// One campaign run over the wire.
pub struct Session {
    /// Server-assigned session id (`c-N`).
    pub id: String,
    /// The tenant that owns it; other tenants cannot see it at all.
    pub tenant: String,
    /// The cooperative cancellation switch `DELETE` flips.
    pub cancel: CancelToken,
    /// The encoded event stream, replayable from the start.
    pub log: EventLog,
    state: Mutex<SessionState>,
    cells_total: AtomicUsize,
    cells_completed: AtomicUsize,
}

impl Session {
    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        *self.state.lock().expect("session state poisoned")
    }

    /// Records the matrix size once it is known.
    pub fn set_cells_total(&self, total: usize) {
        self.cells_total.store(total, Ordering::Relaxed);
    }

    /// Bumps the completed-cell gauge (observer-side).
    pub fn note_cell_completed(&self, completed: usize) {
        self.cells_completed.store(completed, Ordering::Relaxed);
    }

    /// `(completed, total)` cell progress.
    pub fn progress(&self) -> (usize, usize) {
        (
            self.cells_completed.load(Ordering::Relaxed),
            self.cells_total.load(Ordering::Relaxed),
        )
    }

    fn transition(&self, to: SessionState) {
        *self.state.lock().expect("session state poisoned") = to;
    }
}

/// Counter snapshot of a [`SessionTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions whose campaign thread is still running.
    pub active: usize,
    /// High-water mark of `active`.
    pub peak_active: usize,
    /// Event streams currently being served.
    pub active_streams: usize,
    /// High-water mark of `active_streams` — the measured
    /// concurrent-streaming-session ceiling.
    pub peak_streams: usize,
    /// Sessions ever admitted.
    pub started: u64,
    /// Sessions that ran to completion.
    pub finished: u64,
    /// Sessions cut short by cancellation.
    pub cancelled: u64,
}

/// The process-wide registry of sessions, plus its gauges.
#[derive(Default)]
pub struct SessionTable {
    sessions: Mutex<HashMap<String, Arc<Session>>>,
    runners: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
    active: AtomicUsize,
    peak_active: AtomicUsize,
    active_streams: AtomicUsize,
    peak_streams: AtomicUsize,
    started: AtomicU64,
    finished: AtomicU64,
    cancelled: AtomicU64,
}

fn bump_peak(gauge: &AtomicUsize, peak: &AtomicUsize) {
    let now = gauge.fetch_add(1, Ordering::AcqRel) + 1;
    peak.fetch_max(now, Ordering::AcqRel);
}

impl SessionTable {
    /// An empty table.
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// Admits a new session for `tenant`, unless `max_active` running
    /// sessions already exist (`None` = at capacity; the server answers
    /// 429).
    pub fn admit(&self, tenant: &str, max_active: usize) -> Option<Arc<Session>> {
        let mut sessions = self.sessions.lock().expect("session table poisoned");
        if self.active.load(Ordering::Acquire) >= max_active {
            return None;
        }
        let id = format!("c-{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let session = Arc::new(Session {
            id: id.clone(),
            tenant: tenant.to_string(),
            cancel: CancelToken::new(),
            log: EventLog::default(),
            state: Mutex::new(SessionState::Running),
            cells_total: AtomicUsize::new(0),
            cells_completed: AtomicUsize::new(0),
        });
        sessions.insert(id, Arc::clone(&session));
        bump_peak(&self.active, &self.peak_active);
        self.started.fetch_add(1, Ordering::Relaxed);
        Some(session)
    }

    /// Registers the session's campaign thread so shutdown can drain it.
    pub fn track_runner(&self, handle: JoinHandle<()>) {
        self.runners
            .lock()
            .expect("session runners poisoned")
            .push(handle);
    }

    /// Looks a session up *within* a tenant: sessions of other tenants
    /// are indistinguishable from absent ones by construction.
    pub fn get(&self, tenant: &str, id: &str) -> Option<Arc<Session>> {
        let sessions = self.sessions.lock().expect("session table poisoned");
        sessions.get(id).filter(|s| s.tenant == tenant).cloned()
    }

    /// Marks a session's campaign finished (called by its runner thread
    /// as its last act before the log closes).
    pub fn finish(&self, session: &Session, state: SessionState) {
        session.transition(state);
        self.active.fetch_sub(1, Ordering::AcqRel);
        match state {
            SessionState::Cancelled => self.cancelled.fetch_add(1, Ordering::Relaxed),
            _ => self.finished.fetch_add(1, Ordering::Relaxed),
        };
        session.log.close();
    }

    /// Accounts an event stream for the session's lifetime; hold the
    /// guard while serving.
    pub fn stream_guard(&self) -> StreamGuard<'_> {
        bump_peak(&self.active_streams, &self.peak_streams);
        StreamGuard { table: self }
    }

    /// Counter snapshot (atomic loads, no lock-the-world).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            active: self.active.load(Ordering::Relaxed),
            peak_active: self.peak_active.load(Ordering::Relaxed),
            active_streams: self.active_streams.load(Ordering::Relaxed),
            peak_streams: self.peak_streams.load(Ordering::Relaxed),
            started: self.started.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Joins every campaign thread (graceful-shutdown drain). In-flight
    /// campaigns run to completion; their logs close, which ends their
    /// streams.
    pub fn drain(&self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut runners = self.runners.lock().expect("session runners poisoned");
            runners.drain(..).collect()
        };
        for handle in handles {
            // A panicked runner already transitioned its session to
            // Failed; the drain still completes.
            let _ = handle.join();
        }
    }
}

/// RAII guard accounting one live event stream.
pub struct StreamGuard<'a> {
    table: &'a SessionTable,
}

impl Drop for StreamGuard<'_> {
    fn drop(&mut self) {
        self.table.active_streams.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_replays_identically_for_late_readers() {
        let log = EventLog::default();
        log.push("a".into());
        log.push("b".into());
        let early = log.wait_from(0).unwrap();
        log.push("c".into());
        log.close();
        let late = log.snapshot();
        assert_eq!(early, b"a\nb\n");
        assert_eq!(late, b"a\nb\nc\n");
        assert_eq!(log.wait_from(late.len()), None, "closed and drained");
    }

    #[test]
    fn wait_from_blocks_until_growth() {
        let log = Arc::new(EventLog::default());
        let writer = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                log.push("x".into());
                log.close();
            })
        };
        assert_eq!(log.wait_from(0).unwrap(), b"x\n");
        assert!(log.wait_from(2).is_none());
        writer.join().unwrap();
    }

    #[test]
    fn partial_lines_stay_invisible_until_their_newline() {
        let log = EventLog::default();
        log.append_bytes(b"{\"event\":\"camp");
        assert!(log.is_empty(), "no newline yet, nothing published");
        assert_eq!(log.snapshot(), b"");
        log.append_bytes(b"aign_started\"}\n{\"torn");
        // The completed first line publishes; the torn tail does not.
        assert_eq!(log.snapshot(), b"{\"event\":\"campaign_started\"}\n");
        log.append_bytes(b"\"}\n");
        assert_eq!(
            log.snapshot(),
            b"{\"event\":\"campaign_started\"}\n{\"torn\"}\n"
        );
    }

    #[test]
    fn close_discards_a_staged_partial_line() {
        let log = EventLog::default();
        log.append_bytes(b"whole\nhalf-a-li");
        log.close();
        assert_eq!(log.snapshot(), b"whole\n");
        assert_eq!(log.wait_from(6), None);
    }

    #[test]
    fn racing_reader_never_observes_a_torn_line() {
        // A writer streams many lines in deliberately awkward chunks
        // (splitting mid-line and mid-escape) while a reader tails the
        // log concurrently. Every chunk the reader is handed must end
        // on a newline boundary, and the total replay must be exactly
        // the byte sequence a from-the-start reader would see.
        let log = Arc::new(EventLog::default());
        let n_lines = 500usize;
        let expected: Vec<u8> = (0..n_lines)
            .flat_map(|i| format!("{{\"event\":\"tick\",\"seq\":{i}}}\n").into_bytes())
            .collect();

        let reader = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(chunk) = log.wait_from(seen.len()) {
                    assert_eq!(
                        chunk.last(),
                        Some(&b'\n'),
                        "reader handed a chunk not ending at a newline"
                    );
                    seen.extend_from_slice(&chunk);
                }
                seen
            })
        };

        // Deterministically vary chunk sizes 1..=7 to hit every split
        // position across the corpus.
        let mut pos = 0usize;
        let mut step = 1usize;
        while pos < expected.len() {
            let end = (pos + step).min(expected.len());
            log.append_bytes(&expected[pos..end]);
            pos = end;
            step = step % 7 + 1;
        }
        log.close();

        let seen = reader.join().expect("reader panicked");
        assert_eq!(seen, expected, "late replay must be byte-identical");
    }

    #[test]
    fn tenancy_is_structural() {
        let table = SessionTable::new();
        let session = table.admit("alice", 8).unwrap();
        assert!(table.get("alice", &session.id).is_some());
        assert!(table.get("bob", &session.id).is_none());
        assert!(table.get("alice", "c-999").is_none());
    }

    #[test]
    fn capacity_is_enforced_and_released() {
        let table = SessionTable::new();
        let a = table.admit("t", 2).unwrap();
        let _b = table.admit("t", 2).unwrap();
        assert!(table.admit("t", 2).is_none(), "at capacity");
        table.finish(&a, SessionState::Finished);
        assert!(table.admit("t", 2).is_some(), "capacity released");
        let stats = table.stats();
        assert_eq!(stats.peak_active, 2);
        assert_eq!(stats.started, 3);
    }

    #[test]
    fn stream_gauge_tracks_peak() {
        let table = SessionTable::new();
        {
            let _a = table.stream_guard();
            let _b = table.stream_guard();
            assert_eq!(table.stats().active_streams, 2);
        }
        let stats = table.stats();
        assert_eq!(stats.active_streams, 0);
        assert_eq!(stats.peak_streams, 2);
    }
}
