//! The multi-tenant session table: one entry per campaign run over the
//! wire.
//!
//! A [`Session`] bridges the in-process observer seam to any number of
//! HTTP stream readers: the campaign's [`CampaignObserver`] pushes each
//! event — already encoded to its canonical wire line — into an
//! append-only [`EventLog`]; readers replay the log from index 0 and
//! block on a condvar for more, so a reader that connects late (or
//! reconnects) sees exactly the same byte sequence as one that was
//! there from the start. The log closes when the campaign thread
//! finishes, which is what ends the streams.
//!
//! [`CampaignObserver`]: picbench_core::CampaignObserver

use picbench_core::CancelToken;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// The campaign is still evaluating.
    Running,
    /// The campaign ran to completion.
    Finished,
    /// The campaign was cut short by cooperative cancellation.
    Cancelled,
    /// The campaign thread panicked (a bug, surfaced rather than hung).
    Failed,
}

impl SessionState {
    /// The wire token served in status responses.
    pub fn token(self) -> &'static str {
        match self {
            SessionState::Running => "running",
            SessionState::Finished => "finished",
            SessionState::Cancelled => "cancelled",
            SessionState::Failed => "failed",
        }
    }
}

#[derive(Default)]
struct LogInner {
    lines: Vec<Arc<str>>,
    closed: bool,
}

/// An append-only, multi-reader log of encoded event lines.
#[derive(Default)]
pub struct EventLog {
    inner: Mutex<LogInner>,
    grew: Condvar,
}

impl EventLog {
    /// Appends one encoded line (no trailing newline) and wakes readers.
    pub fn push(&self, line: String) {
        let mut inner = self.inner.lock().expect("event log poisoned");
        inner.lines.push(Arc::from(line));
        self.grew.notify_all();
    }

    /// Closes the log: readers drain what remains and stop.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("event log poisoned");
        inner.closed = true;
        self.grew.notify_all();
    }

    /// Lines currently in the log.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event log poisoned").lines.len()
    }

    /// Whether the log holds no lines yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the lines from `from` on, blocking until at least one is
    /// available or the log closes. `None` means closed-and-drained —
    /// the reader's stream is complete.
    pub fn wait_from(&self, from: usize) -> Option<Vec<Arc<str>>> {
        let mut inner = self.inner.lock().expect("event log poisoned");
        loop {
            if inner.lines.len() > from {
                return Some(inner.lines[from..].to_vec());
            }
            if inner.closed {
                return None;
            }
            inner = self.grew.wait(inner).expect("event log poisoned");
        }
    }

    /// A snapshot of every line currently in the log (non-blocking).
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.inner.lock().expect("event log poisoned").lines.clone()
    }
}

/// One campaign run over the wire.
pub struct Session {
    /// Server-assigned session id (`c-N`).
    pub id: String,
    /// The tenant that owns it; other tenants cannot see it at all.
    pub tenant: String,
    /// The cooperative cancellation switch `DELETE` flips.
    pub cancel: CancelToken,
    /// The encoded event stream, replayable from the start.
    pub log: EventLog,
    state: Mutex<SessionState>,
    cells_total: AtomicUsize,
    cells_completed: AtomicUsize,
}

impl Session {
    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        *self.state.lock().expect("session state poisoned")
    }

    /// Records the matrix size once it is known.
    pub fn set_cells_total(&self, total: usize) {
        self.cells_total.store(total, Ordering::Relaxed);
    }

    /// Bumps the completed-cell gauge (observer-side).
    pub fn note_cell_completed(&self, completed: usize) {
        self.cells_completed.store(completed, Ordering::Relaxed);
    }

    /// `(completed, total)` cell progress.
    pub fn progress(&self) -> (usize, usize) {
        (
            self.cells_completed.load(Ordering::Relaxed),
            self.cells_total.load(Ordering::Relaxed),
        )
    }

    fn transition(&self, to: SessionState) {
        *self.state.lock().expect("session state poisoned") = to;
    }
}

/// Counter snapshot of a [`SessionTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions whose campaign thread is still running.
    pub active: usize,
    /// High-water mark of `active`.
    pub peak_active: usize,
    /// Event streams currently being served.
    pub active_streams: usize,
    /// High-water mark of `active_streams` — the measured
    /// concurrent-streaming-session ceiling.
    pub peak_streams: usize,
    /// Sessions ever admitted.
    pub started: u64,
    /// Sessions that ran to completion.
    pub finished: u64,
    /// Sessions cut short by cancellation.
    pub cancelled: u64,
}

/// The process-wide registry of sessions, plus its gauges.
#[derive(Default)]
pub struct SessionTable {
    sessions: Mutex<HashMap<String, Arc<Session>>>,
    runners: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
    active: AtomicUsize,
    peak_active: AtomicUsize,
    active_streams: AtomicUsize,
    peak_streams: AtomicUsize,
    started: AtomicU64,
    finished: AtomicU64,
    cancelled: AtomicU64,
}

fn bump_peak(gauge: &AtomicUsize, peak: &AtomicUsize) {
    let now = gauge.fetch_add(1, Ordering::AcqRel) + 1;
    peak.fetch_max(now, Ordering::AcqRel);
}

impl SessionTable {
    /// An empty table.
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// Admits a new session for `tenant`, unless `max_active` running
    /// sessions already exist (`None` = at capacity; the server answers
    /// 429).
    pub fn admit(&self, tenant: &str, max_active: usize) -> Option<Arc<Session>> {
        let mut sessions = self.sessions.lock().expect("session table poisoned");
        if self.active.load(Ordering::Acquire) >= max_active {
            return None;
        }
        let id = format!("c-{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let session = Arc::new(Session {
            id: id.clone(),
            tenant: tenant.to_string(),
            cancel: CancelToken::new(),
            log: EventLog::default(),
            state: Mutex::new(SessionState::Running),
            cells_total: AtomicUsize::new(0),
            cells_completed: AtomicUsize::new(0),
        });
        sessions.insert(id, Arc::clone(&session));
        bump_peak(&self.active, &self.peak_active);
        self.started.fetch_add(1, Ordering::Relaxed);
        Some(session)
    }

    /// Registers the session's campaign thread so shutdown can drain it.
    pub fn track_runner(&self, handle: JoinHandle<()>) {
        self.runners
            .lock()
            .expect("session runners poisoned")
            .push(handle);
    }

    /// Looks a session up *within* a tenant: sessions of other tenants
    /// are indistinguishable from absent ones by construction.
    pub fn get(&self, tenant: &str, id: &str) -> Option<Arc<Session>> {
        let sessions = self.sessions.lock().expect("session table poisoned");
        sessions.get(id).filter(|s| s.tenant == tenant).cloned()
    }

    /// Marks a session's campaign finished (called by its runner thread
    /// as its last act before the log closes).
    pub fn finish(&self, session: &Session, state: SessionState) {
        session.transition(state);
        self.active.fetch_sub(1, Ordering::AcqRel);
        match state {
            SessionState::Cancelled => self.cancelled.fetch_add(1, Ordering::Relaxed),
            _ => self.finished.fetch_add(1, Ordering::Relaxed),
        };
        session.log.close();
    }

    /// Accounts an event stream for the session's lifetime; hold the
    /// guard while serving.
    pub fn stream_guard(&self) -> StreamGuard<'_> {
        bump_peak(&self.active_streams, &self.peak_streams);
        StreamGuard { table: self }
    }

    /// Counter snapshot (atomic loads, no lock-the-world).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            active: self.active.load(Ordering::Relaxed),
            peak_active: self.peak_active.load(Ordering::Relaxed),
            active_streams: self.active_streams.load(Ordering::Relaxed),
            peak_streams: self.peak_streams.load(Ordering::Relaxed),
            started: self.started.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Joins every campaign thread (graceful-shutdown drain). In-flight
    /// campaigns run to completion; their logs close, which ends their
    /// streams.
    pub fn drain(&self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut runners = self.runners.lock().expect("session runners poisoned");
            runners.drain(..).collect()
        };
        for handle in handles {
            // A panicked runner already transitioned its session to
            // Failed; the drain still completes.
            let _ = handle.join();
        }
    }
}

/// RAII guard accounting one live event stream.
pub struct StreamGuard<'a> {
    table: &'a SessionTable,
}

impl Drop for StreamGuard<'_> {
    fn drop(&mut self) {
        self.table.active_streams.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_replays_identically_for_late_readers() {
        let log = EventLog::default();
        log.push("a".into());
        log.push("b".into());
        let early = log.wait_from(0).unwrap();
        log.push("c".into());
        log.close();
        let late = log.snapshot();
        assert_eq!(early.len(), 2);
        assert_eq!(late.len(), 3);
        assert_eq!(&*late[0], "a");
        assert_eq!(log.wait_from(3), None, "closed and drained");
    }

    #[test]
    fn wait_from_blocks_until_growth() {
        let log = Arc::new(EventLog::default());
        let writer = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                log.push("x".into());
                log.close();
            })
        };
        assert_eq!(log.wait_from(0).unwrap().len(), 1);
        assert!(log.wait_from(1).is_none());
        writer.join().unwrap();
    }

    #[test]
    fn tenancy_is_structural() {
        let table = SessionTable::new();
        let session = table.admit("alice", 8).unwrap();
        assert!(table.get("alice", &session.id).is_some());
        assert!(table.get("bob", &session.id).is_none());
        assert!(table.get("alice", "c-999").is_none());
    }

    #[test]
    fn capacity_is_enforced_and_released() {
        let table = SessionTable::new();
        let a = table.admit("t", 2).unwrap();
        let _b = table.admit("t", 2).unwrap();
        assert!(table.admit("t", 2).is_none(), "at capacity");
        table.finish(&a, SessionState::Finished);
        assert!(table.admit("t", 2).is_some(), "capacity released");
        let stats = table.stats();
        assert_eq!(stats.peak_active, 2);
        assert_eq!(stats.started, 3);
    }

    #[test]
    fn stream_gauge_tracks_peak() {
        let table = SessionTable::new();
        {
            let _a = table.stream_guard();
            let _b = table.stream_guard();
            assert_eq!(table.stats().active_streams, 2);
        }
        let stats = table.stats();
        assert_eq!(stats.active_streams, 0);
        assert_eq!(stats.peak_streams, 2);
    }
}
