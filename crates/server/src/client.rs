//! A small blocking HTTP client for the benchmark service.
//!
//! Deliberately dependency-free and deliberately *not* general: it
//! speaks exactly the dialect the server serves (one request per
//! connection, sized JSON responses, close-delimited NDJSON streams).
//! The load generator and the integration tests both drive the server
//! through it, so what CI measures is the same path a real client
//! takes.

use picbench_netlist::json::{self, Value};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A buffered (non-streaming) HTTP response.
#[derive(Debug)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// The response body, decoded as UTF-8.
    pub body: String,
}

impl ApiResponse {
    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error message when the body is not JSON.
    pub fn json(&self) -> Result<Value, String> {
        json::parse(&self.body).map_err(|e| e.to_string())
    }
}

/// A live NDJSON event stream (`GET /v1/campaigns/{id}/events`).
#[derive(Debug)]
pub struct EventStream {
    /// HTTP status of the stream response (200 for an actual stream).
    pub status: u16,
    reader: BufReader<TcpStream>,
}

impl EventStream {
    /// Blocks for the next event line. `None` means the server closed
    /// the stream — the campaign finished (or was cancelled and drained).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn next_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Drains the stream to completion, collecting every line.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn collect_lines(mut self) -> io::Result<Vec<String>> {
        let mut lines = Vec::new();
        while let Some(line) = self.next_line()? {
            lines.push(line);
        }
        Ok(lines)
    }
}

/// Bounded-retry policy for *idempotent* requests: transient
/// connect/reset failures on `GET`s (including stream opens) are
/// retried with seeded exponential backoff, so a server restart or a
/// refused connection during bring-up does not fail the whole load run.
/// Non-idempotent methods (`POST`, `DELETE`) are never retried — a
/// campaign submission that timed out may still have been admitted.
#[derive(Debug, Clone)]
pub struct ClientRetry {
    /// Total attempts per idempotent request (first try included).
    pub max_attempts: u32,
    /// First backoff; doubles per retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Jitter seed — same seed, same backoff schedule.
    pub seed: u64,
}

impl Default for ClientRetry {
    fn default() -> Self {
        ClientRetry {
            max_attempts: 3,
            base_backoff_ms: 25,
            max_backoff_ms: 400,
            seed: picbench_synthllm::PAPER_SEED,
        }
    }
}

/// Connection-level failures worth a retry; anything else (including
/// every HTTP status — a 4xx/5xx is an *answer*, not a transport
/// failure) surfaces immediately.
fn transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

/// A blocking client bound to one server address and one tenant.
#[derive(Debug, Clone)]
pub struct ApiClient {
    addr: SocketAddr,
    tenant: Option<String>,
    retry: ClientRetry,
    jitter: Arc<AtomicU64>,
    retries: Arc<AtomicU64>,
}

impl ApiClient {
    /// A client for the server at `addr` (default tenant).
    pub fn new(addr: SocketAddr) -> Self {
        let retry = ClientRetry::default();
        let jitter = Arc::new(AtomicU64::new(retry.seed | 1));
        ApiClient {
            addr,
            tenant: None,
            retry,
            jitter,
            retries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Scopes every request to `tenant` (the `x-picbench-tenant`
    /// header).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Replaces the idempotent-request retry policy.
    pub fn with_retry(mut self, retry: ClientRetry) -> Self {
        self.jitter = Arc::new(AtomicU64::new(retry.seed | 1));
        self.retry = retry;
        self
    }

    /// Transient-failure retries performed so far, across this client
    /// and its clones.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn backoff_ms(&self, attempt: u32) -> u64 {
        let exp = self
            .retry
            .base_backoff_ms
            .checked_shl(attempt.saturating_sub(1).min(16))
            .unwrap_or(u64::MAX)
            .min(self.retry.max_backoff_ms)
            .max(1);
        let draw = self
            .jitter
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |x| {
                Some(picbench_store::xorshift64(x))
            })
            .unwrap_or(1);
        // ±25% deterministic jitter around the exponential step.
        let spread = exp / 2;
        exp - exp / 4 + if spread > 0 { draw % spread } else { 0 }
    }

    /// Runs an idempotent operation under the retry policy.
    fn with_retries<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 1u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) if transient(e.kind()) && attempt < self.retry.max_attempts.max(1) => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(self.backoff_ms(attempt)));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn connect_and_send(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<TcpStream> {
        let mut stream = TcpStream::connect(self.addr)?;
        let mut head =
            format!("{method} {path} HTTP/1.1\r\nHost: picbench\r\nConnection: close\r\n");
        if let Some(tenant) = &self.tenant {
            head.push_str(&format!("x-picbench-tenant: {tenant}\r\n"));
        }
        match body {
            Some(body) => head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )),
            None => head.push_str("\r\n"),
        }
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(stream)
    }

    fn read_head(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, Vec<(String, String)>)> {
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        Ok((status, headers))
    }

    fn request_once(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ApiResponse> {
        let stream = self.connect_and_send(method, path, body)?;
        let mut reader = BufReader::new(stream);
        let (status, headers) = Self::read_head(&mut reader)?;
        let mut body = Vec::new();
        match headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
        {
            Some(len) => {
                body.resize(len, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
        Ok(ApiResponse {
            status,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }

    /// Sends one request and buffers the whole response. `GET`s retry
    /// transient connect/reset failures under [`ClientRetry`]; other
    /// methods get exactly one attempt (a lost response does not prove
    /// the request was not applied).
    ///
    /// # Errors
    ///
    /// Propagates transport failures (after retries, for `GET`s).
    pub fn request(&self, method: &str, path: &str, body: Option<&str>) -> io::Result<ApiResponse> {
        if method == "GET" {
            self.with_retries(|| self.request_once(method, path, body))
        } else {
            self.request_once(method, path, body)
        }
    }

    /// Opens an event stream; the caller reads lines until `None`.
    /// Opening is idempotent (the stream replays from the start), so
    /// transient failures are retried under [`ClientRetry`].
    ///
    /// # Errors
    ///
    /// Propagates transport failures after retries.
    pub fn open_stream(&self, path: &str) -> io::Result<EventStream> {
        self.with_retries(|| {
            let stream = self.connect_and_send("GET", path, None)?;
            let mut reader = BufReader::new(stream);
            let (status, _headers) = Self::read_head(&mut reader)?;
            Ok(EventStream { status, reader })
        })
    }
}
