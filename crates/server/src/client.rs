//! A small blocking HTTP client for the benchmark service.
//!
//! Deliberately dependency-free and deliberately *not* general: it
//! speaks exactly the dialect the server serves (one request per
//! connection, sized JSON responses, close-delimited NDJSON streams).
//! The load generator and the integration tests both drive the server
//! through it, so what CI measures is the same path a real client
//! takes.

use picbench_netlist::json::{self, Value};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A buffered (non-streaming) HTTP response.
#[derive(Debug)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// The response body, decoded as UTF-8.
    pub body: String,
}

impl ApiResponse {
    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error message when the body is not JSON.
    pub fn json(&self) -> Result<Value, String> {
        json::parse(&self.body).map_err(|e| e.to_string())
    }
}

/// A live NDJSON event stream (`GET /v1/campaigns/{id}/events`).
#[derive(Debug)]
pub struct EventStream {
    /// HTTP status of the stream response (200 for an actual stream).
    pub status: u16,
    reader: BufReader<TcpStream>,
}

impl EventStream {
    /// Blocks for the next event line. `None` means the server closed
    /// the stream — the campaign finished (or was cancelled and drained).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn next_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Drains the stream to completion, collecting every line.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn collect_lines(mut self) -> io::Result<Vec<String>> {
        let mut lines = Vec::new();
        while let Some(line) = self.next_line()? {
            lines.push(line);
        }
        Ok(lines)
    }
}

/// A blocking client bound to one server address and one tenant.
#[derive(Debug, Clone)]
pub struct ApiClient {
    addr: SocketAddr,
    tenant: Option<String>,
}

impl ApiClient {
    /// A client for the server at `addr` (default tenant).
    pub fn new(addr: SocketAddr) -> Self {
        ApiClient { addr, tenant: None }
    }

    /// Scopes every request to `tenant` (the `x-picbench-tenant`
    /// header).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    fn connect_and_send(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<TcpStream> {
        let mut stream = TcpStream::connect(self.addr)?;
        let mut head =
            format!("{method} {path} HTTP/1.1\r\nHost: picbench\r\nConnection: close\r\n");
        if let Some(tenant) = &self.tenant {
            head.push_str(&format!("x-picbench-tenant: {tenant}\r\n"));
        }
        match body {
            Some(body) => head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )),
            None => head.push_str("\r\n"),
        }
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(stream)
    }

    fn read_head(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, Vec<(String, String)>)> {
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        Ok((status, headers))
    }

    /// Sends one request and buffers the whole response.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn request(&self, method: &str, path: &str, body: Option<&str>) -> io::Result<ApiResponse> {
        let stream = self.connect_and_send(method, path, body)?;
        let mut reader = BufReader::new(stream);
        let (status, headers) = Self::read_head(&mut reader)?;
        let mut body = Vec::new();
        match headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
        {
            Some(len) => {
                body.resize(len, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
        Ok(ApiResponse {
            status,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }

    /// Opens an event stream; the caller reads lines until `None`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn open_stream(&self, path: &str) -> io::Result<EventStream> {
        let stream = self.connect_and_send("GET", path, None)?;
        let mut reader = BufReader::new(stream);
        let (status, _headers) = Self::read_head(&mut reader)?;
        Ok(EventStream { status, reader })
    }
}
