//! Benchmark-as-a-service: the PICBench campaign engine behind a
//! dependency-free HTTP/1.1 API.
//!
//! The crate turns the in-process session seams — typed
//! [`Campaign`](picbench_core::Campaign) construction, the
//! [`CampaignObserver`](picbench_core::CampaignObserver) event stream,
//! cooperative [`CancelToken`](picbench_core::CancelToken)
//! cancellation, and the shared
//! [`EvalCache`](picbench_core::EvalCache) — into a long-running
//! multi-tenant service:
//!
//! - [`server`] — the [`PicbenchServer`] itself: bounded worker pool
//!   over `std::net::TcpListener`, typed routes, graceful shutdown.
//! - [`wire`] — the canonical NDJSON encoding of
//!   [`CampaignEvent`](picbench_core::CampaignEvent)s. Deterministic,
//!   exactly invertible: server streams are byte-identical to the
//!   in-process observer sequence.
//! - [`session`] — the multi-tenant session table: append-only
//!   replayable event logs, structural tenant isolation, stream and
//!   capacity gauges.
//! - [`http`] — the minimal HTTP layer (sized request bodies,
//!   close-delimited streaming responses).
//! - [`client`] — a small blocking client; the load generator and the
//!   integration tests drive the server through it.
//! - [`pace`] — a response-pacing provider decorator, for holding many
//!   sessions open without perturbing results.
//!
//! Everything is `std`-only: no async runtime, no HTTP framework, no
//! new dependencies.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod pace;
pub mod server;
pub mod session;
pub mod wire;

pub use client::{ApiClient, ApiResponse, ClientRetry, EventStream};
pub use pace::PacedProvider;
pub use server::{PicbenchServer, ServerConfig, ServerHandle};
pub use session::{SessionState, SessionStats};
pub use wire::{decode_event, encode_event, WireError};
