//! A minimal, dependency-free HTTP/1.1 layer over `std::net`.
//!
//! Exactly what the benchmark service needs and nothing more: one
//! request per connection (`Connection: close` on every response),
//! `Content-Length` bodies on requests, and either sized or
//! close-delimited bodies on responses. Close-delimited responses are
//! what make long-lived NDJSON streams trivial — the server writes a
//! line per event and flushes; the client reads lines until EOF. A
//! cancelled or failed campaign still yields a *well-formed partial
//! stream*, because every write is a whole line.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Upper bound on request bodies (problem sets are a few hundred KiB at
/// most; anything bigger is a client error, not a workload).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request path, query string excluded.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed (mapped to a 4xx by the server).
#[derive(Debug)]
pub enum RequestError {
    /// The connection closed before a full request arrived.
    ConnectionClosed,
    /// The bytes on the wire were not an HTTP/1.1 request.
    Malformed(&'static str),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// The client stalled past the socket read deadline mid-request —
    /// mapped to a 408 so the worker thread is freed instead of held
    /// hostage by a half-sent request.
    TimedOut,
    /// Transport failure mid-request.
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        if matches!(
            e.kind(),
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        ) {
            RequestError::TimedOut
        } else {
            RequestError::Io(e)
        }
    }
}

/// Reads one request off the stream.
///
/// # Errors
///
/// Returns [`RequestError::ConnectionClosed`] on a clean EOF before any
/// bytes, [`RequestError::Malformed`]/[`RequestError::BodyTooLarge`]
/// for protocol violations, and [`RequestError::Io`] for transport
/// failures.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let mut head = Vec::new();
    // Read byte-wise until the blank line; requests are tiny and the
    // BufReader makes this one syscall per chunk, not per byte.
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Err(RequestError::ConnectionClosed);
                }
                return Err(RequestError::Malformed("truncated request head"));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(e.into()),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(RequestError::Malformed("request head too large"));
        }
    }
    let head = std::str::from_utf8(&head[..head.len() - 4])
        .map_err(|_| RequestError::Malformed("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(RequestError::Malformed("missing method"))?;
    let target = parts
        .next()
        .ok_or(RequestError::Malformed("missing request target"))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(RequestError::Malformed("unsupported protocol version")),
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(RequestError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| RequestError::Malformed("unparseable content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if matches!(
            e.kind(),
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        ) {
            RequestError::TimedOut
        } else {
            RequestError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "body shorter than content-length",
            ))
        }
    })?;

    Ok(Request {
        method: method.to_string(),
        path,
        headers,
        body,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a sized JSON response (and `Connection: close`).
///
/// # Errors
///
/// Propagates transport failures — callers treat them as "client went
/// away".
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    stream.flush()
}

/// Writes a JSON error body `{"error": …}` with the given status.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_error(stream: &mut TcpStream, status: u16, message: &str) -> io::Result<()> {
    let body = picbench_netlist::json::to_string(&picbench_netlist::json::Value::Object(vec![(
        "error".to_string(),
        picbench_netlist::json::Value::String(message.to_string()),
    )]));
    write_json(stream, status, &body)
}

/// Starts a close-delimited NDJSON stream: status line and headers
/// only — the caller then writes newline-terminated event lines and
/// the stream ends when the connection closes.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_stream_head(stream: &mut TcpStream) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}
