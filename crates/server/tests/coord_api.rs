//! Contracts of the server's coordination surface and its transport
//! robustness seams:
//!
//! * `POST /v1/coord/{op}` serves the full lease/append/cells/state
//!   protocol over real sockets, with append dedup intact;
//! * a client that stalls mid-request gets a 408 and — crucially — its
//!   worker thread is freed for the next request;
//! * [`ApiClient`] retries transient connect failures on idempotent
//!   requests only, with a bounded, seeded backoff schedule;
//! * a whole sharded campaign whose workers journal over HTTP merges
//!   bit-identical to the single-process engine;
//! * a coordinator (server) restart mid-campaign loses no journalled
//!   state: replays dedup, new appends continue.

use picbench_coord::{
    AppendOutcome, AppendRequest, CoordClient, HttpTransport, RecordMsg, RemoteJournal,
};
use picbench_core::{
    run_shard_worker_with, Campaign, CampaignConfig, CampaignReport, LeaseAdvance, LeaseRecord,
    ProblemTally, ShardLauncher, ShardWorkerConfig, ShardWorkerHandle, ShardWorkload,
    WorkerRequest, WorkerState,
};
use picbench_problems::Problem;
use picbench_server::{ApiClient, ClientRetry, PicbenchServer, ServerConfig, ServerHandle};
use picbench_sim::WavelengthGrid;
use picbench_store::xorshift64;
use picbench_synthllm::{ModelProfile, RetryPolicy};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "picbench-server-coord-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn coord_server(root: &Path) -> ServerHandle {
    PicbenchServer::start(ServerConfig {
        coord_root: Some(root.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("server starts")
}

/// A worker-grade client policy: enough retries to ride out transient
/// socket weather, short sleeps so tests stay fast.
fn wire_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_backoff_ms: 10,
        max_backoff_ms: 60,
        budget_ms: 4_000,
        seed,
        sleep: true,
    }
}

fn coord_client(addr: SocketAddr, seed: u64) -> CoordClient {
    CoordClient::with_policy(
        Arc::new(HttpTransport::new(addr, Duration::from_secs(2))),
        wire_policy(seed),
    )
}

const FP: u64 = 0x5eed_c0de_0000_0077;

fn tally(n: usize) -> ProblemTally {
    ProblemTally {
        n,
        syntax_passes: n / 2,
        functional_passes: n / 3,
    }
}

fn cell_batch(seq: u64, cell: u64) -> AppendRequest {
    AppendRequest {
        fingerprint: FP,
        shard: 0,
        generation: 0,
        seq,
        sync: true,
        records: vec![RecordMsg::Cell {
            cell,
            tally: tally(cell as usize),
        }],
    }
}

#[test]
fn coord_routes_serve_the_protocol_with_dedup_over_real_sockets() {
    let dir = temp_dir("routes");
    let server = coord_server(&dir);
    let client = coord_client(server.addr(), 1);

    let lease = LeaseRecord {
        generation: 0,
        worker: 21,
        seq: 0,
        stamp_ms: 1,
    };
    assert_eq!(client.advance_lease(FP, 0, &lease), LeaseAdvance::Claimed);
    assert_eq!(client.append(&cell_batch(0, 9)), AppendOutcome::Applied);
    // A duplicated delivery of the same batch — the wire answer is
    // `duplicate`, and the journal does not double-count.
    assert_eq!(client.append(&cell_batch(0, 9)), AppendOutcome::Duplicate);
    assert_eq!(client.append(&cell_batch(1, 10)), AppendOutcome::Applied);
    let mut cells = client.fetch_cells(FP, 0, 0).expect("cells over http");
    cells.sort_unstable_by_key(|(key, _)| *key);
    assert_eq!(cells, vec![(9, tally(9)), (10, tally(10))]);
    let state = client.fetch_state(FP).expect("state over http");
    assert_eq!(state.cells.len(), 2);
    assert_eq!(state.counters.duplicates, 1);

    // Unknown ops 404 without taking the connection down.
    let api = ApiClient::new(server.addr());
    let reply = api
        .request("POST", "/v1/coord/bogus", Some("{}"))
        .expect("reply");
    assert_eq!(reply.status, 404);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coord_routes_404_when_coordination_is_not_enabled() {
    let server = PicbenchServer::start(ServerConfig::default()).expect("server starts");
    let api = ApiClient::new(server.addr());
    let reply = api
        .request("POST", "/v1/coord/lease", Some("{}"))
        .expect("reply");
    assert_eq!(reply.status, 404);
    assert!(reply.body.contains("not enabled"), "body: {}", reply.body);
    server.shutdown();
}

/// A stalled request must not pin a worker forever: with a single
/// worker thread and a 200 ms read deadline, a client that connects and
/// then goes silent gets a 408 — and the *next* request (which had to
/// wait for that same worker) still succeeds.
#[test]
fn stalled_request_gets_408_and_frees_the_worker() {
    let server = PicbenchServer::start(ServerConfig {
        workers: 1,
        read_timeout_ms: 200,
        ..ServerConfig::default()
    })
    .expect("server starts");

    // Stall 1: connect and send nothing at all.
    let mut silent = TcpStream::connect(server.addr()).expect("connect");
    // Stall 2: a request head that declares a body which never comes.
    let mut bodyless = TcpStream::connect(server.addr()).expect("connect");
    bodyless
        .write_all(b"POST /v1/coord/lease HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n")
        .expect("head sent");
    bodyless.flush().expect("flush");

    let read_all = |stream: &mut TcpStream| {
        let mut buf = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("deadline");
        let _ = stream.read_to_string(&mut buf);
        buf
    };
    let silent_reply = read_all(&mut silent);
    assert!(
        silent_reply.starts_with("HTTP/1.1 408"),
        "stalled head should 408, got: {silent_reply:?}"
    );
    let bodyless_reply = read_all(&mut bodyless);
    assert!(
        bodyless_reply.starts_with("HTTP/1.1 408"),
        "stalled body should 408, got: {bodyless_reply:?}"
    );

    // The lone worker survived both stalls and serves real traffic.
    let api = ApiClient::new(server.addr());
    let reply = api.request("GET", "/v1/stats", None).expect("stats");
    assert_eq!(reply.status, 200);

    server.shutdown();
}

#[test]
fn idempotent_requests_retry_transient_failures_and_mutations_do_not() {
    // A port with nothing behind it: bind, learn the address, drop.
    let vacant = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = vacant.local_addr().expect("addr");
    drop(vacant);

    let client = ApiClient::new(addr).with_retry(ClientRetry {
        max_attempts: 3,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        seed: 9,
    });
    let err = client
        .request("GET", "/v1/stats", None)
        .expect_err("nothing is listening");
    assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    assert_eq!(
        client.retries(),
        2,
        "a GET burns the full retry budget before surfacing"
    );

    let err = client
        .request("POST", "/v1/campaigns", Some("{}"))
        .expect_err("nothing is listening");
    assert!(err.kind() == io::ErrorKind::ConnectionRefused);
    assert_eq!(
        client.retries(),
        2,
        "a POST is not idempotent and must not retry"
    );

    let err = client
        .open_stream("/v1/campaigns/c-1/events")
        .expect_err("nothing is listening");
    assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    assert_eq!(client.retries(), 4, "stream opens retry like GETs");

    // Against a live server the same client needs no retries at all.
    let server = PicbenchServer::start(ServerConfig::default()).expect("server starts");
    let live = ApiClient::new(server.addr());
    assert_eq!(
        live.request("GET", "/v1/stats", None)
            .expect("stats")
            .status,
        200
    );
    assert_eq!(live.retries(), 0);
    server.shutdown();
}

// ---- full remote campaign over real HTTP --------------------------------

fn problems() -> Vec<Problem> {
    ["mzi-ps", "mzm"]
        .iter()
        .map(|id| picbench_problems::find(id).unwrap())
        .collect()
}

fn profiles() -> Vec<ModelProfile> {
    vec![ModelProfile::gpt4(), ModelProfile::claude35_sonnet()]
}

fn config() -> CampaignConfig {
    CampaignConfig {
        samples_per_problem: 2,
        k_values: vec![1, 2],
        feedback_iters: vec![0, 1],
        restrictions: false,
        seed: 77,
        grid: WavelengthGrid::paper_fast(),
        threads: 2,
        ..CampaignConfig::default()
    }
}

fn builder() -> picbench_core::CampaignBuilder {
    Campaign::builder()
        .problems(problems())
        .profiles(&profiles())
        .config(config())
}

fn control_report() -> CampaignReport {
    builder().build().unwrap().run()
}

/// A [`ShardLauncher`] whose workers are threads journalling over
/// *real* TCP into the server's `/v1/coord/*` routes — the production
/// remote stack with the process boundary swapped for a thread.
struct HttpRemoteLauncher {
    coord_addr: SocketAddr,
    next_worker: AtomicU64,
}

struct ThreadHandle {
    finished: Arc<AtomicBool>,
    clean: Arc<AtomicBool>,
}

impl ShardWorkerHandle for ThreadHandle {
    fn poll(&mut self) -> WorkerState {
        if self.finished.load(Ordering::Acquire) {
            WorkerState::Exited {
                clean: self.clean.load(Ordering::Acquire),
            }
        } else {
            WorkerState::Running
        }
    }

    fn kill(&mut self) {}
}

impl ShardLauncher for HttpRemoteLauncher {
    fn launch(
        &self,
        workload: &Arc<ShardWorkload>,
        request: &WorkerRequest,
    ) -> io::Result<Box<dyn ShardWorkerHandle>> {
        let seed = 0xface_0000 ^ (u64::from(request.shard) << 8) ^ u64::from(request.generation);
        let client = Arc::new(coord_client(self.coord_addr, seed));
        let journal = RemoteJournal::new(client, request.shard, request.generation);
        let config = ShardWorkerConfig {
            shard: request.shard,
            generation: request.generation,
            shards: request.shards,
            root: request.root.clone(),
            worker_id: xorshift64(
                self.next_worker.fetch_add(1, Ordering::Relaxed) ^ 0x0fed_cba9_8765_4321,
            ),
            stall: request.stall,
        };
        let workload = Arc::clone(workload);
        let finished = Arc::new(AtomicBool::new(false));
        let clean = Arc::new(AtomicBool::new(false));
        let handle = ThreadHandle {
            finished: Arc::clone(&finished),
            clean: Arc::clone(&clean),
        };
        std::thread::spawn(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_shard_worker_with(&workload, &config, &journal)
            }));
            if let Ok(Ok(report)) = outcome {
                clean.store(report.completed, Ordering::Release);
            }
            finished.store(true, Ordering::Release);
        });
        Ok(Box::new(handle))
    }
}

#[test]
fn remote_campaign_over_real_http_is_bit_identical() {
    let control = control_report();
    let dir = temp_dir("campaign");
    let server = coord_server(&dir);
    let launcher = Arc::new(HttpRemoteLauncher {
        coord_addr: server.addr(),
        next_worker: AtomicU64::new(0),
    });
    let outcome = builder()
        .shards(2)
        .shard_dir(&dir)
        .shard_launcher(launcher)
        .build()
        .unwrap()
        .execute();
    assert!(!outcome.cancelled);
    let report = outcome.report.expect("remote campaign completes");
    assert!(
        report.same_results(&control),
        "HTTP-journalled report diverged from the single-process control"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A coordinator-server restart mid-campaign: the replacement process
/// (same journal root, new port) rebuilds the dedup set from the
/// journal, answers replays with `duplicate`, and carries the campaign
/// forward.
#[test]
fn coordinator_server_restart_resumes_without_losing_journalled_cells() {
    let dir = temp_dir("restart");
    {
        let server = coord_server(&dir);
        let client = coord_client(server.addr(), 5);
        let lease = LeaseRecord {
            generation: 0,
            worker: 31,
            seq: 0,
            stamp_ms: 1,
        };
        assert_eq!(client.advance_lease(FP, 0, &lease), LeaseAdvance::Claimed);
        assert_eq!(client.append(&cell_batch(0, 3)), AppendOutcome::Applied);
        assert_eq!(client.append(&cell_batch(1, 4)), AppendOutcome::Applied);
        server.shutdown();
    }

    let server = coord_server(&dir);
    let client = coord_client(server.addr(), 6);
    // An in-flight retry of batch 1 lands on the fresh process: still a
    // duplicate, because the applied markers were journalled durably.
    assert_eq!(client.append(&cell_batch(1, 4)), AppendOutcome::Duplicate);
    assert_eq!(client.append(&cell_batch(2, 5)), AppendOutcome::Applied);
    let renewed = LeaseRecord {
        generation: 0,
        worker: 31,
        seq: 7,
        stamp_ms: 2,
    };
    assert_eq!(client.advance_lease(FP, 0, &renewed), LeaseAdvance::Renewed);
    let mut cells = client.fetch_cells(FP, 0, 0).expect("cells readable");
    cells.sort_unstable_by_key(|(key, _)| *key);
    assert_eq!(cells, vec![(3, tally(3)), (4, tally(4)), (5, tally(5))]);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
