//! End-to-end drills of the benchmark service over real sockets.
//!
//! Every server binds port 0 and every store uses a unique temp
//! directory, so parallel `cargo test` runs never collide.

use picbench_core::{Campaign, CampaignEvent};
use picbench_server::client::ApiClient;
use picbench_server::server::{PicbenchServer, ServerConfig, ServerHandle};
use picbench_server::wire;
use picbench_synthllm::ModelProfile;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn start_default() -> ServerHandle {
    PicbenchServer::start(ServerConfig::default()).expect("server starts")
}

fn unique_temp_dir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "picbench-server-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

/// The canonical small submission used across these drills.
fn small_campaign_body(seed: u64) -> String {
    // Restrictions off and several samples so that some pass syntax and
    // run real simulations — that is what populates the shared cache
    // with re-servable entries.
    format!(
        r#"{{"problems": ["mzi-ps", "mzm"], "models": ["GPT-4"], "samples_per_problem": 8,
            "k_values": [1], "feedback_iters": [0, 1], "seed": {seed}, "restrictions": false}}"#
    )
}

fn submit(client: &ApiClient, body: &str) -> String {
    let response = client
        .request("POST", "/v1/campaigns", Some(body))
        .expect("submit");
    assert_eq!(response.status, 201, "unexpected: {}", response.body);
    response
        .json()
        .expect("json body")
        .get("id")
        .and_then(|v| v.as_str().map(String::from))
        .expect("campaign id")
}

fn stream_to_end(client: &ApiClient, id: &str) -> Vec<String> {
    let stream = client
        .open_stream(&format!("/v1/campaigns/{id}/events"))
        .expect("open stream");
    assert_eq!(stream.status, 200);
    stream.collect_lines().expect("drain stream")
}

/// The same campaign run in process, events captured through the same
/// wire encoding — the reference byte sequence a correct server must
/// reproduce.
fn in_process_reference(seed: u64) -> Vec<String> {
    let lines = Arc::new(Mutex::new(Vec::<String>::new()));
    let sink = Arc::clone(&lines);
    let campaign = Campaign::builder()
        .problem(picbench_problems::find("mzi-ps").unwrap())
        .problem(picbench_problems::find("mzm").unwrap())
        .profiles(&[ModelProfile::gpt4()])
        .samples_per_problem(8)
        .k_values([1])
        .feedback_iters([0, 1])
        .seed(seed)
        .restrictions(false)
        .threads(1)
        .observer(Arc::new(move |event: &CampaignEvent| {
            sink.lock().unwrap().push(wire::encode_event(event));
        }))
        .build()
        .unwrap();
    campaign.run();
    let captured = lines.lock().unwrap().clone();
    captured
}

#[test]
fn streamed_events_are_byte_identical_to_in_process_run() {
    let server = start_default();
    let client = ApiClient::new(server.addr());

    let id = submit(&client, &small_campaign_body(41));
    let streamed = stream_to_end(&client, &id);
    let reference = in_process_reference(41);
    assert_eq!(
        streamed, reference,
        "server stream must be byte-identical to the in-process observer sequence"
    );

    // Satellite: every streamed line round-trips through the codec.
    for line in &streamed {
        let event = wire::decode_event(line).expect("line decodes");
        assert_eq!(&wire::encode_event(&event), line);
    }

    // A late reader replays the identical byte sequence.
    assert_eq!(stream_to_end(&client, &id), reference);

    let status = client
        .request("GET", &format!("/v1/campaigns/{id}"), None)
        .unwrap();
    let status = status.json().unwrap();
    assert_eq!(
        status.get("state").and_then(|v| v.as_str()),
        Some("finished")
    );

    server.shutdown();
}

#[test]
fn custom_problem_sets_are_registered_and_runnable() {
    let server = start_default();
    let client = ApiClient::new(server.addr());

    let set_json = picbench_problems::problems_to_json(&[
        picbench_problems::find("mzi-ps").unwrap(),
        picbench_problems::find("mzm").unwrap(),
    ]);
    let created = client
        .request("POST", "/v1/problem-sets", Some(&set_json))
        .unwrap();
    assert_eq!(created.status, 201, "{}", created.body);
    let created = created.json().unwrap();
    let set_id = created
        .get("id")
        .and_then(|v| v.as_str())
        .unwrap()
        .to_string();
    assert_eq!(
        created
            .get("problems")
            .and_then(|v| v.as_array())
            .map(<[_]>::len),
        Some(2)
    );

    let body = format!(
        r#"{{"problem_set": "{set_id}", "models": ["GPT-4"], "samples_per_problem": 1,
            "k_values": [1], "feedback_iters": [0], "seed": 7}}"#
    );
    let id = submit(&client, &body);
    let lines = stream_to_end(&client, &id);
    let last = wire::decode_event(lines.last().unwrap()).unwrap();
    match last {
        CampaignEvent::CampaignFinished {
            cells_completed,
            cells_total,
            cancelled,
        } => {
            assert_eq!((cells_completed, cells_total, cancelled), (2, 2, false));
        }
        other => panic!("stream must end in campaign_finished, got {other:?}"),
    }

    // Validation failures are typed 400s, not sessions.
    for bad in [
        r#"{"problems": ["mzi-ps"], "models": ["no-such-model"]}"#,
        r#"{"problems": ["no-such-problem"], "models": ["GPT-4"]}"#,
        r#"{"problem_set": "ps-none", "models": ["GPT-4"]}"#,
        r#"{"models": ["GPT-4"]}"#,
        "not json",
    ] {
        let response = client.request("POST", "/v1/campaigns", Some(bad)).unwrap();
        assert_eq!(response.status, 400, "{bad} -> {}", response.body);
    }
    let missing = client.request("GET", "/v1/campaigns/c-999", None).unwrap();
    assert_eq!(missing.status, 404);
    let bad_route = client.request("GET", "/v1/nope", None).unwrap();
    assert_eq!(bad_route.status, 404);

    server.shutdown();
}

#[test]
fn cancellation_yields_a_well_formed_partial_stream() {
    let server = start_default();
    let client = ApiClient::new(server.addr());

    // Paced responses keep the campaign alive long enough to observe it
    // mid-flight; four cells so a cancel after the first leaves work
    // provably undone.
    let body = r#"{"problems": ["mzi-ps", "mzm"], "models": ["GPT-4"],
        "samples_per_problem": 2, "k_values": [1], "feedback_iters": [0, 1],
        "seed": 11, "pace_ms": 40}"#;
    let id = submit(&client, body);

    let mut stream = client
        .open_stream(&format!("/v1/campaigns/{id}/events"))
        .unwrap();
    let mut lines = Vec::new();
    // Read until the first cell completes, then cancel.
    loop {
        let line = stream.next_line().unwrap().expect("stream ended early");
        let is_cell_finished = matches!(
            wire::decode_event(&line).expect("well-formed line"),
            CampaignEvent::CellFinished { .. }
        );
        lines.push(line);
        if is_cell_finished {
            break;
        }
    }
    let cancelled = client
        .request("DELETE", &format!("/v1/campaigns/{id}"), None)
        .unwrap();
    assert_eq!(cancelled.status, 202);

    // Drain: the stream stays line-well-formed to its end.
    while let Some(line) = stream.next_line().unwrap() {
        lines.push(line);
    }
    let events: Vec<CampaignEvent> = lines
        .iter()
        .map(|l| wire::decode_event(l).expect("every line decodes"))
        .collect();
    match events.last().unwrap() {
        CampaignEvent::CampaignFinished {
            cells_completed,
            cells_total,
            cancelled,
        } => {
            assert!(*cancelled, "outcome must record the cancellation");
            assert!(
                cells_completed < cells_total,
                "cancel must land before the matrix finished ({cells_completed}/{cells_total})"
            );
        }
        other => panic!("partial stream must still end in campaign_finished, got {other:?}"),
    }

    let status = client
        .request("GET", &format!("/v1/campaigns/{id}"), None)
        .unwrap();
    assert_eq!(
        status.json().unwrap().get("state").and_then(|v| v.as_str()),
        Some("cancelled")
    );

    server.shutdown();
}

#[test]
fn tenants_share_the_cache_but_not_counters_or_sessions() {
    let server = start_default();
    let alice = ApiClient::new(server.addr()).with_tenant("alice");
    let bob = ApiClient::new(server.addr()).with_tenant("bob");

    let a_id = submit(&alice, &small_campaign_body(5));
    let a_lines = stream_to_end(&alice, &a_id);
    let b_id = submit(&bob, &small_campaign_body(5));
    let b_lines = stream_to_end(&bob, &b_id);

    // Identical submissions produce identical result streams; only the
    // cache-stats line may differ (bob's run is served from alice's
    // warmed cache, and each tenant sees only its own counters).
    let results_only = |lines: &[String]| -> Vec<String> {
        lines
            .iter()
            .filter(|l| {
                !matches!(
                    wire::decode_event(l).expect("line decodes"),
                    CampaignEvent::CacheStats(_)
                )
            })
            .cloned()
            .collect()
    };
    assert_eq!(results_only(&a_lines), results_only(&b_lines));

    let stats_of = |lines: &[String]| {
        lines
            .iter()
            .find_map(|l| match wire::decode_event(l).unwrap() {
                CampaignEvent::CacheStats(stats) => Some(stats),
                _ => None,
            })
            .expect("stream carries cache stats")
    };
    let a_stats = stats_of(&a_lines);
    let b_stats = stats_of(&b_lines);
    assert!(a_stats.misses > 0, "first tenant populates the cache");
    assert_eq!(b_stats.misses, 0, "identical rerun is fully cache-served");
    assert!(b_stats.response_hits > 0);

    // /v1/stats: per-tenant scopes partition the global counters.
    let stats = ApiClient::new(server.addr())
        .request("GET", "/v1/stats", None)
        .unwrap()
        .json()
        .unwrap();
    let counter = |v: &picbench_netlist::json::Value, path: &[&str]| -> u64 {
        let mut v = v.clone();
        for key in path {
            v = v
                .get(key)
                .cloned()
                .unwrap_or_else(|| panic!("missing {key}"));
        }
        v.as_f64().unwrap() as u64
    };
    for field in ["misses", "response_hits", "report_hits", "sim_hits"] {
        assert_eq!(
            counter(&stats, &["cache", field]),
            counter(&stats, &["tenants", "alice", field])
                + counter(&stats, &["tenants", "bob", field]),
            "global '{field}' must equal the sum over tenant scopes"
        );
    }
    assert_eq!(counter(&stats, &["sessions", "finished"]), 2);

    // Tenancy is structural: foreign sessions look absent.
    assert_eq!(
        bob.request("GET", &format!("/v1/campaigns/{a_id}"), None)
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        alice
            .request("DELETE", &format!("/v1/campaigns/{b_id}"), None)
            .unwrap()
            .status,
        404
    );

    server.shutdown();
}

#[test]
fn capacity_is_enforced_with_429() {
    let server = PicbenchServer::start(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let client = ApiClient::new(server.addr());

    let body = r#"{"problems": ["mzi-ps"], "models": ["GPT-4"], "samples_per_problem": 2,
        "k_values": [1], "feedback_iters": [0], "seed": 3, "pace_ms": 40}"#;
    let id = submit(&client, body);
    let refused = client.request("POST", "/v1/campaigns", Some(body)).unwrap();
    assert_eq!(refused.status, 429);

    client
        .request("DELETE", &format!("/v1/campaigns/{id}"), None)
        .unwrap();
    // Shutdown drains the cancelled session cleanly.
    server.shutdown();
}

#[test]
fn store_tier_counters_surface_in_stats() {
    let dir = unique_temp_dir("store");
    let server = PicbenchServer::start(ServerConfig {
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let client = ApiClient::new(server.addr());

    let id = submit(&client, &small_campaign_body(13));
    stream_to_end(&client, &id);

    let stats = client
        .request("GET", "/v1/stats", None)
        .unwrap()
        .json()
        .unwrap();
    let writes = stats
        .get("store")
        .and_then(|s| s.get("writes"))
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(writes > 0.0, "campaign evaluations must hit the disk tier");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_drains_inflight_sessions() {
    let server = start_default();
    let addr = server.addr();
    let client = ApiClient::new(addr);

    let body = r#"{"problems": ["mzi-ps"], "models": ["GPT-4"], "samples_per_problem": 2,
        "k_values": [1], "feedback_iters": [0], "seed": 23, "pace_ms": 10}"#;
    let id = submit(&client, body);
    // Open the stream before shutdown begins, then drain it from a
    // separate thread while the server winds down.
    let stream = client
        .open_stream(&format!("/v1/campaigns/{id}/events"))
        .unwrap();
    assert_eq!(stream.status, 200);
    let reader = std::thread::spawn(move || stream.collect_lines().unwrap());
    // Shutdown must wait for the campaign and its stream, not cut them.
    server.shutdown();
    let lines = reader.join().unwrap();
    let last = wire::decode_event(lines.last().unwrap()).unwrap();
    assert!(matches!(
        last,
        CampaignEvent::CampaignFinished {
            cancelled: false,
            ..
        }
    ));
}
