//! Property tests for the NDJSON event wire format: `decode_event` ∘
//! `encode_event` must be the identity over the *entire* event enum,
//! with counters drawn heavily from the corners where a float detour
//! would corrupt them — 0, 2⁵³ ± 1, `u64::MAX` — and strings that
//! exercise escaping.

use picbench_core::{
    CampaignEvent, EvalCacheStats, ProblemTally, ShardLossReason, TransportErrorKind,
};
use picbench_server::wire::{decode_event, encode_event};
use proptest::prelude::*;

/// Unsigned counters, weighted toward the f64-dangerous corners.
fn corner_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just((1u64 << 53) - 1),
        Just(1u64 << 53),
        Just((1u64 << 53) + 1), // first integer f64 cannot represent
        Just(u64::MAX - 1),
        Just(u64::MAX),
        any::<u64>(),
    ]
}

fn corner_usize() -> impl Strategy<Value = usize> {
    corner_u64().prop_map(|v| v as usize)
}

fn ident() -> impl Strategy<Value = String> {
    // Identifiers plus escape-worthy characters: quotes, backslashes,
    // control characters, non-ASCII.
    "[a-zA-Z0-9 _.,\\-\"\\\\\\n\\tµ→]{0,16}"
}

fn kind() -> impl Strategy<Value = TransportErrorKind> {
    prop_oneof![
        Just(TransportErrorKind::RateLimit),
        Just(TransportErrorKind::TransientIo),
        Just(TransportErrorKind::Timeout),
        Just(TransportErrorKind::Garbled),
        Just(TransportErrorKind::Fatal),
    ]
}

fn tally() -> impl Strategy<Value = ProblemTally> {
    (corner_usize(), corner_usize(), corner_usize()).prop_map(|(n, s, f)| ProblemTally {
        n,
        syntax_passes: s,
        functional_passes: f,
    })
}

fn loss_reason() -> impl Strategy<Value = ShardLossReason> {
    prop_oneof![
        Just(ShardLossReason::LeaseExpired),
        any::<bool>().prop_map(|clean| ShardLossReason::WorkerExited { clean }),
    ]
}

fn event() -> impl Strategy<Value = CampaignEvent> {
    prop_oneof![
        (corner_usize(), corner_usize(), corner_usize()).prop_map(
            |(problems, providers, cells)| {
                CampaignEvent::CampaignStarted {
                    problems,
                    providers,
                    cells,
                }
            }
        ),
        (ident(), ident(), corner_usize()).prop_map(|(problem_id, model, feedback_iters)| {
            CampaignEvent::CellStarted {
                problem_id,
                model,
                feedback_iters,
            }
        }),
        (
            ident(),
            ident(),
            corner_usize(),
            tally(),
            corner_usize(),
            corner_usize()
        )
            .prop_map(
                |(problem_id, model, feedback_iters, tally, completed, total)| {
                    CampaignEvent::CellFinished {
                        problem_id,
                        model,
                        feedback_iters,
                        tally,
                        completed,
                        total,
                    }
                }
            ),
        (
            ident(),
            ident(),
            corner_usize(),
            tally(),
            corner_usize(),
            corner_usize()
        )
            .prop_map(
                |(problem_id, model, feedback_iters, tally, completed, total)| {
                    CampaignEvent::CellRestored {
                        problem_id,
                        model,
                        feedback_iters,
                        tally,
                        completed,
                        total,
                    }
                }
            ),
        (
            ident(),
            ident(),
            corner_u64(),
            any::<u32>(),
            kind(),
            corner_u64()
        )
            .prop_map(|(model, problem_id, sample, attempt, kind, backoff_ms)| {
                CampaignEvent::SampleRetried {
                    model,
                    problem_id,
                    sample,
                    attempt,
                    kind,
                    backoff_ms,
                }
            }),
        (ident(), ident(), corner_u64(), any::<u32>(), kind()).prop_map(
            |(model, problem_id, sample, attempts, kind)| {
                CampaignEvent::SampleDegraded {
                    model,
                    problem_id,
                    sample,
                    attempts,
                    kind,
                }
            }
        ),
        corner_u64().prop_map(|write_errors| CampaignEvent::StoreDegraded { write_errors }),
        (any::<u32>(), any::<u32>(), corner_usize()).prop_map(|(shard, generation, cells)| {
            CampaignEvent::ShardStarted {
                shard,
                generation,
                cells,
            }
        }),
        (any::<u32>(), any::<u32>(), corner_u64(), corner_usize()).prop_map(
            |(shard, generation, seq, cells_done)| CampaignEvent::ShardHeartbeat {
                shard,
                generation,
                seq,
                cells_done,
            }
        ),
        (any::<u32>(), any::<u32>(), loss_reason(), corner_usize()).prop_map(
            |(shard, generation, reason, cells_done)| CampaignEvent::ShardLost {
                shard,
                generation,
                reason,
                cells_done,
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(shard, from_generation, to_generation)| CampaignEvent::ShardReassigned {
                shard,
                from_generation,
                to_generation,
            }
        ),
        (any::<u32>(), any::<u32>(), corner_usize(), corner_usize()).prop_map(
            |(shard, generation, cells, quarantined)| CampaignEvent::ShardMerged {
                shard,
                generation,
                cells,
                quarantined,
            }
        ),
        (
            corner_u64(),
            corner_u64(),
            corner_u64(),
            corner_u64(),
            corner_u64()
        )
            .prop_map(
                |(response_hits, report_hits, sim_hits, disk_hits, misses)| {
                    CampaignEvent::CacheStats(EvalCacheStats {
                        response_hits,
                        report_hits,
                        sim_hits,
                        disk_hits,
                        misses,
                    })
                }
            ),
        (corner_usize(), corner_usize(), any::<bool>()).prop_map(
            |(cells_completed, cells_total, cancelled)| CampaignEvent::CampaignFinished {
                cells_completed,
                cells_total,
                cancelled,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decode_inverts_encode_over_the_full_enum(ev in event()) {
        let line = encode_event(&ev);
        prop_assert!(!line.contains('\n'), "one line per event: {line}");
        let back = decode_event(&line)
            .unwrap_or_else(|e| panic!("decode failed for {line}: {e}"));
        prop_assert_eq!(back, ev);
    }

    #[test]
    fn encoding_is_deterministic(ev in event()) {
        prop_assert_eq!(encode_event(&ev), encode_event(&ev));
    }
}
