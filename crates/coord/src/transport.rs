//! How coord requests travel: a transport seam with a loopback
//! implementation (tests, in-process drills), a real HTTP client with
//! per-attempt deadlines, and a deterministic fault injector that makes
//! every network failure — drop, delay, duplicate, partition —
//! reproducible in-process, scheduled like a
//! [`ChaosPlan`](picbench_core::ChaosPlan).

use crate::coordinator::{CoordReply, Coordinator};
use picbench_store::xorshift64;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What came back from one coord call: status code plus JSON body (the
/// transport-level mirror of [`CoordReply`]).
pub type WireReply = CoordReply;

/// Carries one coord operation to the coordinator and returns its
/// reply. An `Err` is a *delivery* failure (connection refused, reset,
/// timed out) — the caller cannot know whether the coordinator applied
/// the request, which is exactly why the append protocol dedupes.
pub trait CoordTransport: Send + Sync {
    /// Delivers `op` (one of `lease` / `append` / `cells` / `state`)
    /// with a JSON `body`.
    ///
    /// # Errors
    ///
    /// IO errors for failed or interrupted deliveries.
    fn call(&self, op: &str, body: &str) -> io::Result<WireReply>;
}

// ---------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------

/// Calls a [`Coordinator`] in-process — no sockets, no serialization of
/// failure modes. The substrate the fault injector wraps in tests.
pub struct LoopbackTransport {
    coordinator: Arc<Coordinator>,
}

impl LoopbackTransport {
    /// A transport delivering straight into `coordinator`.
    pub fn new(coordinator: Arc<Coordinator>) -> Self {
        LoopbackTransport { coordinator }
    }
}

impl CoordTransport for LoopbackTransport {
    fn call(&self, op: &str, body: &str) -> io::Result<WireReply> {
        Ok(self.coordinator.handle(op, body))
    }
}

// ---------------------------------------------------------------------
// HTTP
// ---------------------------------------------------------------------

/// The real thing: one short-lived HTTP/1.1 `POST /v1/coord/{op}` per
/// call, with connect/read/write deadlines so a dead coordinator costs
/// a bounded wait, never a hang.
#[derive(Debug, Clone)]
pub struct HttpTransport {
    addr: SocketAddr,
    deadline: Duration,
}

impl HttpTransport {
    /// A transport to the coordinator at `addr`; every phase of a call
    /// (connect, write, read) gets `deadline` before it fails with
    /// [`io::ErrorKind::TimedOut`]-class errors.
    pub fn new(addr: SocketAddr, deadline: Duration) -> Self {
        HttpTransport { addr, deadline }
    }
}

impl CoordTransport for HttpTransport {
    fn call(&self, op: &str, body: &str) -> io::Result<WireReply> {
        let stream = TcpStream::connect_timeout(&self.addr, self.deadline)?;
        stream.set_read_timeout(Some(self.deadline))?;
        stream.set_write_timeout(Some(self.deadline))?;
        let mut stream = stream;
        let request = format!(
            "POST /v1/coord/{op} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        stream.write_all(request.as_bytes())?;
        read_reply(stream)
    }
}

/// Parses a sized (or close-delimited) HTTP response into a
/// [`WireReply`].
fn read_reply(stream: TcpStream) -> io::Result<WireReply> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line: {status_line:?}"),
            )
        })?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(WireReply { status, body })
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// The deterministic network-fault schedule a [`FaultyTransport`]
/// executes, keyed by *call index* (the Nth `call` on the transport) —
/// the analogue of a [`ChaosPlan`](picbench_core::ChaosPlan) for the
/// wire. The schedule is data, so the same plan always injects the same
/// faults at the same protocol points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// `(call index, hold_ms)`: when the index-th call starts, the
    /// coordinator becomes unreachable for `hold_ms` of wall clock —
    /// that call and every call inside the window fail without
    /// delivery. A hold longer than the lease TTL forces a
    /// reassignment.
    pub partitions: Vec<(u64, u64)>,
    /// Call indexes whose delivery is dropped (error, nothing sent).
    pub drops: Vec<u64>,
    /// `(call index, delay_ms)`: deliveries held this long first.
    pub delays: Vec<(u64, u64)>,
    /// Deliver every `period`-th call *twice* — the duplicate arrives
    /// right after the original, and the coordinator must dedupe it.
    pub duplicate_period: Option<u64>,
}

impl NetFaultPlan {
    /// The empty schedule (a transparent [`FaultyTransport`]).
    pub fn none() -> Self {
        NetFaultPlan::default()
    }

    /// A deterministic schedule drawn from `seed`: `partitions`
    /// partition windows of `hold_ms` and `drops` dropped deliveries at
    /// distinct call indexes in `[first_op, first_op + span)`, plus an
    /// optional duplicate period. The same seed always builds the same
    /// schedule.
    pub fn seeded(
        seed: u64,
        first_op: u64,
        span: u64,
        partitions: usize,
        hold_ms: u64,
        drops: usize,
        duplicate_period: Option<u64>,
    ) -> Self {
        let mut rng = (seed << 1) | 1;
        let mut draw = move |bound: u64| {
            rng = xorshift64(rng);
            rng % bound.max(1)
        };
        let span = span.max(1);
        let mut ops: Vec<u64> = Vec::new();
        let wanted = (partitions + drops).min(span as usize);
        while ops.len() < wanted {
            let op = first_op + draw(span);
            if !ops.contains(&op) {
                ops.push(op);
            }
        }
        let mut plan = NetFaultPlan {
            duplicate_period: duplicate_period.filter(|p| *p > 0),
            ..NetFaultPlan::default()
        };
        for (i, &op) in ops.iter().enumerate() {
            if i < partitions.min(ops.len()) {
                plan.partitions.push((op, hold_ms));
            } else {
                plan.drops.push(op);
            }
        }
        plan
    }
}

/// Counters of the faults a [`FaultyTransport`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Partition windows opened.
    pub partitions: u64,
    /// Calls failed inside a partition window (including the opener).
    pub partitioned_calls: u64,
    /// Deliveries dropped.
    pub drops: u64,
    /// Deliveries delayed.
    pub delays: u64,
    /// Duplicate deliveries sent.
    pub duplicates: u64,
}

/// Wraps any transport and executes a [`NetFaultPlan`] against it — the
/// in-process seam that makes partitions, duplicated deliveries, drops
/// and delays reproducible without touching a real network stack.
pub struct FaultyTransport {
    inner: Arc<dyn CoordTransport>,
    plan: NetFaultPlan,
    calls: AtomicU64,
    partition_until: Mutex<Option<Instant>>,
    partitions: AtomicU64,
    partitioned_calls: AtomicU64,
    drops: AtomicU64,
    delays: AtomicU64,
    duplicates: AtomicU64,
}

impl FaultyTransport {
    /// A fault-injecting wrapper over `inner` executing `plan`.
    pub fn new(inner: Arc<dyn CoordTransport>, plan: NetFaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            calls: AtomicU64::new(0),
            partition_until: Mutex::new(None),
            partitions: AtomicU64::new(0),
            partitioned_calls: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
        }
    }

    /// What has been injected so far.
    pub fn injected(&self) -> InjectedFaults {
        InjectedFaults {
            partitions: self.partitions.load(Ordering::Relaxed),
            partitioned_calls: self.partitioned_calls.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
        }
    }

    /// Total calls attempted through this transport (retries included).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl CoordTransport for FaultyTransport {
    fn call(&self, op: &str, body: &str) -> io::Result<WireReply> {
        let index = self.calls.fetch_add(1, Ordering::Relaxed);
        {
            let mut until = self.partition_until.lock().expect("partition poisoned");
            if let Some(&(_, hold_ms)) = self.plan.partitions.iter().find(|(o, _)| *o == index) {
                *until = Some(Instant::now() + Duration::from_millis(hold_ms));
                self.partitions.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(deadline) = *until {
                if Instant::now() < deadline {
                    self.partitioned_calls.fetch_add(1, Ordering::Relaxed);
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        "injected network partition",
                    ));
                }
                *until = None;
            }
        }
        if self.plan.drops.contains(&index) {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected delivery drop",
            ));
        }
        if let Some(&(_, delay_ms)) = self.plan.delays.iter().find(|(o, _)| *o == index) {
            self.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        let reply = self.inner.call(op, body)?;
        if self
            .plan
            .duplicate_period
            .is_some_and(|p| p > 0 && index % p == p - 1)
        {
            // Second delivery of the same request: the coordinator sees
            // it as a replay and must answer `duplicate`, not reapply.
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            let _ = self.inner.call(op, body);
        }
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingTransport {
        calls: AtomicU64,
    }

    impl CoordTransport for CountingTransport {
        fn call(&self, _op: &str, _body: &str) -> io::Result<WireReply> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok(WireReply {
                status: 200,
                body: "{}".to_string(),
            })
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = NetFaultPlan::seeded(9, 2, 10, 2, 500, 1, Some(5));
        let b = NetFaultPlan::seeded(9, 2, 10, 2, 500, 1, Some(5));
        assert_eq!(a, b);
        assert_eq!(a.partitions.len(), 2);
        assert_eq!(a.drops.len(), 1);
        assert_eq!(a.duplicate_period, Some(5));
        let mut ops: Vec<u64> = a.partitions.iter().map(|(o, _)| *o).collect();
        ops.extend(&a.drops);
        assert!(ops.iter().all(|&o| (2..12).contains(&o)));
        ops.sort_unstable();
        ops.dedup();
        assert_eq!(ops.len(), 3, "fault ops must be distinct");
        assert_ne!(a, NetFaultPlan::seeded(10, 2, 10, 2, 500, 1, Some(5)));
    }

    #[test]
    fn faulty_transport_drops_duplicates_and_partitions() {
        let inner = Arc::new(CountingTransport {
            calls: AtomicU64::new(0),
        });
        let plan = NetFaultPlan {
            partitions: vec![(1, 30)],
            drops: vec![4],
            delays: vec![(5, 1)],
            duplicate_period: Some(3),
        };
        let faulty = FaultyTransport::new(Arc::clone(&inner) as Arc<dyn CoordTransport>, plan);
        // Call 0: delivered.
        assert!(faulty.call("lease", "{}").is_ok());
        // Call 1: partition opens, fails without delivery; call 2 is
        // inside the window.
        assert!(faulty.call("append", "{}").is_err());
        assert!(faulty.call("append", "{}").is_err());
        std::thread::sleep(Duration::from_millis(40));
        // Call 3: window expired, delivered (3 % 3 == 0, no duplicate).
        assert!(faulty.call("append", "{}").is_ok());
        // Call 4: dropped.
        assert!(faulty.call("append", "{}").is_err());
        // Call 5: delayed but delivered; 5 % 3 == 2 → duplicated.
        assert!(faulty.call("append", "{}").is_ok());
        let injected = faulty.injected();
        assert_eq!(injected.partitions, 1);
        assert_eq!(injected.partitioned_calls, 2);
        assert_eq!(injected.drops, 1);
        assert_eq!(injected.delays, 1);
        assert_eq!(injected.duplicates, 1);
        // Delivered: calls 0, 3, 5 (+dup of 5) = 4 inner deliveries.
        assert_eq!(inner.calls.load(Ordering::Relaxed), 4);
        assert_eq!(faulty.calls(), 6);
    }
}
