//! The coordinator: the single owner of a campaign's shard journals,
//! driven entirely by `/v1/coord/*` requests.
//!
//! Remote workers never touch the journal filesystem — they ship lease
//! advances and record batches here, and the coordinator applies them
//! to exactly the per-`(shard, generation)` [`EvalStore`] directories a
//! local worker would have written. The supervisor keeps polling those
//! directories read-only, unchanged: from its point of view a remote
//! campaign is indistinguishable from a local one.
//!
//! **Exactly-once appends.** Every batch carries a
//! `(fingerprint, seq)` dedup key. The coordinator applies the batch's
//! records first and the applied marker *after* them (all idempotent
//! puts), so whatever a crash interleaves, a replayed delivery either
//! finds the marker (pure duplicate — dropped) or re-applies idempotent
//! puts over identical keys. The marker set is rebuilt from the journal
//! on restart, so dedup survives a coordinator crash mid-campaign.

use crate::proto::{
    self, AppendOutcome, AppendRequest, CellsRequest, CoordCounters, CoordState, LeaseRequest,
    ProtoError, RecordMsg, ShardStateMsg, StateRequest,
};
use picbench_core::{
    collect_shard_cells, shard_journal_dir, EvalStore, LeaseAdvance, ProblemTally,
};
use picbench_netlist::json::{self, Value};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The reply `Coordinator::handle` produces: an HTTP-ish status code
/// plus a JSON body, transport-agnostic so the loopback transport and
/// the server route share one implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordReply {
    /// Status code (200 applied, 400 malformed, 404 unknown op,
    /// 503 store unavailable).
    pub status: u16,
    /// JSON body.
    pub body: String,
}

struct CoordEntry {
    store: EvalStore,
    /// `(fingerprint, seq)` pairs already applied — the exactly-once
    /// dedup set, rebuilt from the journal's applied markers on open.
    applied: Mutex<HashSet<(u64, u64)>>,
}

/// The journal owner behind the `/v1/coord/*` routes. One per campaign
/// root; cheap to construct (stores open lazily per
/// `(shard, generation)` on first touch, and reload their applied
/// markers — restart safety comes for free from the journal itself).
pub struct Coordinator {
    root: PathBuf,
    entries: Mutex<HashMap<(u32, u32), Arc<CoordEntry>>>,
    claims: AtomicU64,
    renewals: AtomicU64,
    fenced: AtomicU64,
    appends: AtomicU64,
    records: AtomicU64,
    duplicates: AtomicU64,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("root", &self.root)
            .finish()
    }
}

impl Coordinator {
    /// A coordinator over the shard-journal root directory. Nothing is
    /// opened yet; stores open lazily as shards first write.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Coordinator {
            root: root.into(),
            entries: Mutex::new(HashMap::new()),
            claims: AtomicU64::new(0),
            renewals: AtomicU64::new(0),
            fenced: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            records: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
        }
    }

    /// The shard-journal root this coordinator owns.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Cumulative counters since this coordinator instance started
    /// (a restart resets them; the journal, not the counters, is the
    /// durable state).
    pub fn counters(&self) -> CoordCounters {
        CoordCounters {
            claims: self.claims.load(Ordering::Relaxed),
            renewals: self.renewals.load(Ordering::Relaxed),
            fenced: self.fenced.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
        }
    }

    fn entry(&self, shard: u32, generation: u32) -> io::Result<Arc<CoordEntry>> {
        let mut entries = self.entries.lock().expect("entries poisoned");
        if let Some(entry) = entries.get(&(shard, generation)) {
            return Ok(Arc::clone(entry));
        }
        let store = EvalStore::open(shard_journal_dir(&self.root, shard, generation))?;
        let applied = store.applied_records().into_iter().collect();
        let entry = Arc::new(CoordEntry {
            store,
            applied: Mutex::new(applied),
        });
        entries.insert((shard, generation), Arc::clone(&entry));
        Ok(entry)
    }

    /// Handles one coord operation (`lease`, `append`, `cells`,
    /// `state`) with a JSON request body. Never panics on malformed
    /// input — bad bodies get a 400 reply, unknown ops a 404, store
    /// open failures a 503 (transient to the client's retry policy).
    pub fn handle(&self, op: &str, body: &str) -> CoordReply {
        let result = match op {
            "lease" => LeaseRequest::decode(body).map(|req| self.handle_lease(&req)),
            "append" => AppendRequest::decode(body).map(|req| self.handle_append(&req)),
            "cells" => CellsRequest::decode(body).map(|req| self.handle_cells(&req)),
            "state" => StateRequest::decode(body).map(|req| self.handle_state(&req)),
            _ => {
                return CoordReply {
                    status: 404,
                    body: error_body(&format!("unknown coord op `{op}`")),
                }
            }
        };
        match result {
            Ok(reply) => reply,
            Err(ProtoError(msg)) => CoordReply {
                status: 400,
                body: error_body(&msg),
            },
        }
    }

    fn handle_lease(&self, req: &LeaseRequest) -> CoordReply {
        let entry = match self.entry(req.shard, req.lease.generation) {
            Ok(entry) => entry,
            Err(err) => return unavailable(&err),
        };
        let outcome = entry
            .store
            .advance_lease(req.fingerprint, req.shard, &req.lease);
        match outcome {
            LeaseAdvance::Claimed => self.claims.fetch_add(1, Ordering::Relaxed),
            LeaseAdvance::Renewed => self.renewals.fetch_add(1, Ordering::Relaxed),
            LeaseAdvance::Fenced => self.fenced.fetch_add(1, Ordering::Relaxed),
            LeaseAdvance::Degraded => 0,
        };
        CoordReply {
            status: 200,
            body: proto::encode_lease_reply(outcome),
        }
    }

    fn handle_append(&self, req: &AppendRequest) -> CoordReply {
        let entry = match self.entry(req.shard, req.generation) {
            Ok(entry) => entry,
            Err(err) => return unavailable(&err),
        };
        // The applied lock is held across the whole apply so a
        // concurrent duplicate of the same batch cannot interleave —
        // the second delivery sees either nothing or the marker.
        let mut applied = entry.applied.lock().expect("applied poisoned");
        let dedup_key = (req.fingerprint, req.seq);
        if applied.contains(&dedup_key) {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            return CoordReply {
                status: 200,
                body: proto::encode_append_reply(AppendOutcome::Duplicate),
            };
        }
        for record in &req.records {
            match record {
                RecordMsg::Cell { cell, tally } => {
                    entry.store.journal_cell(req.fingerprint, *cell, tally);
                }
                RecordMsg::Inherited { cell, tally } => {
                    entry
                        .store
                        .record_inherited_cell(req.fingerprint, *cell, tally);
                }
                RecordMsg::Stats { stats } => {
                    entry
                        .store
                        .record_shard_stats(req.fingerprint, req.shard, stats);
                }
            }
        }
        entry.store.record_applied(req.fingerprint, req.seq);
        if req.sync {
            entry.store.sync();
        }
        let outcome = if entry.store.degraded() {
            // Not marked applied: nothing about this batch is known
            // durable, so a retry must be allowed to try again.
            AppendOutcome::Degraded
        } else {
            applied.insert(dedup_key);
            self.appends.fetch_add(1, Ordering::Relaxed);
            self.records
                .fetch_add(req.records.len() as u64, Ordering::Relaxed);
            AppendOutcome::Applied
        };
        CoordReply {
            status: 200,
            body: proto::encode_append_reply(outcome),
        }
    }

    fn handle_cells(&self, req: &CellsRequest) -> CoordReply {
        let entry = match self.entry(req.shard, req.generation) {
            Ok(entry) => entry,
            Err(err) => return unavailable(&err),
        };
        let cells = entry.store.completed_cells(req.fingerprint);
        CoordReply {
            status: 200,
            body: proto::encode_cells_reply(&cells),
        }
    }

    fn handle_state(&self, req: &StateRequest) -> CoordReply {
        let collected = match collect_shard_cells(&self.root, req.fingerprint) {
            Ok(collected) => collected,
            Err(err) => return unavailable(&err),
        };
        let mut merged: HashMap<u64, ProblemTally> = HashMap::new();
        let mut shards = Vec::with_capacity(collected.len());
        for shard in &collected {
            for (key, tally) in &shard.cells {
                merged.insert(*key, *tally);
            }
            shards.push(ShardStateMsg {
                shard: shard.shard,
                generation: shard.generation,
                cells: shard.cells.len() as u64,
                quarantined: shard.quarantined as u64,
            });
        }
        let mut cells: Vec<(u64, ProblemTally)> = merged.into_iter().collect();
        cells.sort_unstable_by_key(|(key, _)| *key);
        let state = CoordState {
            shards,
            cells,
            counters: self.counters(),
        };
        CoordReply {
            status: 200,
            body: proto::encode_state_reply(&state),
        }
    }
}

fn error_body(msg: &str) -> String {
    json::to_string(&Value::Object(vec![(
        "error".to_string(),
        Value::String(msg.to_string()),
    )]))
}

fn unavailable(err: &io::Error) -> CoordReply {
    CoordReply {
        status: 503,
        body: error_body(&format!("coordinator store unavailable: {err}")),
    }
}
