//! The remote side of the journal seam: a [`ShardJournal`] that ships
//! records to the coordinator instead of writing a local store, and a
//! [`ShardLauncher`] that arms worker processes with the transport
//! flags to reach it.
//!
//! Durability contract mirrors [`LocalShardJournal`]: fresh cells and
//! stats ship with `sync: true` (the coordinator fsyncs before
//! replying `applied`), inherited cells batch unsynced and ride the
//! restore pass's single [`ShardJournal::sync`]. Every batch carries a
//! worker-monotonic `seq` in a generation-scoped sequence space, so a
//! delivery duplicated by the network (or replayed by a retry whose
//! first delivery *did* land) dedupes exactly on the coordinator, and a
//! takeover worker's sequences never collide with its predecessor's.
//!
//! [`LocalShardJournal`]: picbench_core::LocalShardJournal

use crate::client::CoordClient;
use crate::proto::{AppendOutcome, AppendRequest, RecordMsg};
use picbench_core::{
    LeaseAdvance, LeaseRecord, ProblemTally, ProcessLauncher, ShardGenStats, ShardJournal,
    ShardLauncher, ShardWorkerHandle, ShardWorkload, WorkerRequest,
};
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Inherited-cell records buffered before a chunk ships (bounds memory
/// and request size on large restored generations).
const INHERIT_CHUNK: usize = 512;

/// A [`ShardJournal`] backed by a [`CoordClient`] — the worker body
/// runs unchanged while every record crosses the wire.
pub struct RemoteJournal {
    client: Arc<CoordClient>,
    shard: u32,
    generation: u32,
    /// Next batch sequence number; starts at `generation << 32` so each
    /// generation owns a disjoint dedup-key space, monotonic per worker
    /// process.
    next_seq: AtomicU64,
    /// Fingerprint of the campaign being journalled, captured from the
    /// first record so [`ShardJournal::sync`] (which takes none) can
    /// flush pending records under the right key.
    fingerprint: AtomicU64,
    /// Unsynced inherited-cell records awaiting the next flush.
    pending: Mutex<Vec<RecordMsg>>,
    /// Whether any batch shipped unsynced since the last synced one —
    /// the next synced flush must cross the wire even when empty, to
    /// deliver the durability barrier those batches deferred.
    unsynced: AtomicBool,
    degraded: AtomicBool,
}

impl RemoteJournal {
    /// A remote journal for `(shard, generation)`, shipping through
    /// `client`.
    pub fn new(client: Arc<CoordClient>, shard: u32, generation: u32) -> Self {
        RemoteJournal {
            client,
            shard,
            generation,
            next_seq: AtomicU64::new(u64::from(generation) << 32),
            fingerprint: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
            unsynced: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
        }
    }

    /// The client this journal ships through (for counter inspection).
    pub fn client(&self) -> &Arc<CoordClient> {
        &self.client
    }

    /// Ships pending records (plus `extra`, in order) as one batch.
    /// Empty batches don't cross the wire: with nothing pending and
    /// nothing extra, everything already shipped carried its own sync.
    fn flush(&self, fingerprint: u64, sync: bool, extra: Option<RecordMsg>) -> bool {
        self.fingerprint.store(fingerprint, Ordering::Relaxed);
        let mut records = {
            let mut pending = self.pending.lock().expect("pending poisoned");
            std::mem::take(&mut *pending)
        };
        records.extend(extra);
        let barrier_due = sync && self.unsynced.load(Ordering::Relaxed);
        if records.is_empty() && !barrier_due {
            return !self.degraded.load(Ordering::Relaxed);
        }
        if self.degraded.load(Ordering::Relaxed) {
            return false;
        }
        let req = AppendRequest {
            fingerprint,
            shard: self.shard,
            generation: self.generation,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            sync,
            records,
        };
        match self.client.append(&req) {
            AppendOutcome::Applied | AppendOutcome::Duplicate => {
                self.unsynced.store(!sync, Ordering::Relaxed);
                true
            }
            AppendOutcome::Degraded => {
                self.degraded.store(true, Ordering::Relaxed);
                false
            }
        }
    }
}

impl ShardJournal for RemoteJournal {
    fn advance_lease(&self, fingerprint: u64, shard: u32, lease: &LeaseRecord) -> LeaseAdvance {
        self.fingerprint.store(fingerprint, Ordering::Relaxed);
        self.client.advance_lease(fingerprint, shard, lease)
    }

    fn record_cell(&self, fingerprint: u64, cell: u64, tally: &ProblemTally) -> bool {
        self.flush(
            fingerprint,
            true,
            Some(RecordMsg::Cell {
                cell,
                tally: *tally,
            }),
        )
    }

    fn record_inherited_cell(&self, fingerprint: u64, cell: u64, tally: &ProblemTally) {
        self.fingerprint.store(fingerprint, Ordering::Relaxed);
        let flush_now = {
            let mut pending = self.pending.lock().expect("pending poisoned");
            pending.push(RecordMsg::Inherited {
                cell,
                tally: *tally,
            });
            pending.len() >= INHERIT_CHUNK
        };
        if flush_now {
            // Chunk boundary: ship unsynced, like local inherited puts.
            self.flush(fingerprint, false, None);
        }
    }

    fn sync(&self) -> bool {
        let fingerprint = self.fingerprint.load(Ordering::Relaxed);
        self.flush(fingerprint, true, None) && !self.degraded.load(Ordering::Relaxed)
    }

    fn record_shard_stats(&self, fingerprint: u64, shard: u32, stats: &ShardGenStats) -> bool {
        debug_assert_eq!(shard, self.shard);
        self.flush(fingerprint, true, Some(RecordMsg::Stats { stats: *stats }))
    }

    fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    fn prior_generation_cells(
        &self,
        fingerprint: u64,
        generation: u32,
    ) -> io::Result<Vec<(u64, ProblemTally)>> {
        self.client.fetch_cells(fingerprint, self.shard, generation)
    }
}

/// A [`ShardLauncher`] spawning worker *processes* armed to talk to a
/// network coordinator: [`ProcessLauncher`] semantics (SIGKILL-able
/// children, per-generation relaunches) plus `--transport http
/// --coord-addr` so the child journals over the wire instead of the
/// shared filesystem.
#[derive(Debug, Clone)]
pub struct RemoteLauncher {
    inner: ProcessLauncher,
}

impl RemoteLauncher {
    /// A launcher for `program` with `base_args`, pointing workers at
    /// the coordinator on `coord_addr`.
    pub fn new(program: PathBuf, base_args: Vec<String>, coord_addr: SocketAddr) -> Self {
        let mut args = base_args;
        args.push("--transport".to_string());
        args.push("http".to_string());
        args.push("--coord-addr".to_string());
        args.push(coord_addr.to_string());
        RemoteLauncher {
            inner: ProcessLauncher {
                program,
                base_args: args,
            },
        }
    }
}

impl ShardLauncher for RemoteLauncher {
    fn launch(
        &self,
        workload: &Arc<ShardWorkload>,
        request: &WorkerRequest,
    ) -> io::Result<Box<dyn ShardWorkerHandle>> {
        self.inner.launch(workload, request)
    }
}
