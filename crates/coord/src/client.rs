//! The worker-side coord client: typed RPC wrappers over any
//! [`CoordTransport`], with deadlines inherited from the transport and
//! bounded, deterministically-jittered retry reusing the provider
//! layer's [`RetryPolicy`] and transient/fatal classification.
//!
//! Failure semantics mirror the provider stack: transient failures
//! (connection refused/reset, timeouts, 5xx replies, garbled bodies)
//! are retried with seeded exponential backoff until attempts or the
//! backoff budget run out; fatal failures (4xx — the request itself is
//! wrong) fail immediately. Lease and append wrappers degrade
//! gracefully on exhaustion ([`LeaseAdvance::Degraded`] /
//! [`AppendOutcome::Degraded`]) so a partitioned worker winds down the
//! same way a worker with a failing local disk does.

use crate::proto::{
    AppendOutcome, AppendRequest, CellsRequest, CoordState, LeaseRequest, StateRequest,
};
use crate::transport::CoordTransport;
use crate::{proto, WireReply};
use picbench_core::{LeaseAdvance, LeaseRecord, ProblemTally};
use picbench_store::xorshift64;
use picbench_synthllm::{RetryPolicy, TransportErrorKind};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters of retry-layer decisions a [`CoordClient`] made.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// RPCs that succeeded (after zero or more retries).
    pub calls: u64,
    /// Individual retry attempts made after transient failures.
    pub retries: u64,
    /// RPCs that exhausted attempts/budget or hit a fatal failure.
    pub failures: u64,
}

/// A coord RPC client over any transport, with deterministic bounded
/// retry.
pub struct CoordClient {
    transport: Arc<dyn CoordTransport>,
    policy: RetryPolicy,
    /// Jitter stream state, shared across calls (per-client determinism;
    /// cross-thread interleaving only reorders draws from one stream).
    jitter: AtomicU64,
    calls: AtomicU64,
    retries: AtomicU64,
    failures: AtomicU64,
}

impl CoordClient {
    /// A client with the default coord retry policy: 5 attempts,
    /// 50 ms base backoff capped at 1 s, real sleeps (this is a real
    /// network, not a simulated one).
    pub fn new(transport: Arc<dyn CoordTransport>) -> Self {
        CoordClient::with_policy(
            transport,
            RetryPolicy {
                max_attempts: 5,
                base_backoff_ms: 50,
                max_backoff_ms: 1_000,
                budget_ms: 10_000,
                sleep: true,
                ..RetryPolicy::default()
            },
        )
    }

    /// A client with an explicit retry policy (chaos drills stretch
    /// attempts/budget to ride out scheduled partitions).
    pub fn with_policy(transport: Arc<dyn CoordTransport>, policy: RetryPolicy) -> Self {
        CoordClient {
            transport,
            policy,
            jitter: AtomicU64::new(xorshift64(policy.seed)),
            calls: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// Retry-layer counters so far.
    pub fn counters(&self) -> ClientCounters {
        ClientCounters {
            calls: self.calls.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }

    fn next_jitter(&self) -> u64 {
        // fetch_update keeps one coherent xorshift stream under
        // concurrent callers.
        let prev = self
            .jitter
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |x| {
                Some(xorshift64(x))
            })
            .unwrap_or(1);
        xorshift64(prev)
    }

    /// Deterministic backoff for the given 1-based failed attempt:
    /// exponential doubling, capped, ±25% seeded jitter.
    fn backoff_ms(&self, attempt: u32) -> u64 {
        let base = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << (attempt - 1).min(16))
            .min(self.policy.max_backoff_ms);
        let quarter = base / 4;
        if quarter == 0 {
            return base;
        }
        base - quarter + self.next_jitter() % (2 * quarter + 1)
    }

    /// One RPC with bounded retry. Returns the parsed 200-reply JSON,
    /// or the last error once attempts/budget are exhausted or a fatal
    /// (4xx) reply arrives.
    fn rpc(&self, op: &str, body: &str) -> io::Result<picbench_netlist::json::Value> {
        let mut attempt = 1u32;
        let mut budget_left = self.policy.budget_ms;
        loop {
            let (kind, err) = match self.transport.call(op, body) {
                Ok(reply) => match classify_reply(op, &reply) {
                    Ok(value) => {
                        self.calls.fetch_add(1, Ordering::Relaxed);
                        return Ok(value);
                    }
                    Err((kind, err)) => (kind, err),
                },
                Err(err) => (classify_io(&err), err),
            };
            let out_of_attempts = attempt >= self.policy.max_attempts.max(1);
            if !kind.is_transient() || out_of_attempts {
                self.failures.fetch_add(1, Ordering::Relaxed);
                return Err(err);
            }
            let backoff = self.backoff_ms(attempt);
            if backoff > budget_left {
                self.failures.fetch_add(1, Ordering::Relaxed);
                return Err(err);
            }
            budget_left -= backoff;
            if self.policy.sleep {
                std::thread::sleep(Duration::from_millis(backoff));
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            attempt += 1;
        }
    }

    /// Claims/renews a shard lease on the coordinator. RPC failure
    /// (partition outlasting the retry budget) degrades — the worker
    /// winds down and the supervisor reassigns after lease expiry.
    pub fn advance_lease(&self, fingerprint: u64, shard: u32, lease: &LeaseRecord) -> LeaseAdvance {
        let body = LeaseRequest {
            fingerprint,
            shard,
            lease: *lease,
        }
        .encode();
        match self.rpc("lease", &body) {
            Ok(value) => proto::decode_lease_reply(&value).unwrap_or(LeaseAdvance::Degraded),
            Err(_) => LeaseAdvance::Degraded,
        }
    }

    /// Ships a record batch. Delivery failure after retries degrades;
    /// the batch stays pending on the worker side.
    pub fn append(&self, req: &AppendRequest) -> AppendOutcome {
        match self.rpc("append", &req.encode()) {
            Ok(value) => proto::decode_append_reply(&value).unwrap_or(AppendOutcome::Degraded),
            Err(_) => AppendOutcome::Degraded,
        }
    }

    /// Fetches the completed cells of `(shard, generation)` — the
    /// remote analogue of reading the prior generation's journal for
    /// inheritance.
    ///
    /// # Errors
    ///
    /// The last transport error once retries are exhausted, or a decode
    /// failure on a malformed reply.
    pub fn fetch_cells(
        &self,
        fingerprint: u64,
        shard: u32,
        generation: u32,
    ) -> io::Result<Vec<(u64, ProblemTally)>> {
        let body = CellsRequest {
            fingerprint,
            shard,
            generation,
        }
        .encode();
        let value = self.rpc("cells", &body)?;
        proto::decode_cells_reply(&value)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.0))
    }

    /// Fetches the coordinator's merged view of the campaign.
    ///
    /// # Errors
    ///
    /// The last transport error once retries are exhausted, or a decode
    /// failure on a malformed reply.
    pub fn fetch_state(&self, fingerprint: u64) -> io::Result<CoordState> {
        let value = self.rpc("state", &StateRequest { fingerprint }.encode())?;
        proto::decode_state_reply(&value)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.0))
    }
}

/// Classifies a delivered reply: 200 parses to JSON (parse failure is a
/// garbled body — transient, the coordinator is healthy enough to
/// answer), 4xx is fatal (the request is wrong; retrying resends the
/// same bytes), everything else transient.
fn classify_reply(
    op: &str,
    reply: &WireReply,
) -> Result<picbench_netlist::json::Value, (TransportErrorKind, io::Error)> {
    if reply.status == 200 {
        return match picbench_netlist::json::parse(&reply.body) {
            Ok(value) => Ok(value),
            Err(_) => Err((
                TransportErrorKind::Garbled,
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("garbled coord `{op}` reply body"),
                ),
            )),
        };
    }
    let kind = if (400..500).contains(&reply.status) {
        TransportErrorKind::Fatal
    } else {
        TransportErrorKind::TransientIo
    };
    Err((
        kind,
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("coord `{op}` returned {}: {}", reply.status, reply.body),
        ),
    ))
}

/// Classifies a delivery failure by IO error kind.
fn classify_io(err: &io::Error) -> TransportErrorKind {
    match err.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => TransportErrorKind::Timeout,
        _ => TransportErrorKind::TransientIo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Scripted transport: pops the next response per call.
    struct ScriptedTransport {
        script: Mutex<Vec<io::Result<WireReply>>>,
    }

    impl ScriptedTransport {
        fn new(mut script: Vec<io::Result<WireReply>>) -> Self {
            script.reverse();
            ScriptedTransport {
                script: Mutex::new(script),
            }
        }
    }

    impl CoordTransport for ScriptedTransport {
        fn call(&self, _op: &str, _body: &str) -> io::Result<WireReply> {
            self.script
                .lock()
                .unwrap()
                .pop()
                .unwrap_or_else(|| Err(io::Error::other("script exhausted")))
        }
    }

    fn ok(body: &str) -> io::Result<WireReply> {
        Ok(WireReply {
            status: 200,
            body: body.to_string(),
        })
    }

    fn refused() -> io::Result<WireReply> {
        Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"))
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 1,
            max_backoff_ms: 2,
            budget_ms: 1_000,
            sleep: false,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let transport = Arc::new(ScriptedTransport::new(vec![
            refused(),
            Ok(WireReply {
                status: 503,
                body: "{\"error\":\"store unavailable\"}".to_string(),
            }),
            ok("{\"outcome\":\"applied\"}"),
        ]));
        let client = CoordClient::with_policy(transport, fast_policy());
        let req = AppendRequest {
            fingerprint: 7,
            shard: 0,
            generation: 0,
            seq: 0,
            sync: false,
            records: Vec::new(),
        };
        assert_eq!(client.append(&req), AppendOutcome::Applied);
        let counters = client.counters();
        assert_eq!(counters.calls, 1);
        assert_eq!(counters.retries, 2);
        assert_eq!(counters.failures, 0);
    }

    #[test]
    fn fatal_replies_fail_without_retry() {
        let transport = Arc::new(ScriptedTransport::new(vec![
            Ok(WireReply {
                status: 400,
                body: "{\"error\":\"bad body\"}".to_string(),
            }),
            ok("{\"outcome\":\"applied\"}"),
        ]));
        let client = CoordClient::with_policy(transport, fast_policy());
        assert!(client.fetch_state(7).is_err(), "400 must not be retried");
        assert_eq!(client.counters().failures, 1);
        assert_eq!(client.counters().retries, 0);
    }

    #[test]
    fn exhausted_attempts_degrade_lease_to_degraded() {
        let transport = Arc::new(ScriptedTransport::new(vec![
            refused(),
            refused(),
            refused(),
            refused(),
            refused(),
        ]));
        let client = CoordClient::with_policy(transport, fast_policy());
        let lease = LeaseRecord {
            generation: 0,
            worker: 1,
            seq: 1,
            stamp_ms: 0,
        };
        assert_eq!(client.advance_lease(7, 0, &lease), LeaseAdvance::Degraded);
        let counters = client.counters();
        assert_eq!(counters.failures, 1);
        assert_eq!(counters.retries, 3, "4 attempts = 3 retries");
    }

    #[test]
    fn garbled_bodies_are_transient() {
        let transport = Arc::new(ScriptedTransport::new(vec![
            ok("{not json"),
            ok("{\"outcome\":\"duplicate\"}"),
        ]));
        let client = CoordClient::with_policy(transport, fast_policy());
        let req = AppendRequest {
            fingerprint: 7,
            shard: 0,
            generation: 0,
            seq: 0,
            sync: false,
            records: Vec::new(),
        };
        assert_eq!(client.append(&req), AppendOutcome::Duplicate);
        assert_eq!(client.counters().retries, 1);
    }

    #[test]
    fn backoff_is_seeded_and_bounded() {
        let transport = Arc::new(ScriptedTransport::new(Vec::new()));
        let client = CoordClient::with_policy(
            transport,
            RetryPolicy {
                base_backoff_ms: 100,
                max_backoff_ms: 400,
                ..fast_policy()
            },
        );
        for attempt in 1..=6 {
            let backoff = client.backoff_ms(attempt);
            let base = 100u64.saturating_mul(1 << (attempt - 1)).min(400);
            assert!(
                backoff >= base - base / 4 && backoff <= base + base / 4,
                "attempt {attempt}: {backoff} outside ±25% of {base}"
            );
        }
    }
}
