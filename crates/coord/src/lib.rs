//! Network coordination for multi-machine PICBench campaigns.
//!
//! PR 7's sharded campaigns assumed every worker shared a filesystem
//! with the supervisor. This crate removes that assumption: shard
//! workers can run on machines that share only TCP reachability to a
//! *coordinator*, which is the single owner of the campaign's journal
//! directories.
//!
//! The pieces, worker-side to coordinator-side:
//!
//! - [`RemoteJournal`] — a [`ShardJournal`](picbench_core::ShardJournal)
//!   implementation that ships lease advances and record batches over a
//!   transport instead of writing a local store. The worker body is
//!   byte-for-byte the PR 7 one.
//! - [`CoordClient`] — typed RPCs with deadlines and bounded,
//!   deterministically-jittered retry (reusing the provider layer's
//!   [`RetryPolicy`](picbench_synthllm::RetryPolicy) and transient/fatal
//!   classification).
//! - [`CoordTransport`] — the delivery seam: [`HttpTransport`] for real
//!   sockets, [`LoopbackTransport`] for in-process tests, and
//!   [`FaultyTransport`] executing a deterministic [`NetFaultPlan`]
//!   (drops, delays, duplicated deliveries, partitions) against either.
//! - [`Coordinator`] — applies lease/append/cells/state operations to
//!   the same per-`(shard, generation)` `EvalStore` directories a local
//!   worker would write, with exactly-once append dedup that survives
//!   coordinator restarts. The supervisor polls those directories
//!   unchanged.
//! - [`RemoteLauncher`] — a
//!   [`ShardLauncher`](picbench_core::ShardLauncher) arming worker
//!   processes with `--transport http --coord-addr`, so the PR 7
//!   supervisor drives remote workers without modification.

#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod proto;
pub mod remote;
pub mod transport;

pub use client::{ClientCounters, CoordClient};
pub use coordinator::{CoordReply, Coordinator};
pub use proto::{
    AppendOutcome, AppendRequest, CellsRequest, CoordCounters, CoordState, LeaseRequest,
    ProtoError, RecordMsg, ShardStateMsg, StateRequest,
};
pub use remote::{RemoteJournal, RemoteLauncher};
pub use transport::{
    CoordTransport, FaultyTransport, HttpTransport, InjectedFaults, LoopbackTransport,
    NetFaultPlan, WireReply,
};
