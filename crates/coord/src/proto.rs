//! Wire types of the `/v1/coord/*` protocol.
//!
//! Every request is a `POST` with a small JSON body; every reply is a
//! sized JSON object. Numbers that carry 64-bit identifiers
//! (fingerprints, cell keys, seqs) are encoded as [`Value::Uint`] so
//! they round-trip exactly — the same convention as the server's event
//! wire format.
//!
//! The append protocol is **idempotent by construction**: a batch is
//! keyed by `(campaign fingerprint, shard, generation, record seq)` and
//! the coordinator remembers applied `(fingerprint, seq)` pairs
//! durably, so a duplicated, reordered or replayed delivery — including
//! one replayed across a coordinator restart — answers
//! [`AppendOutcome::Duplicate`] instead of double-applying.

use picbench_core::{LeaseAdvance, LeaseRecord, ProblemTally, ShardGenStats};
use picbench_netlist::json::{self, Value};
use std::fmt;

/// A `u64` as a JSON value that round-trips exactly.
pub fn num(v: u64) -> Value {
    Value::Uint(v)
}

/// A malformed protocol body: what was wrong, for the 400 reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed coord request: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn bad(what: &str) -> ProtoError {
    ProtoError(what.to_string())
}

fn parse_body(body: &str) -> Result<Value, ProtoError> {
    json::parse(body).map_err(|err| ProtoError(format!("invalid JSON: {err}")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, ProtoError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| ProtoError(format!("missing or non-integer `{key}`")))
}

fn u32_field(v: &Value, key: &str) -> Result<u32, ProtoError> {
    u32::try_from(u64_field(v, key)?).map_err(|_| ProtoError(format!("`{key}` out of range")))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, ProtoError> {
    usize::try_from(u64_field(v, key)?).map_err(|_| ProtoError(format!("`{key}` out of range")))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, ProtoError> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(ProtoError(format!("missing or non-boolean `{key}`"))),
    }
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, ProtoError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| ProtoError(format!("missing or non-string `{key}`")))
}

fn tally_fields(v: &Value) -> Result<ProblemTally, ProtoError> {
    Ok(ProblemTally {
        n: usize_field(v, "n")?,
        syntax_passes: usize_field(v, "syntax")?,
        functional_passes: usize_field(v, "functional")?,
    })
}

fn tally_entries(tally: &ProblemTally) -> Vec<(String, Value)> {
    vec![
        ("n".to_string(), num(tally.n as u64)),
        ("syntax".to_string(), num(tally.syntax_passes as u64)),
        (
            "functional".to_string(),
            num(tally.functional_passes as u64),
        ),
    ]
}

// ---------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------

/// One journal record inside an append batch — the wire mirror of the
/// [`ShardJournal`](picbench_core::ShardJournal) write operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordMsg {
    /// A freshly evaluated cell.
    Cell {
        /// Cell journal key.
        cell: u64,
        /// The cell's tally.
        tally: ProblemTally,
    },
    /// A cell inherited from a prior generation (cell record plus
    /// inherit mark).
    Inherited {
        /// Cell journal key.
        cell: u64,
        /// The cell's tally.
        tally: ProblemTally,
    },
    /// The generation's completion statistics.
    Stats {
        /// Restored/evaluated counts.
        stats: ShardGenStats,
    },
}

impl RecordMsg {
    /// Encodes the record as a JSON object.
    pub fn to_value(&self) -> Value {
        match self {
            RecordMsg::Cell { cell, tally } => {
                let mut entries = vec![
                    ("kind".to_string(), Value::String("cell".to_string())),
                    ("cell".to_string(), num(*cell)),
                ];
                entries.extend(tally_entries(tally));
                Value::Object(entries)
            }
            RecordMsg::Inherited { cell, tally } => {
                let mut entries = vec![
                    ("kind".to_string(), Value::String("inherit".to_string())),
                    ("cell".to_string(), num(*cell)),
                ];
                entries.extend(tally_entries(tally));
                Value::Object(entries)
            }
            RecordMsg::Stats { stats } => Value::Object(vec![
                ("kind".to_string(), Value::String("stats".to_string())),
                ("restored".to_string(), num(stats.restored)),
                ("evaluated".to_string(), num(stats.evaluated)),
            ]),
        }
    }

    /// Decodes a record object.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on an unknown kind or missing field.
    pub fn from_value(v: &Value) -> Result<RecordMsg, ProtoError> {
        match str_field(v, "kind")? {
            "cell" => Ok(RecordMsg::Cell {
                cell: u64_field(v, "cell")?,
                tally: tally_fields(v)?,
            }),
            "inherit" => Ok(RecordMsg::Inherited {
                cell: u64_field(v, "cell")?,
                tally: tally_fields(v)?,
            }),
            "stats" => Ok(RecordMsg::Stats {
                stats: ShardGenStats {
                    restored: u64_field(v, "restored")?,
                    evaluated: u64_field(v, "evaluated")?,
                },
            }),
            other => Err(ProtoError(format!("unknown record kind `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// `POST /v1/coord/lease` — claim or renew a shard lease.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseRequest {
    /// Campaign fingerprint.
    pub fingerprint: u64,
    /// Shard index.
    pub shard: u32,
    /// The lease record to CAS in.
    pub lease: LeaseRecord,
}

impl LeaseRequest {
    /// Encodes the request body.
    pub fn encode(&self) -> String {
        json::to_string(&Value::Object(vec![
            ("fingerprint".to_string(), num(self.fingerprint)),
            ("shard".to_string(), num(u64::from(self.shard))),
            (
                "generation".to_string(),
                num(u64::from(self.lease.generation)),
            ),
            ("worker".to_string(), num(self.lease.worker)),
            ("seq".to_string(), num(self.lease.seq)),
            ("stamp_ms".to_string(), num(self.lease.stamp_ms)),
        ]))
    }

    /// Decodes a request body.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON or missing fields.
    pub fn decode(body: &str) -> Result<LeaseRequest, ProtoError> {
        let v = parse_body(body)?;
        Ok(LeaseRequest {
            fingerprint: u64_field(&v, "fingerprint")?,
            shard: u32_field(&v, "shard")?,
            lease: LeaseRecord {
                generation: u32_field(&v, "generation")?,
                worker: u64_field(&v, "worker")?,
                seq: u64_field(&v, "seq")?,
                stamp_ms: u64_field(&v, "stamp_ms")?,
            },
        })
    }
}

/// `POST /v1/coord/append` — an idempotent journal-record batch.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendRequest {
    /// Campaign fingerprint.
    pub fingerprint: u64,
    /// Shard index.
    pub shard: u32,
    /// Lease generation the records belong to.
    pub generation: u32,
    /// Strictly increasing per-worker batch sequence number — with the
    /// fingerprint, the exactly-once dedup key.
    pub seq: u64,
    /// Whether the coordinator must fsync after applying the batch.
    pub sync: bool,
    /// The records, applied in order.
    pub records: Vec<RecordMsg>,
}

impl AppendRequest {
    /// Encodes the request body.
    pub fn encode(&self) -> String {
        json::to_string(&Value::Object(vec![
            ("fingerprint".to_string(), num(self.fingerprint)),
            ("shard".to_string(), num(u64::from(self.shard))),
            ("generation".to_string(), num(u64::from(self.generation))),
            ("seq".to_string(), num(self.seq)),
            ("sync".to_string(), Value::Bool(self.sync)),
            (
                "records".to_string(),
                Value::Array(self.records.iter().map(RecordMsg::to_value).collect()),
            ),
        ]))
    }

    /// Decodes a request body.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON, missing fields or an unknown
    /// record kind.
    pub fn decode(body: &str) -> Result<AppendRequest, ProtoError> {
        let v = parse_body(body)?;
        let records = v
            .get("records")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("missing `records` array"))?
            .iter()
            .map(RecordMsg::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(AppendRequest {
            fingerprint: u64_field(&v, "fingerprint")?,
            shard: u32_field(&v, "shard")?,
            generation: u32_field(&v, "generation")?,
            seq: u64_field(&v, "seq")?,
            sync: bool_field(&v, "sync")?,
            records,
        })
    }
}

/// `POST /v1/coord/cells` — the completed cells of one
/// `(shard, generation)` journal, read by takeover workers inheriting
/// prior generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellsRequest {
    /// Campaign fingerprint.
    pub fingerprint: u64,
    /// Shard index.
    pub shard: u32,
    /// Generation whose journal to read.
    pub generation: u32,
}

impl CellsRequest {
    /// Encodes the request body.
    pub fn encode(&self) -> String {
        json::to_string(&Value::Object(vec![
            ("fingerprint".to_string(), num(self.fingerprint)),
            ("shard".to_string(), num(u64::from(self.shard))),
            ("generation".to_string(), num(u64::from(self.generation))),
        ]))
    }

    /// Decodes a request body.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON or missing fields.
    pub fn decode(body: &str) -> Result<CellsRequest, ProtoError> {
        let v = parse_body(body)?;
        Ok(CellsRequest {
            fingerprint: u64_field(&v, "fingerprint")?,
            shard: u32_field(&v, "shard")?,
            generation: u32_field(&v, "generation")?,
        })
    }
}

/// `POST /v1/coord/state` — merged-state fetch over every shard's final
/// generation, plus the coordinator's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateRequest {
    /// Campaign fingerprint.
    pub fingerprint: u64,
}

impl StateRequest {
    /// Encodes the request body.
    pub fn encode(&self) -> String {
        json::to_string(&Value::Object(vec![(
            "fingerprint".to_string(),
            num(self.fingerprint),
        )]))
    }

    /// Decodes a request body.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON or a missing fingerprint.
    pub fn decode(body: &str) -> Result<StateRequest, ProtoError> {
        let v = parse_body(body)?;
        Ok(StateRequest {
            fingerprint: u64_field(&v, "fingerprint")?,
        })
    }
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

fn lease_token(outcome: LeaseAdvance) -> &'static str {
    match outcome {
        LeaseAdvance::Claimed => "claimed",
        LeaseAdvance::Renewed => "renewed",
        LeaseAdvance::Fenced => "fenced",
        LeaseAdvance::Degraded => "degraded",
    }
}

/// Encodes a lease reply body.
pub fn encode_lease_reply(outcome: LeaseAdvance) -> String {
    json::to_string(&Value::Object(vec![(
        "outcome".to_string(),
        Value::String(lease_token(outcome).to_string()),
    )]))
}

/// Decodes a lease reply body.
///
/// # Errors
///
/// [`ProtoError`] on an unknown outcome token.
pub fn decode_lease_reply(v: &Value) -> Result<LeaseAdvance, ProtoError> {
    match str_field(v, "outcome")? {
        "claimed" => Ok(LeaseAdvance::Claimed),
        "renewed" => Ok(LeaseAdvance::Renewed),
        "fenced" => Ok(LeaseAdvance::Fenced),
        "degraded" => Ok(LeaseAdvance::Degraded),
        other => Err(ProtoError(format!("unknown lease outcome `{other}`"))),
    }
}

/// What the coordinator did with an append batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// The batch's records landed (durably, when `sync` was set).
    Applied,
    /// The batch was already applied — a duplicated or replayed
    /// delivery, dropped exactly.
    Duplicate,
    /// The coordinator's store is degraded; the batch did not land.
    Degraded,
}

/// Encodes an append reply body.
pub fn encode_append_reply(outcome: AppendOutcome) -> String {
    let token = match outcome {
        AppendOutcome::Applied => "applied",
        AppendOutcome::Duplicate => "duplicate",
        AppendOutcome::Degraded => "degraded",
    };
    json::to_string(&Value::Object(vec![(
        "outcome".to_string(),
        Value::String(token.to_string()),
    )]))
}

/// Decodes an append reply body.
///
/// # Errors
///
/// [`ProtoError`] on an unknown outcome token.
pub fn decode_append_reply(v: &Value) -> Result<AppendOutcome, ProtoError> {
    match str_field(v, "outcome")? {
        "applied" => Ok(AppendOutcome::Applied),
        "duplicate" => Ok(AppendOutcome::Duplicate),
        "degraded" => Ok(AppendOutcome::Degraded),
        other => Err(ProtoError(format!("unknown append outcome `{other}`"))),
    }
}

/// Encodes a cells reply body.
pub fn encode_cells_reply(cells: &[(u64, ProblemTally)]) -> String {
    let entries = cells
        .iter()
        .map(|(cell, tally)| {
            let mut fields = vec![("cell".to_string(), num(*cell))];
            fields.extend(tally_entries(tally));
            Value::Object(fields)
        })
        .collect();
    json::to_string(&Value::Object(vec![(
        "cells".to_string(),
        Value::Array(entries),
    )]))
}

/// Decodes a cells reply body.
///
/// # Errors
///
/// [`ProtoError`] on a missing or malformed `cells` array.
pub fn decode_cells_reply(v: &Value) -> Result<Vec<(u64, ProblemTally)>, ProtoError> {
    v.get("cells")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("missing `cells` array"))?
        .iter()
        .map(|entry| Ok((u64_field(entry, "cell")?, tally_fields(entry)?)))
        .collect()
}

/// Cumulative coordinator counters, served by the state route — the
/// drills' assertions about injected faults (dedup hits, fenced
/// leases) read these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordCounters {
    /// Lease claims that landed.
    pub claims: u64,
    /// Lease renewals that landed.
    pub renewals: u64,
    /// Lease advances refused by the fence.
    pub fenced: u64,
    /// Append batches applied.
    pub appends: u64,
    /// Journal records applied (cells + inherit marks + stats).
    pub records: u64,
    /// Append batches dropped as already-applied duplicates.
    pub duplicates: u64,
}

/// One shard's contribution in a state reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStateMsg {
    /// Shard index.
    pub shard: u32,
    /// Final (merge-visible) generation.
    pub generation: u32,
    /// Completed cells in the final generation's journal.
    pub cells: u64,
    /// Stale-generation cells quarantined by the fence.
    pub quarantined: u64,
}

/// The merged-state reply: per-shard accounting, the merged cell union
/// over final generations, and the coordinator's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordState {
    /// Per-shard accounting, ascending by shard.
    pub shards: Vec<ShardStateMsg>,
    /// Union of every final generation's completed cells.
    pub cells: Vec<(u64, ProblemTally)>,
    /// Cumulative coordinator counters.
    pub counters: CoordCounters,
}

/// Encodes a state reply body.
pub fn encode_state_reply(state: &CoordState) -> String {
    let shards = state
        .shards
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("shard".to_string(), num(u64::from(s.shard))),
                ("generation".to_string(), num(u64::from(s.generation))),
                ("cells".to_string(), num(s.cells)),
                ("quarantined".to_string(), num(s.quarantined)),
            ])
        })
        .collect();
    let cells = state
        .cells
        .iter()
        .map(|(cell, tally)| {
            let mut fields = vec![("cell".to_string(), num(*cell))];
            fields.extend(tally_entries(tally));
            Value::Object(fields)
        })
        .collect();
    let c = &state.counters;
    json::to_string(&Value::Object(vec![
        ("shards".to_string(), Value::Array(shards)),
        ("cells".to_string(), Value::Array(cells)),
        (
            "counters".to_string(),
            Value::Object(vec![
                ("claims".to_string(), num(c.claims)),
                ("renewals".to_string(), num(c.renewals)),
                ("fenced".to_string(), num(c.fenced)),
                ("appends".to_string(), num(c.appends)),
                ("records".to_string(), num(c.records)),
                ("duplicates".to_string(), num(c.duplicates)),
            ]),
        ),
    ]))
}

/// Decodes a state reply body.
///
/// # Errors
///
/// [`ProtoError`] on missing or malformed sections.
pub fn decode_state_reply(v: &Value) -> Result<CoordState, ProtoError> {
    let shards = v
        .get("shards")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("missing `shards` array"))?
        .iter()
        .map(|s| {
            Ok(ShardStateMsg {
                shard: u32_field(s, "shard")?,
                generation: u32_field(s, "generation")?,
                cells: u64_field(s, "cells")?,
                quarantined: u64_field(s, "quarantined")?,
            })
        })
        .collect::<Result<Vec<_>, ProtoError>>()?;
    let cells = v
        .get("cells")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("missing `cells` array"))?
        .iter()
        .map(|entry| Ok((u64_field(entry, "cell")?, tally_fields(entry)?)))
        .collect::<Result<Vec<_>, ProtoError>>()?;
    let c = v.get("counters").ok_or_else(|| bad("missing `counters`"))?;
    Ok(CoordState {
        shards,
        cells,
        counters: CoordCounters {
            claims: u64_field(c, "claims")?,
            renewals: u64_field(c, "renewals")?,
            fenced: u64_field(c, "fenced")?,
            appends: u64_field(c, "appends")?,
            records: u64_field(c, "records")?,
            duplicates: u64_field(c, "duplicates")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally(n: usize) -> ProblemTally {
        ProblemTally {
            n,
            syntax_passes: n / 2,
            functional_passes: n / 3,
        }
    }

    #[test]
    fn requests_roundtrip() {
        let lease = LeaseRequest {
            fingerprint: u64::MAX - 3,
            shard: 2,
            lease: LeaseRecord {
                generation: 1,
                worker: u64::MAX / 7,
                seq: 42,
                stamp_ms: 1_700_000_000_123,
            },
        };
        assert_eq!(LeaseRequest::decode(&lease.encode()).unwrap(), lease);

        let append = AppendRequest {
            fingerprint: 0x0123_4567_89ab_cdef,
            shard: 1,
            generation: 3,
            seq: 9,
            sync: true,
            records: vec![
                RecordMsg::Cell {
                    cell: u64::MAX - 1,
                    tally: tally(6),
                },
                RecordMsg::Inherited {
                    cell: 7,
                    tally: tally(2),
                },
                RecordMsg::Stats {
                    stats: ShardGenStats {
                        restored: 4,
                        evaluated: 5,
                    },
                },
            ],
        };
        assert_eq!(AppendRequest::decode(&append.encode()).unwrap(), append);

        let cells = CellsRequest {
            fingerprint: 11,
            shard: 0,
            generation: 2,
        };
        assert_eq!(CellsRequest::decode(&cells.encode()).unwrap(), cells);
        let state = StateRequest { fingerprint: 17 };
        assert_eq!(StateRequest::decode(&state.encode()).unwrap(), state);
    }

    #[test]
    fn replies_roundtrip() {
        for outcome in [
            LeaseAdvance::Claimed,
            LeaseAdvance::Renewed,
            LeaseAdvance::Fenced,
            LeaseAdvance::Degraded,
        ] {
            let body = encode_lease_reply(outcome);
            let v = json::parse(&body).unwrap();
            assert_eq!(decode_lease_reply(&v).unwrap(), outcome);
        }
        for outcome in [
            AppendOutcome::Applied,
            AppendOutcome::Duplicate,
            AppendOutcome::Degraded,
        ] {
            let body = encode_append_reply(outcome);
            let v = json::parse(&body).unwrap();
            assert_eq!(decode_append_reply(&v).unwrap(), outcome);
        }
        let cells = vec![(u64::MAX, tally(3)), (5, tally(1))];
        let v = json::parse(&encode_cells_reply(&cells)).unwrap();
        assert_eq!(decode_cells_reply(&v).unwrap(), cells);

        let state = CoordState {
            shards: vec![ShardStateMsg {
                shard: 0,
                generation: 2,
                cells: 6,
                quarantined: 1,
            }],
            cells,
            counters: CoordCounters {
                claims: 3,
                renewals: 40,
                fenced: 2,
                appends: 12,
                records: 14,
                duplicates: 5,
            },
        };
        let v = json::parse(&encode_state_reply(&state)).unwrap();
        assert_eq!(decode_state_reply(&v).unwrap(), state);
    }

    #[test]
    fn malformed_bodies_are_rejected_not_panicked() {
        assert!(LeaseRequest::decode("not json").is_err());
        assert!(LeaseRequest::decode("{}").is_err());
        assert!(AppendRequest::decode(r#"{"fingerprint":1,"shard":0,"generation":0,"seq":0,"sync":true,"records":[{"kind":"mystery"}]}"#).is_err());
        assert!(CellsRequest::decode(r#"{"fingerprint":1}"#).is_err());
        let v = json::parse(r#"{"outcome":"sideways"}"#).unwrap();
        assert!(decode_lease_reply(&v).is_err());
    }
}
