//! Property tests of coordinator append idempotency: for **any**
//! interleaving of duplicated, reordered and replayed append deliveries
//! across generations, the coordinator's journal state is a pure
//! function of the *set* of batches delivered —
//!
//! * the merged cell set over the final generation is exactly the
//!   scripted campaign's cells, with the final generation's tallies
//!   (stale post-fence writes never leak a value);
//! * the quarantined counter is exact: precisely the stale generation's
//!   post-fence cells, never double-counted by duplicates;
//! * the shard's generation statistics survive untouched;
//! * replaying the entire delivery history answers `duplicate` for
//!   every batch and leaves the state bit-identical.

use picbench_coord::proto::{self, AppendOutcome, AppendRequest, RecordMsg, StateRequest};
use picbench_coord::Coordinator;
use picbench_core::{collect_shard_cells, ProblemTally, ShardGenStats};
use picbench_netlist::json;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "picbench-coord-props-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const FINGERPRINT: u64 = 0xfeed_beef_cafe_0001;
const SHARD: u32 = 0;

fn cell_key(i: usize) -> u64 {
    (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn good_tally(i: usize) -> ProblemTally {
    ProblemTally {
        n: 4,
        syntax_passes: 1 + i % 3,
        functional_passes: i % 2,
    }
}

/// Deliberately different from any [`good_tally`]: if a stale write
/// ever leaks into the merge, the tally comparison catches it.
fn poison_tally() -> ProblemTally {
    ProblemTally {
        n: 99,
        syntax_passes: 99,
        functional_passes: 99,
    }
}

/// The scripted two-generation campaign history for one shard:
///
/// * generation 0 journals `inherited` cells, then is fenced;
/// * after the fence, the stale generation-0 worker journals `stale`
///   *more* cells (poison tallies) into its own directory;
/// * the generation-1 takeover inherits the `inherited` cells,
///   evaluates the remaining `total - inherited` fresh, and records
///   stats.
///
/// Every batch is one [`AppendRequest`] with a unique
/// `(generation, seq)` dedup key.
fn script(total: usize, inherited: usize, stale: usize) -> Vec<AppendRequest> {
    let gen1_base = 1u64 << 32;
    let mut batches = Vec::new();
    for i in 0..inherited {
        batches.push(AppendRequest {
            fingerprint: FINGERPRINT,
            shard: SHARD,
            generation: 0,
            seq: i as u64,
            sync: true,
            records: vec![RecordMsg::Cell {
                cell: cell_key(i),
                tally: good_tally(i),
            }],
        });
    }
    // Post-fence stale writes: the revived generation-0 worker keeps
    // going over cells the takeover will (re-)evaluate, with different
    // (poison) results.
    for s in 0..stale {
        let i = inherited + s;
        batches.push(AppendRequest {
            fingerprint: FINGERPRINT,
            shard: SHARD,
            generation: 0,
            seq: (inherited + s) as u64,
            sync: true,
            records: vec![RecordMsg::Cell {
                cell: cell_key(i),
                tally: poison_tally(),
            }],
        });
    }
    // Takeover: inherit in one batch, evaluate the rest, record stats.
    batches.push(AppendRequest {
        fingerprint: FINGERPRINT,
        shard: SHARD,
        generation: 1,
        seq: gen1_base,
        sync: true,
        records: (0..inherited)
            .map(|i| RecordMsg::Inherited {
                cell: cell_key(i),
                tally: good_tally(i),
            })
            .collect(),
    });
    for i in inherited..total {
        batches.push(AppendRequest {
            fingerprint: FINGERPRINT,
            shard: SHARD,
            generation: 1,
            seq: gen1_base + 1 + (i - inherited) as u64,
            sync: true,
            records: vec![RecordMsg::Cell {
                cell: cell_key(i),
                tally: good_tally(i),
            }],
        });
    }
    batches.push(AppendRequest {
        fingerprint: FINGERPRINT,
        shard: SHARD,
        generation: 1,
        seq: gen1_base + 1 + (total - inherited) as u64,
        sync: true,
        records: vec![RecordMsg::Stats {
            stats: ShardGenStats {
                restored: inherited as u64,
                evaluated: (total - inherited) as u64,
            },
        }],
    });
    batches
}

fn deliver(coordinator: &Coordinator, batch: &AppendRequest) -> AppendOutcome {
    let reply = coordinator.handle("append", &batch.encode());
    assert_eq!(reply.status, 200, "append rejected: {}", reply.body);
    let v = json::parse(&reply.body).expect("append reply is JSON");
    proto::decode_append_reply(&v).expect("append reply decodes")
}

/// Asserts the coordinator's journal state matches the script exactly.
fn assert_converged(root: &Path, total: usize, inherited: usize, stale: usize) {
    let collected = collect_shard_cells(root, FINGERPRINT).expect("collect");
    assert_eq!(collected.len(), 1, "one shard journalled");
    let shard = &collected[0];
    assert_eq!(shard.shard, SHARD);
    assert_eq!(shard.generation, 1, "merge reads the final generation");
    assert_eq!(
        shard.quarantined, stale,
        "quarantine accounting must be exact"
    );
    let cells: HashMap<u64, ProblemTally> = shard.cells.iter().copied().collect();
    assert_eq!(cells.len(), total, "merged cell set is the full range");
    for i in 0..total {
        assert_eq!(
            cells.get(&cell_key(i)),
            Some(&good_tally(i)),
            "cell {i}: stale write leaked or cell missing"
        );
    }
    assert_eq!(
        shard.stats,
        Some(ShardGenStats {
            restored: inherited as u64,
            evaluated: (total - inherited) as u64,
        })
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any shuffled interleaving with duplicated deliveries converges
    /// to the same exact state, and a full replay is all-duplicates and
    /// state-preserving.
    #[test]
    fn shuffled_duplicated_deliveries_converge_exactly(
        total in 2usize..10,
        inherited_frac in 0usize..=100,
        stale_frac in 0usize..=100,
        order_seed in any::<u64>(),
        dup_selector in any::<u64>(),
    ) {
        let inherited = inherited_frac * total / 101;
        let stale = stale_frac * (total - inherited) / 101;
        let batches = script(total, inherited, stale);

        // Delivery sequence: every batch once, plus a seed-chosen
        // subset duplicated, the whole thing shuffled. (A "duplicate"
        // delivered before its twin just swaps which delivery is the
        // original — the dedup key is what matters.)
        let mut sequence: Vec<usize> = (0..batches.len()).collect();
        for (i, _) in batches.iter().enumerate() {
            if (dup_selector >> (i % 64)) & 1 == 1 {
                sequence.push(i);
            }
        }
        let mut rng = order_seed | 1;
        for i in (1..sequence.len()).rev() {
            rng = picbench_store::xorshift64(rng);
            sequence.swap(i, (rng % (i as u64 + 1)) as usize);
        }

        let root = temp_dir("shuffle");
        let coordinator = Coordinator::new(&root);
        let mut applied = 0u64;
        let mut duplicates = 0u64;
        for &index in &sequence {
            match deliver(&coordinator, &batches[index]) {
                AppendOutcome::Applied => applied += 1,
                AppendOutcome::Duplicate => duplicates += 1,
                AppendOutcome::Degraded => panic!("store degraded in test"),
            }
        }
        prop_assert!(
            applied == batches.len() as u64,
            "each unique batch applies once: {applied} of {}",
            batches.len()
        );
        prop_assert_eq!(duplicates, (sequence.len() - batches.len()) as u64);
        assert_converged(&root, total, inherited, stale);

        // Full-history replay: all duplicates, nothing changes.
        for &index in &sequence {
            prop_assert_eq!(deliver(&coordinator, &batches[index]), AppendOutcome::Duplicate);
        }
        assert_converged(&root, total, inherited, stale);
        prop_assert_eq!(
            coordinator.counters().duplicates,
            duplicates + sequence.len() as u64
        );

        let _ = std::fs::remove_dir_all(&root);
    }

    /// The dedup set survives a coordinator restart: replays against a
    /// *fresh* coordinator over the same root still answer `duplicate`,
    /// and the state stays exact.
    #[test]
    fn replay_across_coordinator_restart_is_deduped(
        total in 2usize..8,
        inherited_frac in 0usize..=100,
        stale_frac in 0usize..=100,
    ) {
        let inherited = inherited_frac * total / 101;
        let stale = stale_frac * (total - inherited) / 101;
        let batches = script(total, inherited, stale);
        let root = temp_dir("restart");
        {
            let coordinator = Coordinator::new(&root);
            for batch in &batches {
                prop_assert_eq!(deliver(&coordinator, batch), AppendOutcome::Applied);
            }
            assert_converged(&root, total, inherited, stale);
        }
        // Fresh instance, same journal root: the applied markers were
        // journalled durably, so every replay is a duplicate.
        let coordinator = Coordinator::new(&root);
        for batch in &batches {
            prop_assert_eq!(deliver(&coordinator, batch), AppendOutcome::Duplicate);
        }
        assert_converged(&root, total, inherited, stale);
        prop_assert_eq!(coordinator.counters().duplicates, batches.len() as u64);

        // And the state route reports the same exact merged view.
        let reply = coordinator.handle("state", &StateRequest { fingerprint: FINGERPRINT }.encode());
        prop_assert_eq!(reply.status, 200);
        let v = json::parse(&reply.body).expect("state reply is JSON");
        let state = proto::decode_state_reply(&v).expect("state decodes");
        prop_assert_eq!(state.cells.len(), total);
        prop_assert_eq!(state.shards.len(), 1);
        prop_assert_eq!(state.shards[0].quarantined, stale as u64);

        let _ = std::fs::remove_dir_all(&root);
    }
}
