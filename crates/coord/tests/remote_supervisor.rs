//! End-to-end contracts of the remote journal seam, driven through the
//! *unchanged* PR-7 supervisor:
//!
//! * a campaign whose shard workers journal through a coordinator
//!   (loopback transport, no shared filesystem access by the workers)
//!   merges **bit-identical** to the single-process engine;
//! * under a deterministic network-fault plan — dropped deliveries on
//!   one shard (exhausting the client's retry budget), a partition
//!   window during another shard's lease claim (absorbed by retry), and
//!   duplicated deliveries on a third (deduped by the coordinator) —
//!   the campaign still completes bit-identically, with the dropped
//!   shard reassigned and the duplicate deliveries counted;
//! * a coordinator restart mid-campaign loses nothing: journalled
//!   batches replayed against the fresh instance answer `duplicate`,
//!   and new appends continue the same journal.

use picbench_coord::{
    AppendOutcome, AppendRequest, CoordClient, Coordinator, FaultyTransport, LoopbackTransport,
    NetFaultPlan, RecordMsg, RemoteJournal,
};
use picbench_core::{
    run_shard_worker_with, Campaign, CampaignConfig, CampaignEvent, CampaignReport, LeaseAdvance,
    LeaseRecord, ProblemTally, ShardLauncher, ShardLossReason, ShardWorkerConfig,
    ShardWorkerHandle, ShardWorkload, WorkerRequest, WorkerState,
};
use picbench_problems::Problem;
use picbench_sim::WavelengthGrid;
use picbench_store::xorshift64;
use picbench_synthllm::{ModelProfile, RetryPolicy};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "picbench-coord-remote-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn problems() -> Vec<Problem> {
    ["mzi-ps", "mzm"]
        .iter()
        .map(|id| picbench_problems::find(id).unwrap())
        .collect()
}

fn profiles() -> Vec<ModelProfile> {
    vec![ModelProfile::gpt4(), ModelProfile::claude35_sonnet()]
}

fn config() -> CampaignConfig {
    CampaignConfig {
        samples_per_problem: 2,
        k_values: vec![1, 2],
        feedback_iters: vec![0, 1],
        restrictions: false,
        seed: 77,
        grid: WavelengthGrid::paper_fast(),
        threads: 2,
        ..CampaignConfig::default()
    }
}

fn builder() -> picbench_core::CampaignBuilder {
    Campaign::builder()
        .problems(problems())
        .profiles(&profiles())
        .config(config())
}

fn control_report() -> CampaignReport {
    builder().build().unwrap().run()
}

/// A retry policy that actually sleeps (short, bounded backoffs) — the
/// loopback drills schedule real partition windows to wait out.
fn drill_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_backoff_ms: 30,
        max_backoff_ms: 100,
        budget_ms: 5_000,
        seed,
        sleep: true,
    }
}

/// A [`ShardLauncher`] whose workers are threads journalling through a
/// [`RemoteJournal`] → [`CoordClient`] → (optionally faulty) loopback
/// transport into one shared [`Coordinator`] — the full remote stack
/// minus the TCP socket, fully deterministic.
struct LoopbackRemoteLauncher {
    coordinator: Arc<Coordinator>,
    plans: Mutex<HashMap<(u32, u32), NetFaultPlan>>,
    next_worker: AtomicU64,
}

impl LoopbackRemoteLauncher {
    fn new(coordinator: Arc<Coordinator>) -> Self {
        LoopbackRemoteLauncher {
            coordinator,
            plans: Mutex::new(HashMap::new()),
            next_worker: AtomicU64::new(0),
        }
    }

    /// Arms a network-fault plan for the worker of `(shard, generation)`.
    fn inject(&self, shard: u32, generation: u32, plan: NetFaultPlan) {
        self.plans
            .lock()
            .expect("plans poisoned")
            .insert((shard, generation), plan);
    }
}

struct RemoteHandle {
    finished: Arc<AtomicBool>,
    clean: Arc<AtomicBool>,
}

impl ShardWorkerHandle for RemoteHandle {
    fn poll(&mut self) -> WorkerState {
        if self.finished.load(Ordering::Acquire) {
            WorkerState::Exited {
                clean: self.clean.load(Ordering::Acquire),
            }
        } else {
            WorkerState::Running
        }
    }

    fn kill(&mut self) {
        // These drills end workers through injected network faults, not
        // kills; the supervisor never needs this path here.
    }
}

impl ShardLauncher for LoopbackRemoteLauncher {
    fn launch(
        &self,
        workload: &Arc<ShardWorkload>,
        request: &WorkerRequest,
    ) -> io::Result<Box<dyn ShardWorkerHandle>> {
        let plan = self
            .plans
            .lock()
            .expect("plans poisoned")
            .get(&(request.shard, request.generation))
            .cloned()
            .unwrap_or_default();
        let transport = Arc::new(FaultyTransport::new(
            Arc::new(LoopbackTransport::new(Arc::clone(&self.coordinator))),
            plan,
        ));
        let seed = 0x6e7_1000 ^ u64::from(request.shard) << 8 ^ u64::from(request.generation);
        let client = Arc::new(CoordClient::with_policy(transport, drill_policy(seed)));
        let journal = RemoteJournal::new(client, request.shard, request.generation);
        let config = ShardWorkerConfig {
            shard: request.shard,
            generation: request.generation,
            shards: request.shards,
            root: request.root.clone(),
            worker_id: xorshift64(
                self.next_worker.fetch_add(1, Ordering::Relaxed) ^ 0x1357_9bdf_2468_ace0,
            ),
            stall: request.stall,
        };
        let workload = Arc::clone(workload);
        let finished = Arc::new(AtomicBool::new(false));
        let clean = Arc::new(AtomicBool::new(false));
        let handle = RemoteHandle {
            finished: Arc::clone(&finished),
            clean: Arc::clone(&clean),
        };
        std::thread::spawn(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_shard_worker_with(&workload, &config, &journal)
            }));
            if let Ok(Ok(report)) = outcome {
                clean.store(report.completed, Ordering::Release);
            }
            finished.store(true, Ordering::Release);
        });
        Ok(Box::new(handle))
    }
}

#[test]
fn remote_journalled_campaign_is_bit_identical() {
    let control = control_report();
    for shards in [2u32, 4] {
        let dir = temp_dir(&format!("clean-{shards}"));
        let coordinator = Arc::new(Coordinator::new(&dir));
        let launcher = Arc::new(LoopbackRemoteLauncher::new(Arc::clone(&coordinator)));
        let outcome = builder()
            .shards(shards)
            .shard_dir(&dir)
            .shard_launcher(launcher)
            .build()
            .unwrap()
            .execute();
        assert!(!outcome.cancelled);
        let report = outcome.report.expect("remote campaign completes");
        assert!(
            report.same_results(&control),
            "shards {shards}: remote-journalled report diverged"
        );
        let counters = coordinator.counters();
        assert!(
            counters.claims >= u64::from(shards),
            "every shard claims through the coordinator: {counters:?}"
        );
        assert!(counters.appends > 0 && counters.records > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// One campaign, three simultaneous network pathologies:
/// shard 1's deliveries are dropped until its retry budget exhausts
/// (the shard degrades and is reassigned), shard 2's lease claim lands
/// inside a partition window (absorbed by retry — no reassignment
/// required), and every other delivery of shard 0 is duplicated (the
/// coordinator dedups each one). The merged report must not move.
#[test]
fn faulty_transport_campaign_reassigns_dedupes_and_stays_bit_identical() {
    let control = control_report();
    let shards = 4u32;
    let drop_victim = 1u32;
    let partition_victim = 2u32;
    let duplicate_victim = 0u32;
    let dir = temp_dir("faulty");
    let coordinator = Arc::new(Coordinator::new(&dir));
    let launcher = Arc::new(LoopbackRemoteLauncher::new(Arc::clone(&coordinator)));
    // Ten consecutive dropped deliveries out-last the 8-attempt retry
    // budget no matter which protocol step call 5 lands on.
    launcher.inject(
        drop_victim,
        0,
        NetFaultPlan {
            drops: (5..15).collect(),
            ..NetFaultPlan::default()
        },
    );
    // Partition open exactly at the claim (call 0), 80 ms — two or
    // three 30 ms backoffs ride it out.
    launcher.inject(
        partition_victim,
        0,
        NetFaultPlan {
            partitions: vec![(0, 80)],
            ..NetFaultPlan::default()
        },
    );
    launcher.inject(
        duplicate_victim,
        0,
        NetFaultPlan {
            duplicate_period: Some(2),
            ..NetFaultPlan::default()
        },
    );

    let events: Arc<Mutex<Vec<CampaignEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&events);
    let outcome = builder()
        .shards(shards)
        .shard_dir(&dir)
        .shard_launcher(launcher)
        .observer(Arc::new(move |event: &CampaignEvent| {
            recorder.lock().unwrap().push(event.clone());
        }))
        .build()
        .unwrap()
        .execute();
    assert!(!outcome.cancelled);
    let report = outcome.report.expect("faulty campaign completes");
    assert!(
        report.same_results(&control),
        "network faults changed the merged report"
    );

    let events = events.lock().unwrap();
    assert!(
        events.iter().any(|e| matches!(
            e,
            CampaignEvent::ShardLost { shard, .. } if *shard == drop_victim
        )),
        "the drop victim never lost its shard"
    );
    assert!(
        events.iter().any(|e| matches!(
            e,
            CampaignEvent::ShardReassigned { shard, .. } if *shard == drop_victim
        )),
        "the drop victim was never reassigned"
    );
    assert!(
        !events.iter().any(|e| matches!(
            e,
            CampaignEvent::ShardLost {
                shard,
                reason: ShardLossReason::WorkerExited { .. },
                ..
            } if *shard == partition_victim
        )),
        "the partitioned claim should have been absorbed by retry"
    );
    let counters = coordinator.counters();
    assert!(
        counters.duplicates >= 1,
        "duplicated deliveries must hit the dedup path: {counters:?}"
    );
}

const FP: u64 = 0xabad_1dea_0000_0042;

fn tally(n: usize) -> ProblemTally {
    ProblemTally {
        n,
        syntax_passes: n / 2,
        functional_passes: n / 3,
    }
}

fn cell_batch(seq: u64, cell: u64) -> AppendRequest {
    AppendRequest {
        fingerprint: FP,
        shard: 0,
        generation: 0,
        seq,
        sync: true,
        records: vec![RecordMsg::Cell {
            cell,
            tally: tally(cell as usize),
        }],
    }
}

/// A coordinator restart mid-campaign: journalled batches survive, the
/// dedup set is rebuilt from the journal, and the campaign continues
/// against the fresh instance through the same client stack.
#[test]
fn coordinator_restart_resumes_without_losing_journalled_cells() {
    let dir = temp_dir("restart");
    let policy = RetryPolicy {
        max_attempts: 2,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        budget_ms: 100,
        seed: 3,
        sleep: false,
    };
    {
        let coordinator = Arc::new(Coordinator::new(&dir));
        let client =
            CoordClient::with_policy(Arc::new(LoopbackTransport::new(coordinator)), policy);
        let lease = LeaseRecord {
            generation: 0,
            worker: 11,
            seq: 0,
            stamp_ms: 1,
        };
        assert_eq!(client.advance_lease(FP, 0, &lease), LeaseAdvance::Claimed);
        assert_eq!(client.append(&cell_batch(0, 3)), AppendOutcome::Applied);
        assert_eq!(client.append(&cell_batch(1, 4)), AppendOutcome::Applied);
    } // Coordinator dropped — the "crash" (stores sync on drop).

    let coordinator = Arc::new(Coordinator::new(&dir));
    let client = CoordClient::with_policy(
        Arc::new(LoopbackTransport::new(Arc::clone(&coordinator))),
        policy,
    );
    // A retry of batch 1, replayed across the restart: still a
    // duplicate — the applied markers were journalled.
    assert_eq!(client.append(&cell_batch(1, 4)), AppendOutcome::Duplicate);
    // The campaign continues: new batches land, the worker's lease
    // renews (its in-memory seq outruns whatever the journal holds).
    assert_eq!(client.append(&cell_batch(2, 5)), AppendOutcome::Applied);
    let renewed = LeaseRecord {
        generation: 0,
        worker: 11,
        seq: 7,
        stamp_ms: 2,
    };
    assert_eq!(client.advance_lease(FP, 0, &renewed), LeaseAdvance::Renewed);
    let mut cells = client.fetch_cells(FP, 0, 0).expect("cells readable");
    cells.sort_unstable_by_key(|(key, _)| *key);
    assert_eq!(cells, vec![(3, tally(3)), (4, tally(4)), (5, tally(5))]);
    let state = client.fetch_state(FP).expect("state readable");
    assert_eq!(state.cells.len(), 3);
    assert_eq!(state.counters.duplicates, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
