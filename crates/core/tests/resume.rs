//! Crash/resume determinism and provider-resilience contracts of the
//! campaign engine:
//!
//! * a campaign killed at **any** cell boundary and resumed from its
//!   journal produces a report bit-identical to an uninterrupted run;
//! * a reopened store serves evaluation results from the disk tier
//!   (warm start) without changing any result;
//! * transient transport failures absorbed by the retry layer leave the
//!   report bit-identical to a failure-free run — zero spurious failure
//!   verdicts;
//! * a fatal failure schedule degrades into classified failures and
//!   never panics the campaign.

use picbench_core::{
    Campaign, CampaignConfig, CampaignEvent, CampaignReport, EvalStore, KillPoint, RetryPolicy,
    SharedEvalStore, TransportErrorKind,
};
use picbench_problems::Problem;
use picbench_sim::WavelengthGrid;
use picbench_synthllm::{FailureKind, FlakyProvider, FlakySchedule, ModelProfile, ModelProvider};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "picbench-resume-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn problems() -> Vec<Problem> {
    ["mzi-ps", "mzm"]
        .iter()
        .map(|id| picbench_problems::find(id).unwrap())
        .collect()
}

fn profiles() -> Vec<ModelProfile> {
    vec![ModelProfile::gpt4(), ModelProfile::claude35_sonnet()]
}

fn config() -> CampaignConfig {
    CampaignConfig {
        samples_per_problem: 2,
        k_values: vec![1, 2],
        feedback_iters: vec![0, 1],
        restrictions: false,
        seed: 77,
        grid: WavelengthGrid::paper_fast(),
        threads: 2,
        ..CampaignConfig::default()
    }
}

fn builder() -> picbench_core::CampaignBuilder {
    Campaign::builder()
        .problems(problems())
        .profiles(&profiles())
        .config(config())
}

fn control_report() -> CampaignReport {
    builder().build().unwrap().run()
}

fn open_store(dir: &PathBuf) -> SharedEvalStore {
    Arc::new(EvalStore::open(dir).expect("open eval store"))
}

#[test]
fn killed_at_every_cell_boundary_then_resumed_is_bit_identical() {
    let control = control_report();
    let cells = problems().len() * profiles().len() * config().feedback_iters.len();

    for boundary in 0..=cells {
        let dir = temp_dir(&format!("boundary-{boundary}"));

        // Phase 1: run with a kill point at this boundary. The store
        // handle is dropped before reopening, as a crashed process's
        // would be.
        {
            let store = open_store(&dir);
            let outcome = builder()
                .store(Arc::clone(&store))
                .kill_point(KillPoint::Stop {
                    after_cells: boundary,
                })
                .build()
                .unwrap()
                .execute();
            // The kill point guarantees at least `boundary` fresh cells
            // were journalled before the halt — racing workers may add
            // more, and near the end of the matrix they can finish the
            // whole run before the stop lands.
            assert!(
                outcome.cells_completed >= boundary,
                "boundary {boundary}: only {} cells completed",
                outcome.cells_completed
            );
            if outcome.cancelled {
                assert!(boundary < cells, "a kill point past the matrix never fires");
                assert!(outcome.report.is_none());
            } else {
                assert!(outcome.report.expect("complete").same_results(&control));
            }
            store.sync();
        }

        // Phase 2: resume from the journal.
        let store = open_store(&dir);
        assert!(
            !store.recovery().damaged(),
            "boundary {boundary}: clean shutdown must recover clean: {:?}",
            store.recovery()
        );
        let outcome = builder().resume_from(store).build().unwrap().execute();
        assert!(!outcome.cancelled);
        assert!(
            outcome.cells_restored >= boundary.min(cells),
            "boundary {boundary}: restored only {} cells",
            outcome.cells_restored
        );
        let resumed = outcome.report.expect("resumed run completes");
        assert!(
            resumed.same_results(&control),
            "boundary {boundary}: resumed report differs from uninterrupted control"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resumed_runs_emit_cell_restored_events_with_sane_counters() {
    let dir = temp_dir("events");
    let cells = problems().len() * profiles().len() * config().feedback_iters.len();
    {
        let store = open_store(&dir);
        let outcome = builder()
            .store(store)
            .kill_point(KillPoint::Stop { after_cells: 2 })
            .build()
            .unwrap()
            .execute();
        assert!(outcome.cancelled);
    }
    let events: Arc<Mutex<Vec<CampaignEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&events);
    let outcome = builder()
        .resume_from(open_store(&dir))
        .observer(Arc::new(move |event: &CampaignEvent| {
            recorder.lock().unwrap().push(event.clone());
        }))
        .build()
        .unwrap()
        .execute();
    let events = events.lock().unwrap();
    let restored: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            CampaignEvent::CellRestored {
                completed, total, ..
            } => Some((*completed, *total)),
            _ => None,
        })
        .collect();
    assert_eq!(restored.len(), outcome.cells_restored);
    assert!(restored.len() >= 2, "at least the journalled cells replay");
    for (i, (completed, total)) in restored.iter().enumerate() {
        assert_eq!(*completed, i + 1, "restored counter is monotone");
        assert_eq!(*total, cells);
    }
    // Restored cells replay before any worker starts a fresh cell.
    let first_started = events
        .iter()
        .position(|e| matches!(e, CampaignEvent::CellStarted { .. }));
    let last_restored = events
        .iter()
        .rposition(|e| matches!(e, CampaignEvent::CellRestored { .. }));
    if let (Some(started), Some(restored)) = (first_started, last_restored) {
        assert!(restored < started, "CellRestored precedes CellStarted");
    }
    // The final CellFinished counter accounts for restored cells too.
    let final_completed = events
        .iter()
        .filter_map(|e| match e {
            CampaignEvent::CellFinished { completed, .. } => Some(*completed),
            _ => None,
        })
        .max();
    assert_eq!(final_completed, Some(cells));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_start_serves_from_the_disk_tier_without_changing_results() {
    let dir = temp_dir("warm");
    let cold = {
        let store = open_store(&dir);
        let report = builder().store(Arc::clone(&store)).build().unwrap().run();
        store.sync();
        report
    };
    // Same campaign, fresh store handle, no resume: every cell
    // re-evaluates, but simulations come back from the disk tier.
    let warm_report = builder().store(open_store(&dir)).build().unwrap().run();
    assert!(warm_report.same_results(&cold));
    let stats = warm_report.cache_stats.expect("cache on by default");
    assert!(
        stats.disk_hits > 0,
        "warm start must hit the disk tier: {stats:?}"
    );

    // With resume, the journal replays every cell outright.
    let cells = problems().len() * profiles().len() * config().feedback_iters.len();
    let outcome = builder()
        .resume_from(open_store(&dir))
        .build()
        .unwrap()
        .execute();
    assert_eq!(outcome.cells_restored, cells);
    assert!(outcome.report.expect("complete").same_results(&cold));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Wraps every profile in a [`FlakyProvider`] with the given schedule,
/// keeping the clean display names so reports stay comparable.
fn flaky_providers(kinds: Vec<FailureKind>, period: usize) -> Vec<Arc<dyn ModelProvider>> {
    profiles()
        .into_iter()
        .map(|profile| {
            let name = ModelProvider::name(&profile).to_string();
            Arc::new(
                FlakyProvider::with_schedule(
                    Arc::new(profile),
                    FlakySchedule::Periodic {
                        period,
                        kinds: kinds.clone(),
                    },
                )
                .with_name(name),
            ) as Arc<dyn ModelProvider>
        })
        .collect()
}

#[test]
fn transient_failures_under_retry_leave_the_report_bit_identical() {
    let control = control_report();
    let events: Arc<Mutex<Vec<CampaignEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&events);
    let report = Campaign::builder()
        .problems(problems())
        .providers(flaky_providers(
            vec![
                FailureKind::RateLimit,
                FailureKind::TransientIo,
                FailureKind::Timeout,
            ],
            3,
        ))
        .config(config())
        .retry_policy(RetryPolicy::default())
        .observer(Arc::new(move |event: &CampaignEvent| {
            if matches!(
                event,
                CampaignEvent::SampleRetried { .. } | CampaignEvent::SampleDegraded { .. }
            ) {
                recorder.lock().unwrap().push(event.clone());
            }
        }))
        .build()
        .unwrap()
        .run();

    // Zero spurious failure verdicts: the flaky run scores exactly like
    // the failure-free one.
    assert!(
        report.same_results(&control),
        "transient failures leaked into the report"
    );
    let events = events.lock().unwrap();
    let retried = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::SampleRetried { .. }))
        .count();
    let degraded = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::SampleDegraded { .. }))
        .count();
    assert!(retried > 0, "the schedule must actually inject failures");
    assert_eq!(degraded, 0, "isolated transient failures never degrade");
}

#[test]
fn fatal_failures_degrade_into_classified_failures_without_panicking() {
    let events: Arc<Mutex<Vec<CampaignEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&events);
    let outcome = Campaign::builder()
        .problems(problems())
        .providers(flaky_providers(vec![FailureKind::Fatal], 4))
        .config(config())
        .retry_policy(RetryPolicy::default())
        .observer(Arc::new(move |event: &CampaignEvent| {
            if matches!(event, CampaignEvent::SampleDegraded { .. }) {
                recorder.lock().unwrap().push(event.clone());
            }
        }))
        .build()
        .unwrap()
        .execute();

    // The campaign completes: fatal transport failures become failure
    // responses the classifier handles, never panics or hangs.
    let report = outcome.report.expect("campaign completes");
    for cell in &report.cells {
        assert!((0.0..=100.0).contains(&cell.syntax));
        assert!((0.0..=100.0).contains(&cell.functional));
    }
    let events = events.lock().unwrap();
    assert!(!events.is_empty(), "fatal schedule must degrade samples");
    for event in events.iter() {
        if let CampaignEvent::SampleDegraded { kind, attempts, .. } = event {
            assert_eq!(*kind, TransportErrorKind::Fatal);
            assert_eq!(*attempts, 1, "fatal failures degrade without retrying");
        }
    }
}
