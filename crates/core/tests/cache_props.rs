//! Property tests of the content-addressed evaluation pipeline: cached
//! evaluation must be **bit-identical** to cold evaluation over random
//! netlists and grids, and permuted-but-identical documents must share
//! one cache entry and one frequency response.

use picbench_core::{EvalCache, Evaluator};
use picbench_netlist::{Connection, Instance, Netlist, OrderedMap};
use picbench_problems::Problem;
use picbench_sim::{Backend, WavelengthGrid};
use proptest::prelude::*;
use std::sync::Arc;

/// A randomized two-arm interferometer: golden-problem-shaped but with
/// arbitrary arm lengths, entered in a permutation-driven order.
fn random_mzi(arm_top: f64, arm_bottom: f64, perm: u64) -> Netlist {
    let mut sections: Vec<(String, Instance)> = vec![
        ("split".into(), Instance::new("mmi1x2")),
        ("combine".into(), Instance::new("mmi1x2")),
        (
            "top".into(),
            Instance::new("waveguide").with_setting("length", arm_top),
        ),
        (
            "bottom".into(),
            Instance::new("waveguide").with_setting("length", arm_bottom),
        ),
    ];
    let section_shift = (perm % sections.len() as u64) as usize;
    sections.rotate_left(section_shift);

    let mut n = Netlist::default();
    for (name, inst) in sections {
        n.instances.insert(name, inst);
    }
    let mut connections = vec![
        Connection {
            a: "split,O1".parse().unwrap(),
            b: "top,I1".parse().unwrap(),
        },
        Connection {
            a: "split,O2".parse().unwrap(),
            b: "bottom,I1".parse().unwrap(),
        },
        Connection {
            a: "top,O1".parse().unwrap(),
            b: "combine,O1".parse().unwrap(),
        },
        Connection {
            a: "bottom,O1".parse().unwrap(),
            b: "combine,O2".parse().unwrap(),
        },
    ];
    let connection_shift = (perm / 7 % connections.len() as u64) as usize;
    connections.rotate_left(connection_shift);
    if perm.is_multiple_of(2) {
        for c in &mut connections {
            std::mem::swap(&mut c.a, &mut c.b);
        }
    }
    n.connections = connections;
    let mut ports = OrderedMap::new();
    if perm.is_multiple_of(3) {
        ports.insert("O1".to_string(), "combine,I1".parse().unwrap());
        ports.insert("I1".to_string(), "split,I1".parse().unwrap());
    } else {
        ports.insert("I1".to_string(), "split,I1".parse().unwrap());
        ports.insert("O1".to_string(), "combine,I1".parse().unwrap());
    }
    n.ports = ports;
    n.models.insert("mmi1x2".to_string(), "mmi1x2".to_string());
    n.models
        .insert("waveguide".to_string(), "waveguide".to_string());
    n
}

fn problem() -> Problem {
    picbench_problems::find("mzi-ps").unwrap()
}

fn wrap(netlist: &Netlist) -> String {
    format!("<result>\n{}\n</result>", netlist.to_json_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cached_evaluation_is_bit_identical_to_cold(
        arm_top in 1.0f64..60.0,
        arm_bottom in 1.0f64..60.0,
        perm in any::<u64>(),
        points in 2usize..24,
        backend_flip in any::<bool>(),
    ) {
        let backend = if backend_flip { Backend::Dense } else { Backend::PortElimination };
        let grid = WavelengthGrid::new(1.51, 1.59, points);
        let problem = problem();
        let netlist = random_mzi(arm_top, arm_bottom, perm);
        let permuted = random_mzi(arm_top, arm_bottom, perm.wrapping_add(1));
        prop_assert_eq!(netlist.content_hash(), permuted.content_hash());

        let cache = Arc::new(EvalCache::new());
        let mut cached = Evaluator::new(grid, backend).with_cache(Arc::clone(&cache));
        let mut cold = Evaluator::new(grid, backend);

        // Cold response vs the response that seeds the cache: identical bits.
        let cold_response = cold
            .candidate_response(&problem, &netlist)
            .expect("mzi candidate is structurally valid");
        let warm_response = cached
            .candidate_response(&problem, &netlist)
            .expect("mzi candidate is structurally valid");
        prop_assert_eq!(&*cold_response, &*warm_response);

        // A replay — and a permuted twin — must return the *same shared*
        // response object, and the verdict reports must agree.
        let replay = cached.candidate_response(&problem, &netlist).unwrap();
        prop_assert!(Arc::ptr_eq(&warm_response, &replay));
        let twin = cached.candidate_response(&problem, &permuted).unwrap();
        prop_assert!(Arc::ptr_eq(&warm_response, &twin));
        // The cold evaluator sees the permuted document for the first
        // time; canonical simulation makes it bit-identical anyway.
        let cold_twin = cold.candidate_response(&problem, &permuted).unwrap();
        prop_assert_eq!(&*cold_twin, &*warm_response);

        let report_cold = cold.evaluate_response(&problem, &wrap(&netlist));
        let report_cached = cached.evaluate_response(&problem, &wrap(&netlist));
        prop_assert_eq!(report_cold.syntax_pass(), report_cached.syntax_pass());
        prop_assert_eq!(report_cold.functional, report_cached.functional);
        prop_assert_eq!(report_cold.comparison, report_cached.comparison);

        let stats = cache.stats();
        // One structure, one sweep.
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(cache.simulation_count(), 1);
    }
}
