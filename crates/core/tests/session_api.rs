//! Integration tests of the session-oriented campaign API: provider
//! fan-out vs the legacy profile path, streaming events, cooperative
//! cancellation, and resilience providers.

use picbench_core::{
    run_campaign, Campaign, CampaignBuildError, CampaignConfig, CampaignEvent, CancelToken,
};
use picbench_problems::Problem;
use picbench_synthllm::{FlakyProvider, ModelProfile, ModelProvider, ReplayLlm};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

fn problems() -> Vec<Problem> {
    ["mzi-ps", "mzm", "umatrix", "direct-modulator"]
        .iter()
        .map(|id| picbench_problems::find(id).unwrap())
        .collect()
}

fn config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        samples_per_problem: 3,
        k_values: vec![1, 3],
        feedback_iters: vec![0, 1],
        seed: 77,
        threads,
        ..CampaignConfig::default()
    }
}

#[test]
fn provider_campaign_is_bit_identical_to_legacy_path_across_threads() {
    let profiles = vec![ModelProfile::gpt4(), ModelProfile::claude35_sonnet()];
    let legacy = run_campaign(&profiles, &problems(), &config(1));
    for threads in [1, 2, 5] {
        let session = Campaign::builder()
            .problems(problems())
            .providers(
                profiles
                    .iter()
                    .map(|p| Arc::new(p.clone()) as Arc<dyn ModelProvider>),
            )
            .config(config(threads))
            .build()
            .unwrap()
            .run();
        assert!(
            legacy.same_results(&session),
            "dyn ModelProvider path diverged from the legacy path at {threads} threads"
        );
        // Bit-identical, not approximately equal: the score rows match
        // exactly, f64 bits included.
        for (a, b) in legacy.cells.iter().zip(&session.cells) {
            assert_eq!(a, b);
        }
    }
}

#[test]
fn observer_sees_one_cell_finished_per_cell_and_a_well_formed_stream() {
    let (tx, rx) = mpsc::channel();
    let problems = problems();
    let campaign = Campaign::builder()
        .problems(problems.clone())
        .profiles(&[ModelProfile::gpt4o()])
        .config(config(3))
        .observer(Arc::new(move |event: &CampaignEvent| {
            let _ = tx.send(event.clone());
        }))
        .build()
        .unwrap();
    let report = campaign.run();
    let events: Vec<CampaignEvent> = rx.try_iter().collect();

    // 4 problems × 1 model × 2 feedback settings.
    let expected_cells = 8;
    assert_eq!(report.conditions.len(), 2);
    assert!(matches!(
        events.first(),
        Some(CampaignEvent::CampaignStarted {
            problems: 4,
            providers: 1,
            cells: 8,
        })
    ));
    let started = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::CellStarted { .. }))
        .count();
    let finished: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            CampaignEvent::CellFinished {
                problem_id,
                model,
                feedback_iters,
                tally,
                ..
            } => Some((problem_id.clone(), model.clone(), *feedback_iters, *tally)),
            _ => None,
        })
        .collect();
    assert_eq!(started, expected_cells);
    assert_eq!(finished.len(), expected_cells, "one CellFinished per cell");
    // Every (problem × model × feedback) combination appears exactly once,
    // and its streamed tally matches the aggregated report.
    for problem in &problems {
        for &ef in &[0usize, 1] {
            let matches: Vec<_> = finished
                .iter()
                .filter(|(pid, model, f, _)| pid == &problem.id && model == "GPT-4o" && *f == ef)
                .collect();
            assert_eq!(matches.len(), 1, "{} ef={ef}", problem.id);
            let condition = report
                .conditions
                .iter()
                .find(|c| c.feedback_iters == ef)
                .unwrap();
            assert_eq!(condition.tallies[&problem.id], matches[0].3);
        }
    }
    assert!(events
        .iter()
        .any(|e| matches!(e, CampaignEvent::CacheStats(_))));
    assert!(matches!(
        events.last(),
        Some(CampaignEvent::CampaignFinished {
            cells_completed: 8,
            cells_total: 8,
            cancelled: false,
        })
    ));
}

#[test]
fn cancel_token_leaves_a_well_formed_partial_event_stream() {
    let token = CancelToken::new();
    let events: Arc<Mutex<Vec<CampaignEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let cancel_after = 3usize;
    let trigger = token.clone();
    let campaign = Campaign::builder()
        .problems(problems())
        .profiles(&[ModelProfile::gpt4(), ModelProfile::gemini15_pro()])
        .config(CampaignConfig {
            threads: 1, // deterministic cell order, so the cut is exact
            ..config(1)
        })
        .observer(Arc::new(move |event: &CampaignEvent| {
            let mut events = sink.lock().unwrap();
            events.push(event.clone());
            let finished = events
                .iter()
                .filter(|e| matches!(e, CampaignEvent::CellFinished { .. }))
                .count();
            if finished >= cancel_after {
                trigger.cancel();
            }
        }))
        .cancel_token(token.clone())
        .build()
        .unwrap();

    let outcome = campaign.execute();
    assert!(outcome.cancelled);
    assert!(outcome.report.is_none());
    assert_eq!(outcome.cells_total, 16);
    assert_eq!(outcome.cells_completed, cancel_after);

    let events = events.lock().unwrap();
    // Well-formed partial stream: CampaignStarted first, every started
    // cell also finished (cancellation only cuts at cell boundaries), and
    // a cancelled CampaignFinished closes the stream.
    assert!(matches!(
        events.first(),
        Some(CampaignEvent::CampaignStarted { .. })
    ));
    let started = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::CellStarted { .. }))
        .count();
    let finished = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::CellFinished { .. }))
        .count();
    assert_eq!(started, cancel_after);
    assert_eq!(finished, cancel_after);
    assert!(matches!(
        events.last(),
        Some(CampaignEvent::CampaignFinished {
            cells_completed,
            cells_total: 16,
            cancelled: true,
        }) if *cells_completed == cancel_after
    ));
}

#[test]
fn pre_cancelled_campaign_completes_no_cells() {
    let token = CancelToken::new();
    token.cancel();
    let outcome = Campaign::builder()
        .problems(problems())
        .profiles(&[ModelProfile::gpt4()])
        .config(config(2))
        .cancel_token(token)
        .build()
        .unwrap()
        .execute();
    assert!(outcome.cancelled);
    assert_eq!(outcome.cells_completed, 0);
    assert!(outcome.report.is_none());
}

#[test]
fn builder_validates_degenerate_matrices() {
    assert_eq!(
        Campaign::builder()
            .profiles(&[ModelProfile::gpt4()])
            .build()
            .unwrap_err(),
        CampaignBuildError::NoProblems
    );
    assert_eq!(
        Campaign::builder()
            .problems(problems())
            .build()
            .unwrap_err(),
        CampaignBuildError::NoProviders
    );
    assert_eq!(
        Campaign::builder()
            .problems(problems())
            .profiles(&[ModelProfile::gpt4()])
            .k_values([])
            .build()
            .unwrap_err(),
        CampaignBuildError::NoKValues
    );
    assert_eq!(
        Campaign::builder()
            .problems(problems())
            .profiles(&[ModelProfile::gpt4()])
            .feedback_iters([])
            .build()
            .unwrap_err(),
        CampaignBuildError::NoFeedbackSettings
    );
    assert_eq!(
        Campaign::builder()
            .problems(problems())
            .profiles(&[ModelProfile::gpt4()])
            .samples_per_problem(0)
            .build()
            .unwrap_err(),
        CampaignBuildError::ZeroSamples
    );
    let duplicated = [problems(), problems()].concat();
    assert!(matches!(
        Campaign::builder()
            .problems(duplicated)
            .profiles(&[ModelProfile::gpt4()])
            .build()
            .unwrap_err(),
        CampaignBuildError::DuplicateProblemId(_)
    ));
    assert!(matches!(
        Campaign::builder()
            .problems(problems())
            .profiles(&[ModelProfile::gpt4(), ModelProfile::gpt4()])
            .build()
            .unwrap_err(),
        CampaignBuildError::DuplicateProviderName(_)
    ));
}

#[test]
fn replay_provider_drives_a_deterministic_campaign() {
    let problem = picbench_problems::find("mzi-ps").unwrap();
    let golden_response = format!(
        "<analysis>recorded run</analysis>\n<result>\n{}\n</result>",
        problem.golden.to_json_string()
    );
    let mut replay = ReplayLlm::new("Recorded API model");
    for sample in 0..2 {
        replay = replay.with_response(problem.id.clone(), sample, golden_response.clone());
    }
    let campaign = Campaign::builder()
        .problem(problem)
        .provider(Arc::new(replay))
        .samples_per_problem(2)
        .k_values([1])
        .feedback_iters([0])
        .build()
        .unwrap();
    let a = campaign.run();
    let b = campaign.run();
    assert!(a.same_results(&b));
    let cell = a.cell("Recorded API model", 0, 1).unwrap();
    assert_eq!(cell.syntax, 100.0);
    assert_eq!(cell.functional, 100.0);
}

#[test]
fn flaky_provider_degrades_scores_but_keeps_the_campaign_deterministic() {
    let problems = problems();
    let steady: Arc<dyn ModelProvider> = Arc::new(ModelProfile::claude35_sonnet());
    // Fail every second response: first attempts alternate between real
    // generations and rate-limit noise, so syntax scores must drop.
    let flaky: Arc<dyn ModelProvider> = Arc::new(FlakyProvider::new(Arc::clone(&steady), 2));
    let run = |provider: &Arc<dyn ModelProvider>, threads: usize| {
        Campaign::builder()
            .problems(problems.clone())
            .provider(Arc::clone(provider))
            .config(config(threads))
            .build()
            .unwrap()
            .run()
    };
    let steady_report = run(&steady, 2);
    let flaky_report = run(&flaky, 2);
    assert!(flaky_report.same_results(&run(&flaky, 1)));
    let steady_cell = steady_report.cell("Claude 3.5 Sonnet", 0, 1).unwrap();
    let flaky_cell = flaky_report
        .cell("Claude 3.5 Sonnet [flaky]", 0, 1)
        .unwrap();
    assert!(
        flaky_cell.syntax < steady_cell.syntax,
        "injected rate-limit responses must cost syntax passes: {} vs {}",
        flaky_cell.syntax,
        steady_cell.syntax
    );
}
