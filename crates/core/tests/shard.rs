//! Fault-tolerance contracts of sharded campaign execution:
//!
//! * a sharded campaign's merged report is **bit-identical** to the
//!   single-process engine for any shard count;
//! * a worker killed at any cell boundary of any shard is detected,
//!   its shard reassigned, and the merged report stays bit-identical;
//! * a *stalled* (not dead) worker loses its lease, its shard is
//!   reassigned, and when the stalled worker revives its journal writes
//!   are quarantined — fenced out of the merge — not merged;
//! * a supervisor that dies mid-reassignment can be replaced by a fresh
//!   supervisor over the same journal root, which resumes from the
//!   journalled generations and still produces the identical report;
//! * the merge is partition-independent: *any* assignment of cells to
//!   shard journals (not just the planner's contiguous ranges, any
//!   count 1..=8) merges to the same report bytes.

use picbench_core::supervisor::WorkerFault;
use picbench_core::{
    Campaign, CampaignBuildError, CampaignConfig, CampaignEvent, CampaignReport, CancelToken,
    EvalSnapshot, EvalStore, InProcessLauncher, LeaseConfig, ShardLossReason, ShardMergeError,
    TestClock,
};
use picbench_problems::Problem;
use picbench_sim::WavelengthGrid;
use picbench_synthllm::ModelProfile;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "picbench-shard-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn problems() -> Vec<Problem> {
    ["mzi-ps", "mzm"]
        .iter()
        .map(|id| picbench_problems::find(id).unwrap())
        .collect()
}

fn profiles() -> Vec<ModelProfile> {
    vec![ModelProfile::gpt4(), ModelProfile::claude35_sonnet()]
}

fn config() -> CampaignConfig {
    CampaignConfig {
        samples_per_problem: 2,
        k_values: vec![1, 2],
        feedback_iters: vec![0, 1],
        restrictions: false,
        seed: 77,
        grid: WavelengthGrid::paper_fast(),
        threads: 2,
        ..CampaignConfig::default()
    }
}

fn total_cells() -> usize {
    problems().len() * profiles().len() * config().feedback_iters.len()
}

fn builder() -> picbench_core::CampaignBuilder {
    Campaign::builder()
        .problems(problems())
        .profiles(&profiles())
        .config(config())
}

fn control_report() -> CampaignReport {
    builder().build().unwrap().run()
}

/// An observer that records every event for post-hoc assertions.
fn recording_observer() -> (
    Arc<Mutex<Vec<CampaignEvent>>>,
    Arc<dyn picbench_core::CampaignObserver>,
) {
    let events: Arc<Mutex<Vec<CampaignEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&events);
    let observer = Arc::new(move |event: &CampaignEvent| {
        recorder.lock().unwrap().push(event.clone());
    });
    (events, observer)
}

#[test]
fn sharded_report_is_bit_identical_for_any_shard_count() {
    let control = control_report();
    for shards in [2u32, 3, 4, 8] {
        let dir = temp_dir(&format!("count-{shards}"));
        let outcome = builder()
            .shards(shards)
            .shard_dir(&dir)
            .build()
            .unwrap()
            .execute();
        assert!(!outcome.cancelled, "shards {shards}: cancelled");
        assert_eq!(outcome.cells_completed, total_cells());
        let report = outcome.report.expect("sharded run completes");
        assert!(
            report.same_results(&control),
            "shards {shards}: merged report differs from single-process engine"
        );
        assert!(
            report.cache_stats.is_none(),
            "merged reports carry no cache counters"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn worker_killed_at_every_shard_boundary_is_reassigned_bit_identically() {
    let control = control_report();
    let shards = 4u32;
    let cells_per_shard = total_cells() / shards as usize; // 8 cells / 4 shards = 2
    for victim in 0..shards {
        for boundary in 0..cells_per_shard {
            let dir = temp_dir(&format!("kill-{victim}-{boundary}"));
            let launcher = Arc::new(InProcessLauncher::new());
            launcher.inject(victim, 0, WorkerFault::DieAfterCells(boundary));
            let (events, observer) = recording_observer();
            let outcome = builder()
                .shards(shards)
                .shard_dir(&dir)
                .shard_launcher(launcher)
                .observer(observer)
                .build()
                .unwrap()
                .execute();
            let report = outcome.report.expect("campaign survives the kill");
            assert!(
                report.same_results(&control),
                "victim {victim} boundary {boundary}: report diverged"
            );
            let events = events.lock().unwrap();
            assert!(
                events.iter().any(|e| matches!(
                    e,
                    CampaignEvent::ShardLost {
                        shard,
                        generation: 0,
                        reason: ShardLossReason::WorkerExited { clean: false },
                        ..
                    } if *shard == victim
                )),
                "victim {victim} boundary {boundary}: no ShardLost for the dead worker"
            );
            assert!(
                events.iter().any(|e| matches!(
                    e,
                    CampaignEvent::ShardReassigned {
                        shard,
                        from_generation: 0,
                        to_generation: 1,
                    } if *shard == victim
                )),
                "victim {victim} boundary {boundary}: no ShardReassigned"
            );
            // The reassigned generation inherits the victim's journalled
            // cells instead of redoing them.
            let lost_cells = events
                .iter()
                .find_map(|e| match e {
                    CampaignEvent::ShardLost {
                        shard, cells_done, ..
                    } if *shard == victim => Some(*cells_done),
                    _ => None,
                })
                .unwrap();
            assert!(lost_cells >= boundary, "journal lost cells it had fsync'd");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The double-claim race: a worker that *stalls* (lease expires, shard
/// reassigned) and then revives must not corrupt the campaign — its
/// post-fence journal writes are quarantined by the generation fence.
#[test]
fn revived_stalled_worker_is_fenced_and_its_writes_quarantined() {
    let control = control_report();
    let shards = 4u32;
    let stalled_shard = 1u32;
    let dir = temp_dir("revive");
    let clock = TestClock::new(1_000_000);
    let lease = LeaseConfig {
        ttl_ms: 4_000,
        poll_ms: 50,
        max_takeovers: 16,
    };
    let launcher = Arc::new(InProcessLauncher::new());
    let release = Arc::new(AtomicBool::new(false));
    launcher.inject(
        stalled_shard,
        0,
        WorkerFault::StallAfterCells {
            cells: 1,
            release: Arc::clone(&release),
        },
    );

    // Drive the drill from the event stream: once the victim's first
    // cell is journalled (it stalls right after), grant the supervisor
    // enough virtual time to expire the lease; once the replacement
    // generation has verifiably finished its restore pass (lease seq 2
    // comes after it), release the stalled worker so it revives and
    // keeps writing into its fenced generation.
    let events: Arc<Mutex<Vec<CampaignEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&events);
    let clock_for_observer = Arc::clone(&clock);
    let release_for_observer = Arc::clone(&release);
    let granted = AtomicBool::new(false);
    let observer = Arc::new(move |event: &CampaignEvent| {
        recorder.lock().unwrap().push(event.clone());
        if let CampaignEvent::ShardHeartbeat {
            shard,
            generation,
            seq,
            cells_done,
        } = event
        {
            if *shard == stalled_shard
                && *generation == 0
                && *cells_done >= 1
                && !granted.swap(true, Ordering::AcqRel)
            {
                clock_for_observer.grant_auto_advance(4_000 + 500);
            }
            if *shard == stalled_shard && *generation == 1 && *seq >= 2 {
                release_for_observer.store(true, Ordering::Release);
            }
        }
    });

    let campaign = builder()
        .shards(shards)
        .shard_dir(&dir)
        .shard_launcher(launcher)
        .lease_config(lease)
        .clock(clock)
        .observer(observer)
        .build()
        .unwrap();
    let fingerprint = campaign.fingerprint();
    let outcome = campaign.execute();
    let report = outcome.report.expect("campaign survives the stall");
    assert!(
        report.same_results(&control),
        "revived worker's stale writes leaked into the merge"
    );
    {
        let events = events.lock().unwrap();
        assert!(
            events.iter().any(|e| matches!(
                e,
                CampaignEvent::ShardLost {
                    shard,
                    reason: ShardLossReason::LeaseExpired,
                    ..
                } if *shard == stalled_shard
            )),
            "the stalled worker's lease never expired"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                CampaignEvent::ShardReassigned { shard, .. } if *shard == stalled_shard
            )),
            "the stalled shard was never reassigned"
        );
    }

    // Wait for the revived worker to finish its (fenced) generation —
    // it journals its remaining cell and its stats into gen-000 — then
    // re-merge: the stale writes must be quarantined, the report
    // unchanged.
    let gen0 = picbench_core::shard_journal_dir(&dir, stalled_shard, 0);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let snap = EvalSnapshot::load(&gen0).expect("gen-0 journal readable");
        if snap.shard_stats(fingerprint, stalled_shard).is_some() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "revived worker never finished its fenced generation"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let merged = campaign.merge_from_shards(&dir).expect("re-merge");
    assert!(merged.report.same_results(&control));
    let stalled_info = merged
        .shards
        .iter()
        .find(|info| info.shard == stalled_shard)
        .expect("stalled shard merged");
    assert!(
        stalled_info.generation >= 1,
        "merge must read the replacement generation"
    );
    assert!(
        stalled_info.quarantined >= 1,
        "the revived worker's post-fence write must be quarantined: {stalled_info:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fresh_supervisor_resumes_mid_reassignment_bit_identically() {
    let control = control_report();
    let shards = 4u32;
    let dir = temp_dir("restart");

    // First supervisor: shard 0's worker dies, and the supervisor is
    // cancelled the moment it starts the reassignment — leaving a
    // half-reassigned journal root behind, possibly with a freshly
    // launched (and promptly killed) generation-1 worker.
    let cancel = CancelToken::new();
    let cancel_on_reassign = cancel.clone();
    let launcher = Arc::new(InProcessLauncher::new());
    launcher.inject(0, 0, WorkerFault::DieAfterCells(1));
    let outcome = builder()
        .shards(shards)
        .shard_dir(&dir)
        .shard_launcher(launcher)
        .cancel_token(cancel.clone())
        .observer(Arc::new(move |event: &CampaignEvent| {
            if matches!(event, CampaignEvent::ShardReassigned { shard: 0, .. }) {
                cancel_on_reassign.cancel();
            }
        }))
        .build()
        .unwrap()
        .execute();
    assert!(outcome.cancelled, "first supervisor must die mid-flight");
    assert!(outcome.report.is_none());

    // Second supervisor, same root, fresh everything: it discovers the
    // generations its predecessor left, starts each shard one
    // generation above them (fencing any straggler), inherits their
    // journals, and completes bit-identically.
    let (events, observer) = recording_observer();
    let outcome = builder()
        .shards(shards)
        .shard_dir(&dir)
        .observer(observer)
        .build()
        .unwrap()
        .execute();
    assert!(!outcome.cancelled);
    let report = outcome.report.expect("restarted supervisor completes");
    assert!(
        report.same_results(&control),
        "supervisor restart changed the report"
    );
    let events = events.lock().unwrap();
    let shard0_start_gen = events
        .iter()
        .find_map(|e| match e {
            CampaignEvent::ShardStarted {
                shard: 0,
                generation,
                ..
            } => Some(*generation),
            _ => None,
        })
        .expect("shard 0 started");
    assert!(
        shard0_start_gen >= 1,
        "restarted supervisor must fence the interrupted generation, got gen {shard0_start_gen}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The merge is a union with a coverage check — it must not care how
/// cells were partitioned into shard journals. Journal the control
/// run's cells under every count 1..=8 with a deliberately
/// non-contiguous (round-robin) assignment and merge.
#[test]
fn merge_is_partition_independent_for_any_shard_count() {
    let control = control_report();
    let campaign = builder().build().unwrap();
    let fingerprint = campaign.fingerprint();

    // Harvest the per-cell tallies by journalling a single-process run.
    let journal_dir = temp_dir("harvest");
    let store = Arc::new(EvalStore::open(&journal_dir).unwrap());
    let journalled = builder().store(Arc::clone(&store)).build().unwrap().run();
    assert!(journalled.same_results(&control));
    let cells = store.completed_cells(fingerprint);
    assert_eq!(cells.len(), total_cells());

    for shards in 1..=8usize {
        let root = temp_dir(&format!("partition-{shards}"));
        for shard in 0..shards {
            let dir = picbench_core::shard_journal_dir(&root, shard as u32, 0);
            let shard_store = EvalStore::open(&dir).unwrap();
            for (index, (key, tally)) in cells.iter().enumerate() {
                if index % shards == shard {
                    shard_store.record_cell(fingerprint, *key, tally);
                }
            }
        }
        let merged = campaign
            .merge_from_shards(&root)
            .unwrap_or_else(|e| panic!("partition {shards}: merge failed: {e}"));
        assert!(
            merged.report.same_results(&control),
            "partition into {shards} round-robin shards changed the report"
        );
        assert_eq!(merged.shards.len(), shards);
        assert!(merged.shards.iter().all(|info| info.quarantined == 0));
        let _ = std::fs::remove_dir_all(&root);
    }

    // Coverage check: a journal set missing one cell must refuse to
    // merge rather than fabricate a report.
    let root = temp_dir("partition-missing");
    let dir = picbench_core::shard_journal_dir(&root, 0, 0);
    let shard_store = EvalStore::open(&dir).unwrap();
    for (key, tally) in cells.iter().skip(1) {
        shard_store.record_cell(fingerprint, *key, tally);
    }
    match campaign.merge_from_shards(&root) {
        Err(ShardMergeError::MissingCells { missing, total }) => {
            assert_eq!(missing, 1);
            assert_eq!(total, total_cells());
        }
        other => panic!("expected MissingCells, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&journal_dir);
}

#[test]
fn sharding_requires_a_journal_root() {
    let err = builder().shards(4).build().unwrap_err();
    assert_eq!(err, CampaignBuildError::ShardsWithoutDir);
    assert!(err.to_string().contains("shard_dir"));
    // Shard counts of 0 and 1 keep the in-process engine: no dir needed.
    assert!(builder().shards(1).build().is_ok());
}
