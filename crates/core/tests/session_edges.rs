//! Session-API edge cases: mid-campaign cancellation must yield a
//! well-formed partial event stream, and replay-transcript exhaustion
//! must degrade into clean classified failures instead of panics.

use picbench_core::{Campaign, CampaignConfig, CampaignEvent, CancelToken};
use picbench_problems::Problem;
use picbench_synthllm::{ModelProvider, ReplayLlm, MISSING_TRANSCRIPT, NO_ACTIVE_SAMPLE};
use std::sync::{Arc, Mutex};

fn problems() -> Vec<Problem> {
    ["mzi-ps", "mzm", "umatrix", "direct-modulator"]
        .iter()
        .map(|id| picbench_problems::find(id).unwrap())
        .collect()
}

/// Asserts the event-stream grammar:
/// `CampaignStarted (CellStarted CellFinished)* [CacheStats] CampaignFinished`
/// with consistent counters — for complete *and* cancelled runs.
fn assert_well_formed(events: &[CampaignEvent]) -> (usize, bool) {
    assert!(
        matches!(events.first(), Some(CampaignEvent::CampaignStarted { .. })),
        "stream must open with CampaignStarted: {events:?}"
    );
    assert!(
        events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::CampaignStarted { .. }))
            .count()
            == 1,
        "exactly one CampaignStarted"
    );
    let mut open_cells = 0usize;
    let mut finished_cells = 0usize;
    let mut finished_event: Option<(usize, bool)> = None;
    for event in events {
        match event {
            CampaignEvent::CampaignStarted { .. } => {}
            CampaignEvent::CellStarted { .. } => {
                assert!(finished_event.is_none(), "cell started after finish");
                open_cells += 1;
            }
            CampaignEvent::CellFinished {
                completed, total, ..
            } => {
                assert!(open_cells > finished_cells, "finish without start");
                finished_cells += 1;
                assert_eq!(*completed, finished_cells, "completed counter monotone");
                assert!(finished_cells <= *total);
            }
            CampaignEvent::CellRestored { .. } => {
                panic!("no cell can be restored without resume_from: {event:?}")
            }
            CampaignEvent::SampleRetried { .. } | CampaignEvent::SampleDegraded { .. } => {
                panic!("no retry events without a retry policy: {event:?}")
            }
            CampaignEvent::StoreDegraded { .. } => {
                panic!("no store degradation without a store: {event:?}")
            }
            CampaignEvent::CacheStats(_) => {}
            CampaignEvent::ShardStarted { .. }
            | CampaignEvent::ShardHeartbeat { .. }
            | CampaignEvent::ShardLost { .. }
            | CampaignEvent::ShardReassigned { .. }
            | CampaignEvent::ShardMerged { .. } => {
                panic!("no shard events without shards: {event:?}")
            }
            CampaignEvent::CampaignFinished {
                cells_completed,
                cells_total,
                cancelled,
            } => {
                assert!(finished_event.is_none(), "exactly one CampaignFinished");
                assert_eq!(*cells_completed, finished_cells);
                assert!(*cells_completed <= *cells_total);
                finished_event = Some((*cells_completed, *cancelled));
            }
        }
    }
    assert_eq!(
        open_cells, finished_cells,
        "every started cell must emit CellFinished, even under cancellation"
    );
    let (completed, cancelled) = finished_event.expect("stream must close with CampaignFinished");
    (completed, cancelled)
}

#[test]
fn cancel_mid_campaign_yields_a_well_formed_partial_stream() {
    let events: Arc<Mutex<Vec<CampaignEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let token = CancelToken::new();
    let recorder = Arc::clone(&events);
    let trigger = token.clone();
    // Cancel from inside the stream after the second finished cell —
    // mid-campaign by construction.
    let observer = Arc::new(move |event: &CampaignEvent| {
        recorder.lock().unwrap().push(event.clone());
        if let CampaignEvent::CellFinished { completed, .. } = event {
            if *completed == 2 {
                trigger.cancel();
            }
        }
    });

    let outcome = Campaign::builder()
        .problems(problems())
        .profiles(&[picbench_synthllm::ModelProfile::gpt4()])
        .config(CampaignConfig {
            samples_per_problem: 2,
            k_values: vec![1],
            feedback_iters: vec![0, 1],
            threads: 1, // deterministic cell order makes "after cell 2" exact
            ..CampaignConfig::default()
        })
        .observer(observer)
        .cancel_token(token.clone())
        .build()
        .unwrap()
        .execute();

    assert!(outcome.cancelled);
    assert!(outcome.report.is_none(), "partial runs carry no report");
    assert!(
        outcome.cells_completed < outcome.cells_total,
        "cancellation must cut the run short ({}/{})",
        outcome.cells_completed,
        outcome.cells_total
    );

    let events = events.lock().unwrap();
    let (completed, cancelled) = assert_well_formed(&events);
    assert!(cancelled, "CampaignFinished must report the cancellation");
    assert_eq!(completed, outcome.cells_completed);
    assert_eq!(completed, 2, "no new cells may start after the cancel");
}

#[test]
fn cancel_before_execute_completes_zero_cells_cleanly() {
    let events: Arc<Mutex<Vec<CampaignEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&events);
    let token = CancelToken::new();
    token.cancel();
    let outcome = Campaign::builder()
        .problems(problems())
        .profiles(&[picbench_synthllm::ModelProfile::gpt4()])
        .observer(Arc::new(move |event: &CampaignEvent| {
            recorder.lock().unwrap().push(event.clone());
        }))
        .cancel_token(token)
        .build()
        .unwrap()
        .execute();
    assert!(outcome.cancelled);
    assert_eq!(outcome.cells_completed, 0);
    let events = events.lock().unwrap();
    let (completed, cancelled) = assert_well_formed(&events);
    assert_eq!(completed, 0);
    assert!(cancelled);
}

#[test]
fn replay_exhaustion_is_a_clean_error_not_a_panic() {
    let problem = picbench_problems::find("mzi-ps").unwrap();
    let mut conversation = picbench_prompt::Conversation::with_system("sys");
    conversation.push(picbench_prompt::Role::User, problem.description.clone());

    // respond() before begin_sample: a driver bug, answered with a
    // clean unparseable marker instead of a panic.
    let mut fresh = ReplayLlm::new("replay").spawn();
    assert_eq!(fresh.respond(&conversation), NO_ACTIVE_SAMPLE);

    // A sample with no transcript at all: the missing-transcript marker.
    let replay = ReplayLlm::new("replay").with_response(problem.id.clone(), 0, "only turn");
    let mut llm = replay.spawn();
    llm.begin_sample(&problem, 99);
    assert_eq!(llm.respond(&conversation), MISSING_TRANSCRIPT);

    // Exhaustion within a recorded sample repeats the final response
    // (converged models stay converged) rather than erroring or dying.
    llm.begin_sample(&problem, 0);
    assert_eq!(llm.respond(&conversation), "only turn");
    assert_eq!(llm.respond(&conversation), "only turn");
}

#[test]
fn campaign_over_an_exhausted_replay_finishes_with_classified_failures() {
    // A replay with a transcript for only one of the campaign's samples:
    // every other sample serves the unparseable error marker. The
    // campaign must complete normally — full event stream, a report, and
    // 0% functional score — with the gaps surfacing as syntax failures.
    let problem = picbench_problems::find("mzi-ps").unwrap();
    let golden = format!("<result>\n{}\n</result>", problem.golden.to_json_string());
    let replay =
        Arc::new(ReplayLlm::new("patchy replay").with_response(problem.id.clone(), 0, golden))
            as Arc<dyn ModelProvider>;

    let events: Arc<Mutex<Vec<CampaignEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&events);
    let report = Campaign::builder()
        .problem(problem)
        .provider(replay)
        .config(CampaignConfig {
            samples_per_problem: 3,
            k_values: vec![1, 3],
            feedback_iters: vec![0],
            ..CampaignConfig::default()
        })
        .observer(Arc::new(move |event: &CampaignEvent| {
            recorder.lock().unwrap().push(event.clone());
        }))
        .build()
        .unwrap()
        .run();

    let events = events.lock().unwrap();
    let (completed, cancelled) = assert_well_formed(&events);
    assert!(!cancelled);
    assert_eq!(completed, 1);
    // Sample 0 replays the golden (passes); samples 1 and 2 hit the
    // missing-transcript marker (syntax failures). Pass@1 averages to
    // one passing sample in three.
    let cell = report.cell("patchy replay", 0, 1).expect("cell exists");
    assert!(cell.syntax > 0.0 && cell.syntax < 100.0, "{cell:?}");
    let at3 = report.cell("patchy replay", 0, 3).expect("cell exists");
    assert_eq!(at3.functional, 100.0, "pass@3 sees the recorded success");
}
