//! Property-based tests for the Pass@k estimator and aggregation.

use picbench_core::{aggregate_pass_at_k, pass_at_k, ProblemTally};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pass_at_k_is_a_probability(n in 1usize..30, c_frac in 0.0f64..=1.0, k_frac in 0.0f64..=1.0) {
        let c = ((n as f64) * c_frac).floor() as usize;
        let k = 1 + ((n.saturating_sub(1)) as f64 * k_frac).floor() as usize;
        let v = pass_at_k(n, c, k);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn pass_at_k_monotone_in_c(n in 2usize..20, k_frac in 0.0f64..=1.0) {
        let k = 1 + ((n - 1) as f64 * k_frac).floor() as usize;
        let mut prev = -1.0;
        for c in 0..=n {
            let v = pass_at_k(n, c, k);
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn pass_at_k_monotone_in_k(n in 2usize..20, c_frac in 0.0f64..=1.0) {
        let c = ((n as f64) * c_frac).floor() as usize;
        let mut prev = -1.0;
        for k in 1..=n {
            let v = pass_at_k(n, c, k);
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn pass_at_n_is_any_pass_indicator(n in 1usize..20, c_frac in 0.0f64..=1.0) {
        let c = ((n as f64) * c_frac).floor() as usize;
        let v = pass_at_k(n, c, n);
        if c == 0 {
            prop_assert_eq!(v, 0.0);
        } else {
            prop_assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn aggregate_is_mean_of_singletons(
        tallies in proptest::collection::vec((1usize..10, 0.0f64..=1.0, 0.0f64..=1.0), 1..10),
    ) {
        let tallies: Vec<ProblemTally> = tallies
            .into_iter()
            .map(|(n, s_frac, f_frac)| {
                let syntax = ((n as f64) * s_frac).floor() as usize;
                // Functional passes can never exceed syntax passes.
                let functional = ((syntax as f64) * f_frac).floor() as usize;
                ProblemTally { n, syntax_passes: syntax, functional_passes: functional }
            })
            .collect();
        let (syntax, func) = aggregate_pass_at_k(&tallies, 1);
        // Functional aggregate cannot exceed syntax aggregate.
        prop_assert!(func <= syntax + 1e-9);
        prop_assert!((0.0..=100.0).contains(&syntax));
        prop_assert!((0.0..=100.0).contains(&func));
        // Mean of per-problem values.
        let manual: f64 = tallies
            .iter()
            .map(|t| pass_at_k(t.n, t.syntax_passes, 1))
            .sum::<f64>()
            / tallies.len() as f64;
        prop_assert!((syntax - manual * 100.0).abs() < 1e-9);
    }
}
