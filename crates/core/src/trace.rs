//! Human-readable export of sample traces.
//!
//! Benchmark users audit *why* a model failed; this module renders a
//! [`SampleResult`] — conversation, per-attempt verdicts, classified
//! issues — as a self-contained markdown document.

use crate::feedback_loop::SampleResult;
use picbench_prompt::Role;
use std::fmt::Write as _;

/// Renders a complete sample trace as markdown.
///
/// The document contains the sample's metadata, a verdict summary table
/// of every attempt, and the full conversation transcript (system prompt
/// elided to its first line — it is identical across samples).
pub fn render_trace_markdown(result: &SampleResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Trace: {} on `{}`", result.model, result.problem_id);
    let _ = writeln!(
        out,
        "\nsample {} · {} attempt(s) · final verdict: syntax **{}**, functionality **{}**\n",
        result.sample_index,
        result.attempts.len(),
        if result.syntax_pass() { "PASS" } else { "FAIL" },
        if result.functional_pass() {
            "PASS"
        } else {
            "FAIL"
        },
    );

    let _ = writeln!(out, "## Attempts\n");
    let _ = writeln!(out, "| iter | syntax | functional | issues |");
    let _ = writeln!(out, "|---|---|---|---|");
    for attempt in &result.attempts {
        let (syntax, functional, issues) = match (&attempt.report.syntax, attempt.report.functional)
        {
            (Ok(()), Some(true)) => ("pass".to_string(), "pass".to_string(), String::new()),
            (Ok(()), _) => (
                "pass".to_string(),
                "fail".to_string(),
                "response deviates from golden".to_string(),
            ),
            (Err(issues), _) => (
                "fail".to_string(),
                "—".to_string(),
                issues
                    .iter()
                    .map(|i| i.failure.label())
                    .collect::<Vec<_>>()
                    .join("; "),
            ),
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            attempt.iteration, syntax, functional, issues
        );
    }

    let _ = writeln!(out, "\n## Conversation\n");
    for turn in result.conversation.turns() {
        match turn.role {
            Role::System => {
                let first_line = turn.content.lines().next().unwrap_or_default();
                let _ = writeln!(out, "**system** (elided): {first_line}…\n");
            }
            role => {
                let _ = writeln!(out, "**{role}**:\n\n```text\n{}\n```\n", turn.content);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::Evaluator;
    use crate::feedback_loop::{run_sample, LoopConfig};
    use picbench_synthllm::{ModelProfile, PerfectLlm, SyntheticLlm};

    #[test]
    fn oracle_trace_renders() {
        let problem = picbench_problems::find("mzi-ps").unwrap();
        let mut evaluator = Evaluator::default();
        let mut oracle = PerfectLlm::new();
        let result = run_sample(
            &mut oracle,
            &problem,
            &mut evaluator,
            LoopConfig::default(),
            0,
        );
        let md = render_trace_markdown(&result);
        assert!(md.contains("# Trace: Oracle on `mzi-ps`"));
        assert!(md.contains("syntax **PASS**"));
        assert!(md.contains("| 0 | pass | pass |"));
        assert!(md.contains("**system** (elided)"));
        assert!(md.contains("**assistant**"));
    }

    #[test]
    fn failing_trace_lists_issue_categories() {
        let problem = picbench_problems::find("spanke-8x8").unwrap();
        let mut evaluator = Evaluator::default();
        let mut llm = SyntheticLlm::new(ModelProfile::gpt_o1_mini(), 1);
        let result = run_sample(
            &mut llm,
            &problem,
            &mut evaluator,
            LoopConfig {
                max_feedback_iters: 1,
                restrictions: false,
            },
            0,
        );
        let md = render_trace_markdown(&result);
        // spanke-8x8 with the weakest profile essentially never passes on
        // the first try; the table must show classified categories.
        assert!(md.contains("| 0 | fail |"));
        assert!(md.contains("## Conversation"));
    }
}
