//! Campaign observability: typed progress events and cooperative
//! cancellation.
//!
//! A campaign is a long-running batch job; a server or TUI driving one
//! needs to stream progress and abort cleanly. [`CampaignObserver`] is
//! the callback seam — workers feed it typed [`CampaignEvent`]s as cells
//! start and finish — and [`CancelToken`] is the cooperative abort
//! switch, checked at cell boundaries so every started cell runs to
//! completion and the event stream stays well-formed:
//!
//! ```text
//! CampaignStarted
//!   (CellRestored)*                 — resumed runs: journalled cells, replayed up front
//!   [StoreDegraded]                 — at most once, if the store stops accepting writes
//!   (CellStarted → CellFinished)*   — one pair per freshly evaluated cell
//!     …SampleRetried / SampleDegraded interleave inside cells when a
//!     retry policy is active…
//! [CacheStats]                      — on completion, when caching is on
//! CampaignFinished { cancelled }
//! ```
//!
//! Sharded campaigns (`Campaign::builder().shards(n)`) emit a shard
//! lifecycle instead of per-cell pairs — the supervisor observes worker
//! journals from outside, so cell-level events stay inside the worker
//! processes:
//!
//! ```text
//! CampaignStarted
//!   (ShardStarted)*                 — one per shard, generation 0
//!   (ShardHeartbeat)*               — whenever a worker's lease seq advances
//!   (ShardLost → ShardReassigned → ShardStarted)*
//!                                   — per takeover: dead/stalled worker
//!                                     detected, next generation launched
//!   (ShardMerged)*                  — per shard, once its journal merges
//! CampaignFinished { cancelled }
//! ```
//!
//! Observer callbacks run on worker threads, inline with evaluation —
//! keep them cheap (push to a channel, update atomics) and never block.

use crate::evaluate::EvalCacheStats;
use crate::passk::ProblemTally;
use picbench_synthllm::TransportErrorKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation switch shared between a campaign and its
/// driver.
///
/// Cancellation is checked at `(problem × model × feedback)` cell
/// boundaries: cells already running finish normally (and emit their
/// [`CampaignEvent::CellFinished`]), no new cells start afterwards.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One typed progress event of a running campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignEvent {
    /// The campaign accepted its inputs and is about to start workers.
    CampaignStarted {
        /// Number of problems in the matrix.
        problems: usize,
        /// Number of model providers in the matrix.
        providers: usize,
        /// Total `(problem × model × feedback)` cells to evaluate.
        cells: usize,
    },
    /// A worker claimed a cell and is about to evaluate it.
    CellStarted {
        /// Problem id of the cell.
        problem_id: String,
        /// Provider display name of the cell.
        model: String,
        /// Feedback-iteration setting of the cell.
        feedback_iters: usize,
    },
    /// A cell's samples all finished.
    CellFinished {
        /// Problem id of the cell.
        problem_id: String,
        /// Provider display name of the cell.
        model: String,
        /// Feedback-iteration setting of the cell.
        feedback_iters: usize,
        /// The cell's aggregated tally.
        tally: ProblemTally,
        /// Cells finished so far (this one included).
        completed: usize,
        /// Total cells in the campaign.
        total: usize,
    },
    /// A cell journalled by a previous run of the same campaign was
    /// restored from the persistent store without re-evaluating
    /// (resumed campaigns only; emitted before any worker starts).
    CellRestored {
        /// Problem id of the cell.
        problem_id: String,
        /// Provider display name of the cell.
        model: String,
        /// Feedback-iteration setting of the cell.
        feedback_iters: usize,
        /// The tally recorded by the previous run.
        tally: ProblemTally,
        /// Cells accounted for so far (restored ones included).
        completed: usize,
        /// Total cells in the campaign.
        total: usize,
    },
    /// The retry layer absorbed a transient transport failure and will
    /// re-attempt the sample's response (campaigns with a retry policy
    /// only).
    SampleRetried {
        /// Provider display name.
        model: String,
        /// Problem id of the affected sample.
        problem_id: String,
        /// Sample index within the cell.
        sample: u64,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// How the failure was classified.
        kind: TransportErrorKind,
        /// Backoff consumed before the retry.
        backoff_ms: u64,
    },
    /// The retry layer gave up — fatal failure, attempts exhausted, or
    /// backoff budget spent — and the failure response degrades into
    /// the evaluation pipeline as a classified failure.
    SampleDegraded {
        /// Provider display name.
        model: String,
        /// Problem id of the affected sample.
        problem_id: String,
        /// Sample index within the cell.
        sample: u64,
        /// Attempts made, including the degrading one.
        attempts: u32,
        /// How the final failure was classified.
        kind: TransportErrorKind,
    },
    /// The persistent store hit a write error and disabled itself for
    /// the rest of the run; evaluation continues unjournalled. Emitted
    /// at most once per campaign.
    StoreDegraded {
        /// Write errors the store had observed when it degraded.
        write_errors: u64,
    },
    /// A shard worker was launched (sharded campaigns only).
    ShardStarted {
        /// Shard index in `0..shards`.
        shard: u32,
        /// Lease generation of the launched worker (0 on first launch,
        /// bumped by every reassignment).
        generation: u32,
        /// Cells assigned to this shard.
        cells: usize,
    },
    /// The supervisor observed a shard worker's lease advance (sharded
    /// campaigns only; emitted once per observed heartbeat, not per
    /// poll).
    ShardHeartbeat {
        /// Shard index.
        shard: u32,
        /// Lease generation of the worker that heartbeat.
        generation: u32,
        /// The lease sequence number observed.
        seq: u64,
        /// Cells visible in the shard's journal at observation time.
        cells_done: usize,
    },
    /// A shard worker was declared gone — its process exited without
    /// finishing, or its lease expired (sharded campaigns only).
    ShardLost {
        /// Shard index.
        shard: u32,
        /// Lease generation of the lost worker.
        generation: u32,
        /// Why the supervisor gave up on it.
        reason: ShardLossReason,
        /// Cells its journal held when it was declared lost — work the
        /// next generation inherits instead of redoing.
        cells_done: usize,
    },
    /// An orphaned shard was handed to a fresh worker under a new lease
    /// generation; journal writes from older generations are fenced out
    /// of the merge (sharded campaigns only).
    ShardReassigned {
        /// Shard index.
        shard: u32,
        /// The generation that was lost.
        from_generation: u32,
        /// The replacement generation about to start.
        to_generation: u32,
    },
    /// A shard's final-generation journal was folded into the campaign
    /// report (sharded campaigns only).
    ShardMerged {
        /// Shard index.
        shard: u32,
        /// The generation whose journal was merged.
        generation: u32,
        /// Cells the merged journal contributed.
        cells: usize,
        /// Journal records quarantined from stale (fenced) generations —
        /// writes that landed after a takeover.
        quarantined: usize,
    },
    /// Final counters of the shared evaluation cache (completion only).
    CacheStats(EvalCacheStats),
    /// The campaign stopped — normally or via cancellation.
    CampaignFinished {
        /// Cells that completed.
        cells_completed: usize,
        /// Total cells in the campaign.
        cells_total: usize,
        /// Whether the campaign was cut short by cancellation (a cancel
        /// request arriving after the last cell completed still counts
        /// as a normal finish).
        cancelled: bool,
    },
}

/// Why a shard worker was declared lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardLossReason {
    /// The worker's lease stopped advancing for longer than the
    /// configured TTL — it may be dead *or merely stalled*; either way
    /// its generation is fenced and a replacement takes over.
    LeaseExpired,
    /// The worker process exited before covering its shard.
    WorkerExited {
        /// Whether the exit reported success (a clean exit with an
        /// incomplete journal is still a loss).
        clean: bool,
    },
}

/// A sink for [`CampaignEvent`]s.
///
/// Implemented for any `Fn(&CampaignEvent) + Send + Sync` closure, so a
/// channel sender or progress bar hooks in with one line:
///
/// ```
/// use picbench_core::{CampaignEvent, CampaignObserver};
/// use std::sync::mpsc;
///
/// let (tx, rx) = mpsc::channel();
/// let observer = move |event: &CampaignEvent| {
///     let _ = tx.send(event.clone());
/// };
/// observer.on_event(&CampaignEvent::CampaignStarted {
///     problems: 1,
///     providers: 1,
///     cells: 1,
/// });
/// assert_eq!(rx.try_iter().count(), 1);
/// ```
pub trait CampaignObserver: Send + Sync {
    /// Receives one event; called from worker threads, must not block.
    fn on_event(&self, event: &CampaignEvent);
}

impl<F: Fn(&CampaignEvent) + Send + Sync> CampaignObserver for F {
    fn on_event(&self, event: &CampaignEvent) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_clones_share_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn closures_are_observers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let observer = |_: &CampaignEvent| {
            count.fetch_add(1, Ordering::Relaxed);
        };
        observer.on_event(&CampaignEvent::CacheStats(EvalCacheStats::default()));
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
