//! Campaign observability: typed progress events and cooperative
//! cancellation.
//!
//! A campaign is a long-running batch job; a server or TUI driving one
//! needs to stream progress and abort cleanly. [`CampaignObserver`] is
//! the callback seam — workers feed it typed [`CampaignEvent`]s as cells
//! start and finish — and [`CancelToken`] is the cooperative abort
//! switch, checked at cell boundaries so every started cell runs to
//! completion and the event stream stays well-formed:
//!
//! ```text
//! CampaignStarted
//!   (CellRestored)*                 — resumed runs: journalled cells, replayed up front
//!   [StoreDegraded]                 — at most once, if the store stops accepting writes
//!   (CellStarted → CellFinished)*   — one pair per freshly evaluated cell
//!     …SampleRetried / SampleDegraded interleave inside cells when a
//!     retry policy is active…
//! [CacheStats]                      — on completion, when caching is on
//! CampaignFinished { cancelled }
//! ```
//!
//! Observer callbacks run on worker threads, inline with evaluation —
//! keep them cheap (push to a channel, update atomics) and never block.

use crate::evaluate::EvalCacheStats;
use crate::passk::ProblemTally;
use picbench_synthllm::TransportErrorKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation switch shared between a campaign and its
/// driver.
///
/// Cancellation is checked at `(problem × model × feedback)` cell
/// boundaries: cells already running finish normally (and emit their
/// [`CampaignEvent::CellFinished`]), no new cells start afterwards.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One typed progress event of a running campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignEvent {
    /// The campaign accepted its inputs and is about to start workers.
    CampaignStarted {
        /// Number of problems in the matrix.
        problems: usize,
        /// Number of model providers in the matrix.
        providers: usize,
        /// Total `(problem × model × feedback)` cells to evaluate.
        cells: usize,
    },
    /// A worker claimed a cell and is about to evaluate it.
    CellStarted {
        /// Problem id of the cell.
        problem_id: String,
        /// Provider display name of the cell.
        model: String,
        /// Feedback-iteration setting of the cell.
        feedback_iters: usize,
    },
    /// A cell's samples all finished.
    CellFinished {
        /// Problem id of the cell.
        problem_id: String,
        /// Provider display name of the cell.
        model: String,
        /// Feedback-iteration setting of the cell.
        feedback_iters: usize,
        /// The cell's aggregated tally.
        tally: ProblemTally,
        /// Cells finished so far (this one included).
        completed: usize,
        /// Total cells in the campaign.
        total: usize,
    },
    /// A cell journalled by a previous run of the same campaign was
    /// restored from the persistent store without re-evaluating
    /// (resumed campaigns only; emitted before any worker starts).
    CellRestored {
        /// Problem id of the cell.
        problem_id: String,
        /// Provider display name of the cell.
        model: String,
        /// Feedback-iteration setting of the cell.
        feedback_iters: usize,
        /// The tally recorded by the previous run.
        tally: ProblemTally,
        /// Cells accounted for so far (restored ones included).
        completed: usize,
        /// Total cells in the campaign.
        total: usize,
    },
    /// The retry layer absorbed a transient transport failure and will
    /// re-attempt the sample's response (campaigns with a retry policy
    /// only).
    SampleRetried {
        /// Provider display name.
        model: String,
        /// Problem id of the affected sample.
        problem_id: String,
        /// Sample index within the cell.
        sample: u64,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// How the failure was classified.
        kind: TransportErrorKind,
        /// Backoff consumed before the retry.
        backoff_ms: u64,
    },
    /// The retry layer gave up — fatal failure, attempts exhausted, or
    /// backoff budget spent — and the failure response degrades into
    /// the evaluation pipeline as a classified failure.
    SampleDegraded {
        /// Provider display name.
        model: String,
        /// Problem id of the affected sample.
        problem_id: String,
        /// Sample index within the cell.
        sample: u64,
        /// Attempts made, including the degrading one.
        attempts: u32,
        /// How the final failure was classified.
        kind: TransportErrorKind,
    },
    /// The persistent store hit a write error and disabled itself for
    /// the rest of the run; evaluation continues unjournalled. Emitted
    /// at most once per campaign.
    StoreDegraded {
        /// Write errors the store had observed when it degraded.
        write_errors: u64,
    },
    /// Final counters of the shared evaluation cache (completion only).
    CacheStats(EvalCacheStats),
    /// The campaign stopped — normally or via cancellation.
    CampaignFinished {
        /// Cells that completed.
        cells_completed: usize,
        /// Total cells in the campaign.
        cells_total: usize,
        /// Whether the campaign was cut short by cancellation (a cancel
        /// request arriving after the last cell completed still counts
        /// as a normal finish).
        cancelled: bool,
    },
}

/// A sink for [`CampaignEvent`]s.
///
/// Implemented for any `Fn(&CampaignEvent) + Send + Sync` closure, so a
/// channel sender or progress bar hooks in with one line:
///
/// ```
/// use picbench_core::{CampaignEvent, CampaignObserver};
/// use std::sync::mpsc;
///
/// let (tx, rx) = mpsc::channel();
/// let observer = move |event: &CampaignEvent| {
///     let _ = tx.send(event.clone());
/// };
/// observer.on_event(&CampaignEvent::CampaignStarted {
///     problems: 1,
///     providers: 1,
///     cells: 1,
/// });
/// assert_eq!(rx.try_iter().count(), 1);
/// ```
pub trait CampaignObserver: Send + Sync {
    /// Receives one event; called from worker threads, must not block.
    fn on_event(&self, event: &CampaignEvent);
}

impl<F: Fn(&CampaignEvent) + Send + Sync> CampaignObserver for F {
    fn on_event(&self, event: &CampaignEvent) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_clones_share_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn closures_are_observers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let observer = |_: &CampaignEvent| {
            count.fetch_add(1, Ordering::Relaxed);
        };
        observer.on_event(&CampaignEvent::CacheStats(EvalCacheStats::default()));
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
