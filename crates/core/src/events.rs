//! Campaign observability: typed progress events and cooperative
//! cancellation.
//!
//! A campaign is a long-running batch job; a server or TUI driving one
//! needs to stream progress and abort cleanly. [`CampaignObserver`] is
//! the callback seam — workers feed it typed [`CampaignEvent`]s as cells
//! start and finish — and [`CancelToken`] is the cooperative abort
//! switch, checked at cell boundaries so every started cell runs to
//! completion and the event stream stays well-formed:
//!
//! ```text
//! CampaignStarted
//!   (CellStarted → CellFinished)*   — one pair per completed cell
//! [CacheStats]                      — on completion, when caching is on
//! CampaignFinished { cancelled }
//! ```
//!
//! Observer callbacks run on worker threads, inline with evaluation —
//! keep them cheap (push to a channel, update atomics) and never block.

use crate::evaluate::EvalCacheStats;
use crate::passk::ProblemTally;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation switch shared between a campaign and its
/// driver.
///
/// Cancellation is checked at `(problem × model × feedback)` cell
/// boundaries: cells already running finish normally (and emit their
/// [`CampaignEvent::CellFinished`]), no new cells start afterwards.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One typed progress event of a running campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignEvent {
    /// The campaign accepted its inputs and is about to start workers.
    CampaignStarted {
        /// Number of problems in the matrix.
        problems: usize,
        /// Number of model providers in the matrix.
        providers: usize,
        /// Total `(problem × model × feedback)` cells to evaluate.
        cells: usize,
    },
    /// A worker claimed a cell and is about to evaluate it.
    CellStarted {
        /// Problem id of the cell.
        problem_id: String,
        /// Provider display name of the cell.
        model: String,
        /// Feedback-iteration setting of the cell.
        feedback_iters: usize,
    },
    /// A cell's samples all finished.
    CellFinished {
        /// Problem id of the cell.
        problem_id: String,
        /// Provider display name of the cell.
        model: String,
        /// Feedback-iteration setting of the cell.
        feedback_iters: usize,
        /// The cell's aggregated tally.
        tally: ProblemTally,
        /// Cells finished so far (this one included).
        completed: usize,
        /// Total cells in the campaign.
        total: usize,
    },
    /// Final counters of the shared evaluation cache (completion only).
    CacheStats(EvalCacheStats),
    /// The campaign stopped — normally or via cancellation.
    CampaignFinished {
        /// Cells that completed.
        cells_completed: usize,
        /// Total cells in the campaign.
        cells_total: usize,
        /// Whether the campaign was cut short by cancellation (a cancel
        /// request arriving after the last cell completed still counts
        /// as a normal finish).
        cancelled: bool,
    },
}

/// A sink for [`CampaignEvent`]s.
///
/// Implemented for any `Fn(&CampaignEvent) + Send + Sync` closure, so a
/// channel sender or progress bar hooks in with one line:
///
/// ```
/// use picbench_core::{CampaignEvent, CampaignObserver};
/// use std::sync::mpsc;
///
/// let (tx, rx) = mpsc::channel();
/// let observer = move |event: &CampaignEvent| {
///     let _ = tx.send(event.clone());
/// };
/// observer.on_event(&CampaignEvent::CampaignStarted {
///     problems: 1,
///     providers: 1,
///     cells: 1,
/// });
/// assert_eq!(rx.try_iter().count(), 1);
/// ```
pub trait CampaignObserver: Send + Sync {
    /// Receives one event; called from worker threads, must not block.
    fn on_event(&self, event: &CampaignEvent);
}

impl<F: Fn(&CampaignEvent) + Send + Sync> CampaignObserver for F {
    fn on_event(&self, event: &CampaignEvent) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_clones_share_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn closures_are_observers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let observer = |_: &CampaignEvent| {
            count.fetch_add(1, Ordering::Relaxed);
        };
        observer.on_event(&CampaignEvent::CacheStats(EvalCacheStats::default()));
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
