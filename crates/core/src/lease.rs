//! Time and liveness policy for sharded campaigns.
//!
//! The supervisor decides a worker is gone when its lease stops
//! advancing: each worker heartbeats by bumping the `seq` of its
//! [`LeaseRecord`](crate::persist::LeaseRecord) at every cell boundary,
//! the supervisor records *its own* clock whenever it observes the seq
//! advance, and a lease whose last observed advance is older than
//! [`LeaseConfig::ttl_ms`] has expired. Worker-side timestamps never
//! enter the decision — two processes' clocks need not agree.
//!
//! All time flows through the [`Clock`] seam so lease-expiry edge cases
//! (a heartbeat landing exactly on the expiry boundary, a stalled worker
//! reviving after takeover) are testable deterministically with a
//! [`TestClock`] instead of real sleeps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// The time source of the supervisor and its workers.
///
/// `now_ms` must be comparable across calls on the *same* clock; it
/// need not be comparable across processes (the supervisor never
/// compares its readings with a worker's).
pub trait Clock: Send + Sync {
    /// Milliseconds since this clock's epoch.
    fn now_ms(&self) -> u64;
    /// Blocks the calling thread for (about) `ms` milliseconds.
    fn sleep_ms(&self, ms: u64);
}

/// The production clock: wall time (`SystemTime`) and real sleeps.
///
/// Wall time rather than `Instant` because worker processes stamp their
/// own lease records and `Instant` epochs differ per process; the
/// stamps are diagnostic, but meaningless ones help nobody.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// A deterministic test clock: `now_ms` is a counter advanced manually
/// ([`TestClock::advance`]) or — up to a configurable budget — by
/// `sleep_ms` itself.
///
/// The budget is the key to deterministic expiry tests with *real*
/// worker threads in the loop: grant the supervisor enough virtual time
/// to expire the lease under test, and once the budget is spent further
/// sleeps stop advancing the clock, so replacement leases never expire
/// spuriously while the test finishes. Every virtual sleep still yields
/// ~1ms of real time so concurrently running worker threads make
/// progress.
#[derive(Debug)]
pub struct TestClock {
    now_ms: AtomicU64,
    auto_budget_ms: AtomicU64,
}

impl TestClock {
    /// A clock starting at `now_ms` with no auto-advance budget: only
    /// [`TestClock::advance`] moves time.
    pub fn new(now_ms: u64) -> Arc<Self> {
        Arc::new(TestClock {
            now_ms: AtomicU64::new(now_ms),
            auto_budget_ms: AtomicU64::new(0),
        })
    }

    /// Grants `ms` more milliseconds of auto-advance: subsequent
    /// `sleep_ms(n)` calls advance the clock by up to `n`, drawing down
    /// the budget.
    pub fn grant_auto_advance(&self, ms: u64) {
        self.auto_budget_ms.fetch_add(ms, Ordering::SeqCst);
    }

    /// Advances the clock by `ms` immediately.
    pub fn advance(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for TestClock {
    fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        // Draw the virtual advance from the budget (compare-and-swap so
        // concurrent sleepers never overdraw).
        let mut granted = 0;
        let mut budget = self.auto_budget_ms.load(Ordering::SeqCst);
        while budget > 0 {
            let take = ms.min(budget);
            match self.auto_budget_ms.compare_exchange(
                budget,
                budget - take,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    granted = take;
                    break;
                }
                Err(actual) => budget = actual,
            }
        }
        if granted > 0 {
            self.now_ms.fetch_add(granted, Ordering::SeqCst);
        }
        // Yield a sliver of real time so genuine worker threads run.
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Liveness policy of the shard supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// A lease whose observed heartbeat is older than this has expired
    /// and its shard is reassigned. Equality is *not* expiry: a
    /// heartbeat landing exactly at the boundary keeps the lease.
    pub ttl_ms: u64,
    /// How often the supervisor polls worker journals and leases.
    pub poll_ms: u64,
    /// Give-up bound: total shard takeovers (reassignments) before the
    /// supervisor cancels the campaign instead of looping forever on a
    /// poisoned shard.
    pub max_takeovers: u32,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            ttl_ms: 8_000,
            poll_ms: 50,
            max_takeovers: 16,
        }
    }
}

/// The expiry predicate, factored out so the boundary semantics are
/// pinned by unit test rather than buried in the supervisor loop:
/// a lease is expired only *strictly after* `last_seen + ttl`.
pub fn lease_expired(now_ms: u64, last_seen_ms: u64, ttl_ms: u64) -> bool {
    now_ms > last_seen_ms.saturating_add(ttl_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_is_strict_at_the_boundary() {
        // Heartbeat observed at t=100, ttl 50: alive through t=150,
        // expired at t=151.
        assert!(!lease_expired(100, 100, 50));
        assert!(!lease_expired(149, 100, 50));
        assert!(!lease_expired(150, 100, 50), "boundary equality is alive");
        assert!(lease_expired(151, 100, 50));
        // Saturating: a huge ttl never wraps into instant expiry.
        assert!(!lease_expired(u64::MAX, 1, u64::MAX));
    }

    #[test]
    fn test_clock_advances_manually_and_by_budget() {
        let clock = TestClock::new(1_000);
        assert_eq!(clock.now_ms(), 1_000);
        clock.advance(25);
        assert_eq!(clock.now_ms(), 1_025);
        // No budget: sleeping moves no virtual time.
        clock.sleep_ms(500);
        assert_eq!(clock.now_ms(), 1_025);
        // Budget-limited auto-advance.
        clock.grant_auto_advance(70);
        clock.sleep_ms(50);
        assert_eq!(clock.now_ms(), 1_075);
        clock.sleep_ms(50);
        assert_eq!(clock.now_ms(), 1_095, "second sleep drains the budget");
        clock.sleep_ms(50);
        assert_eq!(clock.now_ms(), 1_095, "budget exhausted");
    }

    #[test]
    fn system_clock_is_monotone_enough_to_expire_leases() {
        let clock = SystemClock;
        let a = clock.now_ms();
        clock.sleep_ms(5);
        let b = clock.now_ms();
        assert!(b >= a, "wall time went backwards across a sleep");
        assert!(a > 1_600_000_000_000, "epoch-ms magnitude sanity");
    }
}
