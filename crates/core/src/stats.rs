//! Extension experiments beyond the paper's tables:
//!
//! * [`collect_error_histogram`] — which Table II failure categories each
//!   model actually commits (the measurement that motivated the paper's
//!   error-classification loop in the first place);
//! * [`restriction_ablation`] — leave-one-out: how much syntax Pass@1
//!   drops when a single restriction is removed from the system prompt,
//!   i.e. which restriction carries the most weight.

use crate::evaluate::Evaluator;
use crate::passk::ProblemTally;
use picbench_netlist::FailureType;
use picbench_problems::Problem;
use picbench_prompt::{
    render_system_prompt, render_system_prompt_with_restrictions, Conversation, Role,
    SystemPromptConfig,
};
use picbench_synthllm::{LanguageModel, ModelProfile, SyntheticLlm};
use std::collections::HashMap;

/// Counts of classified first-attempt failures, per category.
#[derive(Debug, Clone, Default)]
pub struct ErrorHistogram {
    /// Model display name.
    pub model: String,
    /// Number of first attempts examined.
    pub attempts: usize,
    /// Number of attempts with at least one syntax issue.
    pub failing_attempts: usize,
    /// Issue counts by category.
    pub counts: HashMap<FailureType, usize>,
}

impl ErrorHistogram {
    /// Categories sorted by descending count.
    pub fn ranked(&self) -> Vec<(FailureType, usize)> {
        let mut entries: Vec<(FailureType, usize)> =
            self.counts.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries
    }
}

fn problem_conversation(system: &str, problem: &Problem) -> Conversation {
    let mut c = Conversation::with_system(system.to_string());
    c.push(Role::User, problem.description.clone());
    c
}

/// Runs `samples` first attempts of one profile on every problem and
/// tallies the classified issues — no feedback rounds, because the
/// histogram characterizes the model's raw failure modes (§III-D).
pub fn collect_error_histogram(
    profile: &ModelProfile,
    problems: &[Problem],
    evaluator: &mut Evaluator,
    samples: u64,
    restrictions: bool,
    seed: u64,
) -> ErrorHistogram {
    let infos: Vec<_> = evaluator
        .registry()
        .iter()
        .map(|m| m.info().clone())
        .collect();
    let system = render_system_prompt(
        infos.iter(),
        SystemPromptConfig {
            include_restrictions: restrictions,
        },
    );
    let mut llm = SyntheticLlm::new(profile.clone(), seed);
    let mut histogram = ErrorHistogram {
        model: profile.name.to_string(),
        ..ErrorHistogram::default()
    };
    for problem in problems {
        let conversation = problem_conversation(&system, problem);
        for sample in 0..samples {
            llm.begin_sample(problem, sample);
            let response = llm.respond(&conversation);
            let report = evaluator.evaluate_response(problem, &response);
            histogram.attempts += 1;
            if !report.syntax_pass() {
                histogram.failing_attempts += 1;
                for issue in report.issues() {
                    *histogram.counts.entry(issue.failure).or_insert(0) += 1;
                }
            }
        }
    }
    histogram
}

/// One row of the leave-one-out restriction ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The restriction removed (`None` = full restriction set).
    pub removed: Option<FailureType>,
    /// Mean syntax Pass@1 (percent) across problems.
    pub syntax_pass1: f64,
    /// Mean functional Pass@1 (percent).
    pub functional_pass1: f64,
}

/// Measures syntax/functional Pass@1 with the full Table II restriction
/// set, then with each restriction removed in turn.
///
/// The drop relative to the full set ranks the restrictions by how much
/// protection each one buys — an ablation the paper motivates but does
/// not report.
pub fn restriction_ablation(
    profile: &ModelProfile,
    problems: &[Problem],
    evaluator: &mut Evaluator,
    samples: u64,
    seed: u64,
) -> Vec<AblationRow> {
    let infos: Vec<_> = evaluator
        .registry()
        .iter()
        .map(|m| m.info().clone())
        .collect();

    let removable: Vec<Option<FailureType>> = std::iter::once(None)
        .chain(
            FailureType::ALL
                .into_iter()
                .filter(|f| !f.restriction().is_empty())
                .map(Some),
        )
        .collect();

    let mut rows = Vec::with_capacity(removable.len());
    for removed in removable {
        let subset: Vec<FailureType> = FailureType::ALL
            .into_iter()
            .filter(|f| Some(*f) != removed)
            .collect();
        let system = render_system_prompt_with_restrictions(infos.iter(), &subset);
        let mut llm = SyntheticLlm::new(profile.clone(), seed);
        let mut tallies = Vec::with_capacity(problems.len());
        for problem in problems {
            let conversation = problem_conversation(&system, problem);
            let mut tally = ProblemTally {
                n: samples as usize,
                syntax_passes: 0,
                functional_passes: 0,
            };
            for sample in 0..samples {
                llm.begin_sample(problem, sample);
                let response = llm.respond(&conversation);
                let report = evaluator.evaluate_response(problem, &response);
                if report.syntax_pass() {
                    tally.syntax_passes += 1;
                }
                if report.functional_pass() {
                    tally.functional_passes += 1;
                }
            }
            tallies.push(tally);
        }
        let (syntax, functional) = crate::passk::aggregate_pass_at_k(&tallies, 1);
        rows.push(AblationRow {
            removed,
            syntax_pass1: syntax,
            functional_pass1: functional,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problems() -> Vec<Problem> {
        ["mzi-ps", "mzm", "umatrix", "os-2x2"]
            .iter()
            .map(|id| picbench_problems::find(id).unwrap())
            .collect()
    }

    #[test]
    fn histogram_counts_failures() {
        let mut evaluator = Evaluator::default();
        let problems = small_problems();
        let histogram = collect_error_histogram(
            &ModelProfile::gpt_o1_mini(),
            &problems,
            &mut evaluator,
            10,
            false,
            3,
        );
        assert_eq!(histogram.attempts, 40);
        assert!(histogram.failing_attempts > 0);
        let total: usize = histogram.counts.values().sum();
        assert!(total >= histogram.failing_attempts);
        // Ranked output is sorted descending.
        let ranked = histogram.ranked();
        for pair in ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn restrictions_shrink_the_histogram() {
        let mut evaluator = Evaluator::default();
        let problems = small_problems();
        let plain = collect_error_histogram(
            &ModelProfile::gemini15_pro(),
            &problems,
            &mut evaluator,
            12,
            false,
            9,
        );
        let restricted = collect_error_histogram(
            &ModelProfile::gemini15_pro(),
            &problems,
            &mut evaluator,
            12,
            true,
            9,
        );
        assert!(
            restricted.failing_attempts < plain.failing_attempts,
            "restrictions should reduce failures: {} vs {}",
            restricted.failing_attempts,
            plain.failing_attempts
        );
    }

    #[test]
    fn ablation_produces_one_row_per_restriction_plus_baseline() {
        let mut evaluator = Evaluator::default();
        let problems = small_problems();
        let rows = restriction_ablation(&ModelProfile::gpt4o(), &problems, &mut evaluator, 6, 5);
        // 1 baseline + 9 restrictions (OtherSyntax has no text).
        assert_eq!(rows.len(), 10);
        assert!(rows[0].removed.is_none());
        for row in &rows {
            assert!((0.0..=100.0).contains(&row.syntax_pass1));
            assert!(row.functional_pass1 <= row.syntax_pass1 + 1e-9);
        }
    }
}
