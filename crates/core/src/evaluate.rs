//! Syntax and functionality evaluation (§III-C), with content-addressed
//! caching.
//!
//! A raw chat response is judged in two stages, as in the paper:
//!
//! 1. **Syntax**: extract the JSON payload, parse it, interpret it as a
//!    netlist, validate it structurally and simulate it. If a frequency
//!    response comes out, syntax passes.
//! 2. **Functionality**: compare the generated design's frequency
//!    response against the golden design's over the full sweep.
//!
//! Campaigns evaluate enormous numbers of *structurally identical*
//! candidates: feedback retries converge toward the golden design, the
//! same sample seed produces the same first attempt across feedback
//! settings, and distinct model profiles emit identical clean designs.
//! The evaluator therefore works **content-addressed**:
//!
//! * every structurally valid candidate is [canonicalized]
//!   (`Netlist::canonicalize`) before simulation, so all members of a
//!   [`Netlist::content_hash`] class produce the *same frequency response
//!   bit for bit* — which is what makes cached replay indistinguishable
//!   from cold evaluation;
//! * an optional shared [`EvalCache`] memoizes at three levels: the
//!   sweep outcome per `(netlist hash, grid, backend, port spec)`
//!   (level 1), the finished [`EvalReport`] additionally keyed by
//!   problem and tolerance (level 2), and — because a verdict is a pure
//!   function of the response text given those settings — whole verdicts
//!   per response-text digest (level 0), which skips even extraction and
//!   JSON parsing on replays;
//! * a [`ScheduleCache`] reuses the topology-level [`SweepSchedule`]s
//!   across candidates, and one [`SolveWorkspace`] serves every serial
//!   sweep, so even cache *misses* skip re-planning and re-allocation
//!   when only settings changed;
//! * golden responses can be precomputed once and shared immutably
//!   across worker evaluators ([`Evaluator::with_shared_goldens`]).
//!
//! Structurally *invalid* candidates are deliberately left uncached: they
//! never reach a sweep (the expensive part), and their classified issue
//! lists are reported exactly as validation of the as-written document
//! produces them.
//!
//! [canonicalized]: picbench_netlist::Netlist::canonicalize
//! [`SweepSchedule`]: picbench_sim::SweepSchedule

use crate::classify;
use picbench_netlist::extract::extract_payload;
use picbench_netlist::{json, Fnv64, Netlist, ValidationIssue};
use picbench_problems::Problem;
use picbench_sim::{
    sweep_planned, sweep_with_plan, Backend, Circuit, FrequencyResponse, ModelRegistry,
    ResponseComparison, ScheduleCache, SimError, SimulateError, SolveWorkspace, SweepPlan,
    WavelengthGrid,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default tolerance on the maximum per-pair |ΔS|² for functional
/// equivalence.
pub const DEFAULT_FUNCTIONAL_TOLERANCE: f64 = 1e-5;

/// The verdict on one response.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// `Ok(())` when the design simulated; otherwise every classified
    /// issue found.
    pub syntax: Result<(), Vec<ValidationIssue>>,
    /// Functional verdict (`None` when syntax failed).
    pub functional: Option<bool>,
    /// Response-comparison details when functionality was checked.
    pub comparison: Option<ResponseComparison>,
}

impl EvalReport {
    /// Whether the design passed the syntax check.
    pub fn syntax_pass(&self) -> bool {
        self.syntax.is_ok()
    }

    /// Whether the design passed both checks.
    pub fn functional_pass(&self) -> bool {
        self.syntax_pass() && self.functional == Some(true)
    }

    /// The classified issues (empty when syntax passed).
    pub fn issues(&self) -> &[ValidationIssue] {
        match &self.syntax {
            Ok(()) => &[],
            Err(issues) => issues,
        }
    }

    fn syntax_fail(issues: Vec<ValidationIssue>) -> Self {
        EvalReport {
            syntax: Err(issues),
            functional: None,
            comparison: None,
        }
    }
}

/// Identifies one simulation: canonical netlist digest, wavelength grid
/// (bit pattern), backend, and the problem's external port-count spec
/// (which participates in validation).
pub(crate) type SimKey = (u64, (u64, u64, usize), Backend, (usize, usize));

/// A [`SimKey`] further scoped by problem-id digest and functional
/// tolerance — the key of a finished [`EvalReport`]. (Digests rather
/// than owned `String`s keep cache lookups allocation-free.)
pub(crate) type ReportKey = (SimKey, u64, u64);

/// Identifies one raw-response evaluation: response-text digest, grid,
/// backend, problem-id digest, tolerance. A verdict is a pure function
/// of these (given the fixed built-in registry), so whole reports can be
/// replayed from it.
pub(crate) type ResponseKey = (u64, (u64, u64, usize), Backend, u64, u64);

/// The memoized outcome of simulating one structurally valid netlist.
#[derive(Debug, Clone)]
enum SimOutcome {
    /// The sweep succeeded.
    Response(Arc<FrequencyResponse>),
    /// The sweep failed (e.g. a singular system or a model rejecting its
    /// settings at some wavelength).
    Failed(SimError),
}

const SHARD_COUNT: usize = 16;

/// Counter snapshot of an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalCacheStats {
    /// Whole verdicts replayed straight from the response text.
    pub response_hits: u64,
    /// Verdicts replayed from the canonical netlist digest.
    pub report_hits: u64,
    /// Verdicts re-derived from a memoized sweep.
    pub sim_hits: u64,
    /// Lookups served from the persistent disk tier (counted separately
    /// from the memory-tier hits above; a disk hit also warms memory, so
    /// repeats of the same key surface as memory hits).
    pub disk_hits: u64,
    /// Evaluations that had to run the full simulation.
    pub misses: u64,
}

impl EvalCacheStats {
    /// Cache hits plus executed simulations. (Structurally invalid
    /// first-sight responses run no sweep and are counted on neither
    /// side; their repeats surface as `response_hits`.)
    pub fn lookups(&self) -> u64 {
        self.response_hits + self.report_hits + self.sim_hits + self.disk_hits + self.misses
    }

    /// Fraction of [`EvalCacheStats::lookups`] served without running a
    /// simulation.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            1.0 - self.misses as f64 / lookups as f64
        }
    }
}

/// Per-tenant hit/miss accounting over a shared [`EvalCache`].
///
/// A process-wide cache serving several tenants (the `picbench-server`
/// session table) still needs to answer "who benefited?": a scope is a
/// bundle of atomic counters that an [`Evaluator`] bumps *in addition
/// to* the cache's own global counters, on exactly the same events.
/// Scopes are plain data — they hold no keys and no reports, so handing
/// a tenant its scope stats can never leak another tenant's results.
/// Summing every scope's counters reproduces the global counters for
/// the same window (both sides count each lookup exactly once).
#[derive(Debug, Default)]
pub struct CacheScope {
    response_hits: AtomicU64,
    report_hits: AtomicU64,
    sim_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheScope {
    /// A fresh scope with zeroed counters.
    pub fn new() -> Self {
        CacheScope::default()
    }

    /// Snapshot of this scope's counters (same shape as the cache-wide
    /// [`EvalCache::stats`], same cheap atomic loads).
    pub fn stats(&self) -> EvalCacheStats {
        EvalCacheStats {
            response_hits: self.response_hits.load(Ordering::Relaxed),
            report_hits: self.report_hits.load(Ordering::Relaxed),
            sim_hits: self.sim_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// A sharded, thread-safe, content-addressed evaluation cache.
///
/// Level 1 memoizes sweep outcomes by simulation key (canonical netlist
/// digest, grid, backend, port spec); level 2 memoizes complete
/// [`EvalReport`]s keyed additionally by problem and tolerance. Shards
/// are plain mutexed hash maps — entries are only ever inserted
/// (idempotently: every writer computes the identical value for a key, a
/// consequence of canonical simulation), so contention is limited to
/// short lock windows on one of 16 stripes.
#[derive(Debug)]
pub struct EvalCache {
    sim_shards: Vec<Mutex<HashMap<SimKey, SimOutcome>>>,
    report_shards: Vec<Mutex<HashMap<ReportKey, EvalReport>>>,
    response_shards: Vec<Mutex<HashMap<ResponseKey, EvalReport>>>,
    /// Optional persistent tier: memory misses fall through to it, and
    /// fresh computations write through so they warm-start future runs.
    disk: Option<Arc<crate::persist::EvalStore>>,
    response_hits: AtomicU64,
    report_hits: AtomicU64,
    sim_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        EvalCache {
            sim_shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            report_shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            response_shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            disk: None,
            response_hits: AtomicU64::new(0),
            report_hits: AtomicU64::new(0),
            sim_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Attaches a persistent disk tier: lookups missing every memory
    /// tier fall through to the store (counted as
    /// [`EvalCacheStats::disk_hits`] and warming memory), and fresh
    /// results write through so later runs warm-start. Store write
    /// failures degrade the store silently — the cache never fails an
    /// evaluation over its disk tier.
    pub fn with_disk(mut self, store: Arc<crate::persist::EvalStore>) -> Self {
        self.disk = Some(store);
        self
    }

    /// The attached disk tier, if any.
    pub fn disk(&self) -> Option<&Arc<crate::persist::EvalStore>> {
        self.disk.as_ref()
    }

    fn shard(hash: u64) -> usize {
        (hash as usize) & (SHARD_COUNT - 1)
    }

    /// Every `get_*` counts its own hit (memory tier, then disk tier)
    /// both globally and in the caller's [`CacheScope`], if any; `None`
    /// means the caller computes — and counts the miss only when it
    /// actually runs a sweep.
    fn get_report(&self, key: &ReportKey, scope: Option<&CacheScope>) -> Option<EvalReport> {
        {
            let shard = self.report_shards[Self::shard(key.0 .0)]
                .lock()
                .expect("report shard poisoned");
            if let Some(report) = shard.get(key) {
                self.report_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(scope) = scope {
                    scope.report_hits.fetch_add(1, Ordering::Relaxed);
                }
                return Some(report.clone());
            }
        }
        let report = self.disk.as_ref()?.get_report(key)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(scope) = scope {
            scope.disk_hits.fetch_add(1, Ordering::Relaxed);
        }
        let mut shard = self.report_shards[Self::shard(key.0 .0)]
            .lock()
            .expect("report shard poisoned");
        shard.entry(*key).or_insert_with(|| report.clone());
        Some(report)
    }

    fn put_report(&self, key: ReportKey, report: EvalReport) {
        if let Some(disk) = &self.disk {
            disk.put_report(&key, &report);
        }
        let mut shard = self.report_shards[Self::shard(key.0 .0)]
            .lock()
            .expect("report shard poisoned");
        shard.entry(key).or_insert(report);
    }

    fn get_response(&self, key: &ResponseKey, scope: Option<&CacheScope>) -> Option<EvalReport> {
        {
            let shard = self.response_shards[Self::shard(key.0)]
                .lock()
                .expect("response shard poisoned");
            if let Some(report) = shard.get(key) {
                self.response_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(scope) = scope {
                    scope.response_hits.fetch_add(1, Ordering::Relaxed);
                }
                return Some(report.clone());
            }
        }
        let report = self.disk.as_ref()?.get_verdict(key)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(scope) = scope {
            scope.disk_hits.fetch_add(1, Ordering::Relaxed);
        }
        let mut shard = self.response_shards[Self::shard(key.0)]
            .lock()
            .expect("response shard poisoned");
        shard.entry(*key).or_insert_with(|| report.clone());
        Some(report)
    }

    fn put_response(&self, key: ResponseKey, report: EvalReport) {
        if let Some(disk) = &self.disk {
            disk.put_verdict(&key, &report);
        }
        let mut shard = self.response_shards[Self::shard(key.0)]
            .lock()
            .expect("response shard poisoned");
        shard.entry(key).or_insert(report);
    }

    fn get_sim(&self, key: &SimKey, scope: Option<&CacheScope>) -> Option<SimOutcome> {
        {
            let shard = self.sim_shards[Self::shard(key.0)]
                .lock()
                .expect("sim shard poisoned");
            if let Some(outcome) = shard.get(key) {
                self.sim_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(scope) = scope {
                    scope.sim_hits.fetch_add(1, Ordering::Relaxed);
                }
                return Some(outcome.clone());
            }
        }
        // Only successful sweeps are persisted; failures recompute (they
        // run no sweep, so replaying them from disk would save nothing).
        let response = self.disk.as_ref()?.get_sim(key)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(scope) = scope {
            scope.disk_hits.fetch_add(1, Ordering::Relaxed);
        }
        let outcome = SimOutcome::Response(Arc::new(response));
        let mut shard = self.sim_shards[Self::shard(key.0)]
            .lock()
            .expect("sim shard poisoned");
        Some(shard.entry(*key).or_insert(outcome).clone())
    }

    fn put_sim(&self, key: SimKey, outcome: SimOutcome) {
        if let (Some(disk), SimOutcome::Response(response)) = (&self.disk, &outcome) {
            disk.put_sim(&key, response);
        }
        let mut shard = self.sim_shards[Self::shard(key.0)]
            .lock()
            .expect("sim shard poisoned");
        shard.entry(key).or_insert(outcome);
    }

    /// Number of memoized sweep outcomes.
    pub fn simulation_count(&self) -> usize {
        self.sim_shards
            .iter()
            .map(|s| s.lock().expect("sim shard poisoned").len())
            .sum()
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> EvalCacheStats {
        EvalCacheStats {
            response_hits: self.response_hits.load(Ordering::Relaxed),
            report_hits: self.report_hits.load(Ordering::Relaxed),
            sim_hits: self.sim_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The evaluation engine: registry + sweep settings + caches.
#[derive(Debug)]
pub struct Evaluator {
    registry: ModelRegistry,
    grid: WavelengthGrid,
    backend: Backend,
    tolerance: f64,
    /// Worker threads per sweep: `0` applies the simulator's default
    /// policy (parallel for large grids), `1` runs serially on the
    /// reusable workspace. Campaign workers use `1` — the campaign
    /// parallelizes *across* evaluations instead.
    sweep_threads: usize,
    /// Shared evaluation cache (optional; campaigns share one).
    cache: Option<Arc<EvalCache>>,
    /// Per-tenant accounting scope: every cache hit/miss this evaluator
    /// causes is double-counted here (optional; servers attach one per
    /// tenant).
    scope: Option<Arc<CacheScope>>,
    /// Immutable precomputed golden table shared across workers.
    shared_goldens: Option<Arc<HashMap<String, Arc<FrequencyResponse>>>>,
    /// Locally computed golden responses (fallback / standalone use).
    golden_cache: HashMap<String, Arc<FrequencyResponse>>,
    /// Topology-level sweep schedules, reused across candidates.
    schedules: ScheduleCache,
    /// The serial-sweep workspace, reused across candidates.
    workspace: SolveWorkspace,
    /// Rendered system prompts, memoized per restrictions flag.
    system_prompts: [Option<Arc<String>>; 2],
    /// Whether sweeps may fold wavelength-independent circuits.
    constant_fold: bool,
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator::new(WavelengthGrid::paper_fast(), Backend::default())
    }
}

impl Evaluator {
    /// Creates an evaluator with the built-in model registry.
    pub fn new(grid: WavelengthGrid, backend: Backend) -> Self {
        Evaluator {
            registry: ModelRegistry::with_builtins(),
            grid,
            backend,
            tolerance: DEFAULT_FUNCTIONAL_TOLERANCE,
            sweep_threads: 0,
            cache: None,
            scope: None,
            shared_goldens: None,
            golden_cache: HashMap::new(),
            schedules: ScheduleCache::new(),
            workspace: SolveWorkspace::new(),
            system_prompts: [None, None],
            constant_fold: true,
        }
    }

    /// Overrides the functional tolerance (max |ΔS|² across the sweep).
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Attaches a shared evaluation cache.
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a per-tenant accounting scope: cache hits and misses
    /// this evaluator causes are counted into the scope *in addition
    /// to* the cache's global counters. No effect without a cache.
    pub fn with_cache_scope(mut self, scope: Arc<CacheScope>) -> Self {
        self.scope = Some(scope);
        self
    }

    /// Attaches an immutable, precomputed golden-response table (keyed by
    /// problem id). Problems absent from the table fall back to local
    /// computation.
    pub fn with_shared_goldens(
        mut self,
        goldens: Arc<HashMap<String, Arc<FrequencyResponse>>>,
    ) -> Self {
        self.shared_goldens = Some(goldens);
        self
    }

    /// Sets the per-sweep worker count (`0` = simulator default policy,
    /// `1` = serial on the reusable workspace).
    pub fn with_sweep_threads(mut self, threads: usize) -> Self {
        self.sweep_threads = threads;
        self
    }

    /// Enables or disables the constant-response sweep fold for fully
    /// wavelength-independent circuits (enabled by default; results are
    /// bit-identical either way — disabling exists to reproduce pre-fold
    /// baseline timings).
    pub fn with_constant_fold(mut self, enabled: bool) -> Self {
        self.constant_fold = enabled;
        self
    }

    /// The model registry in use.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The wavelength grid in use.
    pub fn grid(&self) -> &WavelengthGrid {
        &self.grid
    }

    /// The attached cache's counters, if a cache is attached.
    pub fn cache_stats(&self) -> Option<EvalCacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    fn grid_key(&self) -> (u64, u64, usize) {
        (
            self.grid.start_um.to_bits(),
            self.grid.stop_um.to_bits(),
            self.grid.points,
        )
    }

    fn sim_key(&self, problem: &Problem, hash: u64) -> SimKey {
        (
            hash,
            self.grid_key(),
            self.backend,
            (problem.spec.inputs, problem.spec.outputs),
        )
    }

    /// Simulates the canonical form of a structurally valid netlist
    /// through the schedule-cached plan pipeline.
    fn simulate_canonical(
        &mut self,
        canonical: &Netlist,
        problem: &Problem,
    ) -> Result<FrequencyResponse, SimulateError> {
        let circuit = Circuit::elaborate(canonical, &self.registry, Some(&problem.spec))?;
        let schedule = self.schedules.get_or_build(&circuit);
        let plan = SweepPlan::with_schedule(&circuit, self.backend, schedule)
            .map_err(SimulateError::Sim)?
            .with_constant_fold(self.constant_fold);
        let grid = self.grid;
        let response = if self.sweep_threads == 1 {
            sweep_planned(&plan, &grid, &mut self.workspace)
        } else {
            sweep_with_plan(&plan, &grid, self.sweep_threads)
        }
        .map_err(SimulateError::Sim)?;
        Ok(response)
    }

    /// Simulates (and caches) a problem's golden design.
    ///
    /// # Panics
    ///
    /// Panics if the golden design itself fails to simulate — golden
    /// designs are verified by the test suite, so this indicates a bug,
    /// not an input error.
    pub fn golden_response(&mut self, problem: &Problem) -> &FrequencyResponse {
        self.golden_response_arc(problem);
        if let Some(shared) = &self.shared_goldens {
            if let Some(response) = shared.get(&problem.id) {
                return response;
            }
        }
        &self.golden_cache[&problem.id]
    }

    /// Computes (or fetches) the golden response **and** seeds the
    /// attached cache with it under the golden netlist's own content
    /// hash — so candidates that reproduce the golden design verbatim
    /// (clean samples, successful repairs) are instant cache hits. The
    /// seeded entry is bit-identical to what a cold candidate evaluation
    /// would compute, because goldens run through the same canonical
    /// pipeline.
    pub fn prime_golden(&mut self, problem: &Problem) -> Arc<FrequencyResponse> {
        let golden = self.golden_response_arc(problem);
        if let Some(cache) = &self.cache {
            let key = self.sim_key(problem, problem.golden.content_hash());
            cache.put_sim(key, SimOutcome::Response(Arc::clone(&golden)));
        }
        golden
    }

    /// The rendered system prompt for this evaluator's registry, memoized
    /// per restrictions flag (rendering walks the whole API document —
    /// far too much work to redo for every sample).
    pub fn system_prompt(&mut self, restrictions: bool) -> Arc<String> {
        let slot = &mut self.system_prompts[usize::from(restrictions)];
        if slot.is_none() {
            let infos: Vec<_> = self.registry.iter().map(|m| m.info().clone()).collect();
            let prompt = picbench_prompt::render_system_prompt(
                infos.iter(),
                picbench_prompt::SystemPromptConfig {
                    include_restrictions: restrictions,
                },
            );
            *slot = Some(Arc::new(prompt));
        }
        Arc::clone(slot.as_ref().expect("just filled"))
    }

    /// [`Evaluator::golden_response`], returning the shareable handle.
    pub fn golden_response_arc(&mut self, problem: &Problem) -> Arc<FrequencyResponse> {
        if let Some(shared) = &self.shared_goldens {
            if let Some(response) = shared.get(&problem.id) {
                return Arc::clone(response);
            }
        }
        if !self.golden_cache.contains_key(&problem.id) {
            let canonical = problem.golden.canonicalize();
            let response = self
                .simulate_canonical(&canonical, problem)
                .unwrap_or_else(|e| panic!("golden design {} failed: {e}", problem.id));
            self.golden_cache
                .insert(problem.id.to_string(), Arc::new(response));
        }
        Arc::clone(&self.golden_cache[&problem.id])
    }

    /// Parses a raw response into a netlist, collecting every classified
    /// issue along the way.
    pub fn parse_response(&self, response_text: &str) -> (Option<Netlist>, Vec<ValidationIssue>) {
        let mut issues = Vec::new();
        let payload = match extract_payload(response_text) {
            Ok(p) => p,
            Err(e) => {
                issues.push(classify::classify_extract_error(&e));
                return (None, issues);
            }
        };
        if let Some(issue) = classify::classify_extra_content(&payload) {
            issues.push(issue);
        }
        let value = match json::parse(&payload.json) {
            Ok(v) => v,
            Err(e) => {
                issues.push(classify::classify_json_error(&e));
                return (None, issues);
            }
        };
        match Netlist::from_value(&value) {
            Ok(netlist) => (Some(netlist), issues),
            Err(e) => {
                issues.push(classify::classify_schema_error(&e));
                (None, issues)
            }
        }
    }

    /// Builds the verdict for a memoized (or fresh) simulation outcome.
    fn report_from_outcome(&mut self, problem: &Problem, outcome: &SimOutcome) -> EvalReport {
        match outcome {
            SimOutcome::Failed(e) => EvalReport::syntax_fail(vec![classify::classify_sim_error(e)]),
            SimOutcome::Response(response) => {
                let tolerance = self.tolerance;
                let golden = self.golden_response_arc(problem);
                let comparison = response.compare(&golden);
                EvalReport {
                    syntax: Ok(()),
                    functional: Some(comparison.is_equivalent(tolerance)),
                    comparison: Some(comparison),
                }
            }
        }
    }

    /// Looks up or computes the memoized sweep outcome of a netlist (the
    /// sim level shared by [`Evaluator::evaluate_netlist`] and
    /// [`Evaluator::candidate_response`]).
    ///
    /// Only valid netlists get a cache entry, so a hit implies the whole
    /// hash class validates; validation failures are classified from the
    /// document exactly as written and returned as `Err`.
    fn sim_outcome(
        &mut self,
        problem: &Problem,
        netlist: &Netlist,
        hash: u64,
    ) -> Result<SimOutcome, Vec<ValidationIssue>> {
        let key = self.cache.as_ref().map(|_| self.sim_key(problem, hash));
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(outcome) = cache.get_sim(key, self.scope.as_deref()) {
                return Ok(outcome);
            }
        }
        // Validate the document as written, so classified issues describe
        // exactly what the model produced.
        if let Err(e) = Circuit::elaborate(netlist, &self.registry, Some(&problem.spec)) {
            return Err(e.issues);
        }
        if let Some(cache) = &self.cache {
            cache.misses.fetch_add(1, Ordering::Relaxed);
            if let Some(scope) = &self.scope {
                scope.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        let canonical = netlist.canonicalize();
        let outcome = match self.simulate_canonical(&canonical, problem) {
            Ok(response) => SimOutcome::Response(Arc::new(response)),
            // Canonicalization preserves structural validity; reaching
            // this arm would be a canonicalizer bug, but report it
            // faithfully rather than panic.
            Err(SimulateError::Elaborate(e)) => return Err(e.issues),
            Err(SimulateError::Sim(e)) => SimOutcome::Failed(e),
        };
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            cache.put_sim(key, outcome.clone());
        }
        Ok(outcome)
    }

    /// Evaluates an already-parsed netlist against a problem.
    ///
    /// This is the content-addressed core of [`Evaluator::evaluate_response`]:
    /// structurally valid netlists are canonicalized, simulated through
    /// the cached plan pipeline and memoized; invalid ones are classified
    /// from the document exactly as written.
    pub fn evaluate_netlist(&mut self, problem: &Problem, netlist: &Netlist) -> EvalReport {
        let hash = netlist.content_hash();
        let key = self.cache.as_ref().map(|_| {
            (
                self.sim_key(problem, hash),
                Fnv64::hash_str(&problem.id),
                self.tolerance.to_bits(),
            )
        });

        // Level 2: a finished verdict for this exact evaluation.
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(report) = cache.get_report(key, self.scope.as_deref()) {
                return report;
            }
        }

        // Level 1: a memoized sweep outcome, computed on miss.
        let outcome = match self.sim_outcome(problem, netlist, hash) {
            Ok(outcome) => outcome,
            Err(issues) => return EvalReport::syntax_fail(issues),
        };

        let report = self.report_from_outcome(problem, &outcome);
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            cache.put_report(key, report.clone());
        }
        report
    }

    /// Evaluates one raw response against a problem.
    ///
    /// With a cache attached, whole verdicts are replayed from the
    /// response text itself (level 0) before any extraction or parsing
    /// happens — a verdict is a pure function of
    /// `(text, problem, grid, backend, tolerance)`, so replay is
    /// indistinguishable from recomputation.
    pub fn evaluate_response(&mut self, problem: &Problem, response_text: &str) -> EvalReport {
        let key: Option<ResponseKey> = self.cache.as_ref().map(|_| {
            (
                Fnv64::hash_str(response_text),
                self.grid_key(),
                self.backend,
                Fnv64::hash_str(&problem.id),
                self.tolerance.to_bits(),
            )
        });
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(report) = cache.get_response(key, self.scope.as_deref()) {
                return report;
            }
        }
        let (netlist, issues) = self.parse_response(response_text);
        let report = match netlist {
            Some(n) if issues.is_empty() => self.evaluate_netlist(problem, &n),
            _ => EvalReport::syntax_fail(issues),
        };
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            cache.put_response(key, report.clone());
        }
        report
    }

    /// The frequency response of a structurally valid candidate netlist,
    /// through the same canonical, cached pipeline the verdicts use.
    ///
    /// # Errors
    ///
    /// Returns the classified issues when the netlist fails validation or
    /// simulation.
    pub fn candidate_response(
        &mut self,
        problem: &Problem,
        netlist: &Netlist,
    ) -> Result<Arc<FrequencyResponse>, Vec<ValidationIssue>> {
        match self.sim_outcome(problem, netlist, netlist.content_hash())? {
            SimOutcome::Response(r) => Ok(r),
            SimOutcome::Failed(e) => Err(vec![classify::classify_sim_error(&e)]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_netlist::FailureType;

    fn mzi_ps() -> Problem {
        picbench_problems::find("mzi-ps").unwrap()
    }

    fn wrap(json: &str) -> String {
        format!("<analysis>reasoning</analysis>\n<result>\n{json}\n</result>")
    }

    #[test]
    fn golden_passes_both_checks() {
        let problem = mzi_ps();
        let mut ev = Evaluator::default();
        let report = ev.evaluate_response(&problem, &wrap(&problem.golden.to_json_string()));
        assert!(report.syntax_pass(), "{:?}", report.issues());
        assert!(report.functional_pass());
        let cmp = report.comparison.unwrap();
        assert!(cmp.max_power_diff < 1e-12);
    }

    #[test]
    fn fig4_wrong_port_fails_syntax_with_paper_message() {
        let problem = mzi_ps();
        let mut broken = problem.golden.clone();
        broken.connections[1].b = picbench_netlist::PortRef::new("mmi2", "I2");
        let mut ev = Evaluator::default();
        let report = ev.evaluate_response(&problem, &wrap(&broken.to_json_string()));
        assert!(!report.syntax_pass());
        assert_eq!(report.functional, None);
        let issue = &report.issues()[0];
        assert_eq!(issue.failure, FailureType::WrongPort);
        assert!(issue
            .message
            .starts_with("Instance mmi2 does not contain port I2. Available ports:"));
    }

    #[test]
    fn functional_corruption_fails_functionality_only() {
        let problem = mzi_ps();
        let mut tweaked = problem.golden.clone();
        tweaked
            .instances
            .get_mut("waveBottom")
            .unwrap()
            .settings
            .insert("length".to_string(), 35.0);
        let mut ev = Evaluator::default();
        let report = ev.evaluate_response(&problem, &wrap(&tweaked.to_json_string()));
        assert!(report.syntax_pass());
        assert_eq!(report.functional, Some(false));
        assert!(!report.functional_pass());
    }

    #[test]
    fn fenced_response_is_extra_content() {
        let problem = mzi_ps();
        let text = format!(
            "<result>\n```json\n{}\n```\n</result>",
            problem.golden.to_json_string()
        );
        let mut ev = Evaluator::default();
        let report = ev.evaluate_response(&problem, &text);
        assert!(!report.syntax_pass());
        assert_eq!(report.issues()[0].failure, FailureType::ExtraJsonContent);
    }

    #[test]
    fn prose_only_response_is_other_syntax() {
        let problem = mzi_ps();
        let mut ev = Evaluator::default();
        let report = ev.evaluate_response(&problem, "I'm sorry, I cannot design PICs.");
        assert!(!report.syntax_pass());
        assert_eq!(report.issues()[0].failure, FailureType::OtherSyntax);
    }

    #[test]
    fn golden_cache_hits() {
        let problem = mzi_ps();
        let mut ev = Evaluator::default();
        let a = ev.golden_response(&problem).clone();
        let b = ev.golden_response(&problem).clone();
        assert_eq!(a, b);
    }

    #[test]
    fn all_24_goldens_pass_their_own_evaluation() {
        let mut ev = Evaluator::default();
        for problem in picbench_problems::suite() {
            let report = ev.evaluate_response(&problem, &wrap(&problem.golden.to_json_string()));
            assert!(
                report.functional_pass(),
                "golden of {} failed: {:?}",
                problem.id,
                report.issues()
            );
        }
    }

    #[test]
    fn cached_evaluation_matches_cold_evaluation() {
        let problem = mzi_ps();
        let cache = Arc::new(EvalCache::new());
        let mut cached = Evaluator::default().with_cache(Arc::clone(&cache));
        let mut cold = Evaluator::default();

        // A permuted-but-identical document must hit the cache and yield
        // the same verdict and comparison bits as the cold path.
        let golden_text = wrap(&problem.golden.to_json_string());
        let permuted_text = wrap(&problem.golden.canonicalize().to_json_string());
        let first = cached.evaluate_response(&problem, &golden_text);
        let second = cached.evaluate_response(&problem, &permuted_text);
        let reference = cold.evaluate_response(&problem, &golden_text);
        for report in [&first, &second, &reference] {
            assert!(report.functional_pass());
        }
        assert_eq!(first.comparison, second.comparison);
        assert_eq!(first.comparison, reference.comparison);

        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.report_hits + stats.sim_hits, 1, "{stats:?}");
        assert_eq!(cache.simulation_count(), 1);
    }

    #[test]
    fn disk_tier_warm_starts_across_cache_instances() {
        use crate::persist::EvalStore;
        let dir = std::env::temp_dir().join(format!("picbench-disk-tier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let problem = mzi_ps();
        let text = wrap(&problem.golden.to_json_string());

        let cold = {
            let store = Arc::new(EvalStore::open(&dir).unwrap());
            let cache = Arc::new(EvalCache::new().with_disk(store));
            let mut ev = Evaluator::default().with_cache(Arc::clone(&cache));
            let cold = ev.evaluate_response(&problem, &text);
            assert!(cold.functional_pass());
            let stats = cache.stats();
            assert_eq!(stats.misses, 1, "{stats:?}");
            assert_eq!(stats.disk_hits, 0, "{stats:?}");
            assert!(cache.disk().unwrap().sync());
            cold
        };

        // A fresh process (fresh memory tiers) replays from disk alone.
        let store = Arc::new(EvalStore::open(&dir).unwrap());
        let cache = Arc::new(EvalCache::new().with_disk(store));
        let mut ev = Evaluator::default().with_cache(Arc::clone(&cache));
        let warm = ev.evaluate_response(&problem, &text);
        assert!(warm.functional_pass());
        let stats = cache.stats();
        assert_eq!(stats.misses, 0, "{stats:?}");
        assert_eq!(stats.disk_hits, 1, "{stats:?}");
        assert_eq!(
            stats.response_hits + stats.report_hits + stats.sim_hits,
            0,
            "disk hits must not masquerade as memory hits: {stats:?}"
        );
        // Bit-identical comparison details across the disk roundtrip.
        assert_eq!(cold.comparison, warm.comparison);

        // The disk hit warmed memory: repeats are memory hits.
        let again = ev.evaluate_response(&problem, &text);
        assert!(again.functional_pass());
        assert_eq!(cache.stats().response_hits, 1);
        assert_eq!(cache.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_goldens_are_used_verbatim() {
        let problem = mzi_ps();
        let mut source = Evaluator::default();
        let golden = source.golden_response_arc(&problem);
        let table: HashMap<String, Arc<FrequencyResponse>> =
            [(problem.id.to_string(), Arc::clone(&golden))].into();
        let mut ev = Evaluator::default().with_shared_goldens(Arc::new(table));
        // Same pointer, no recomputation.
        assert!(Arc::ptr_eq(&golden, &ev.golden_response_arc(&problem)));
        let report = ev.evaluate_response(&problem, &wrap(&problem.golden.to_json_string()));
        assert!(report.functional_pass());
    }

    #[test]
    fn candidate_response_reports_invalid_netlists() {
        let problem = mzi_ps();
        let mut broken = problem.golden.clone();
        broken.connections[1].b = picbench_netlist::PortRef::new("mmi2", "I2");
        let mut ev = Evaluator::default().with_cache(Arc::new(EvalCache::new()));
        let issues = ev.candidate_response(&problem, &broken).unwrap_err();
        assert_eq!(issues[0].failure, FailureType::WrongPort);
        let ok = ev.candidate_response(&problem, &problem.golden).unwrap();
        assert_eq!(ok.wavelengths().len(), ev.grid().points);
    }
}
