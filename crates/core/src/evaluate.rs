//! Syntax and functionality evaluation (§III-C).
//!
//! A raw chat response is judged in two stages, as in the paper:
//!
//! 1. **Syntax**: extract the JSON payload, parse it, interpret it as a
//!    netlist, validate it structurally and simulate it. If a frequency
//!    response comes out, syntax passes.
//! 2. **Functionality**: compare the generated design's frequency
//!    response against the golden design's over the full sweep.
//!
//! Every simulation here goes through [`simulate_netlist`] →
//! [`picbench_sim::sweep`], i.e. the plan/execute pipeline: the sweep
//! structure is computed once per candidate circuit, the per-point solves
//! reuse workspaces allocation-free, and grids of
//! [`picbench_sim::PARALLEL_THRESHOLD`] or more points (the default
//! [`WavelengthGrid::paper_fast`] qualifies) run on parallel workers —
//! which is what keeps large evaluation campaigns cheap.

use crate::classify;
use picbench_netlist::extract::extract_payload;
use picbench_netlist::{json, Netlist, ValidationIssue};
use picbench_problems::Problem;
use picbench_sim::{
    simulate_netlist, Backend, FrequencyResponse, ModelRegistry, ResponseComparison, SimulateError,
    WavelengthGrid,
};
use std::collections::HashMap;

/// Default tolerance on the maximum per-pair |ΔS|² for functional
/// equivalence.
pub const DEFAULT_FUNCTIONAL_TOLERANCE: f64 = 1e-5;

/// The verdict on one response.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// `Ok(())` when the design simulated; otherwise every classified
    /// issue found.
    pub syntax: Result<(), Vec<ValidationIssue>>,
    /// Functional verdict (`None` when syntax failed).
    pub functional: Option<bool>,
    /// Response-comparison details when functionality was checked.
    pub comparison: Option<ResponseComparison>,
}

impl EvalReport {
    /// Whether the design passed the syntax check.
    pub fn syntax_pass(&self) -> bool {
        self.syntax.is_ok()
    }

    /// Whether the design passed both checks.
    pub fn functional_pass(&self) -> bool {
        self.syntax_pass() && self.functional == Some(true)
    }

    /// The classified issues (empty when syntax passed).
    pub fn issues(&self) -> &[ValidationIssue] {
        match &self.syntax {
            Ok(()) => &[],
            Err(issues) => issues,
        }
    }

    fn syntax_fail(issues: Vec<ValidationIssue>) -> Self {
        EvalReport {
            syntax: Err(issues),
            functional: None,
            comparison: None,
        }
    }
}

/// The evaluation engine: registry + sweep settings + golden-response
/// cache.
#[derive(Debug)]
pub struct Evaluator {
    registry: ModelRegistry,
    grid: WavelengthGrid,
    backend: Backend,
    tolerance: f64,
    golden_cache: HashMap<String, FrequencyResponse>,
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator::new(WavelengthGrid::paper_fast(), Backend::default())
    }
}

impl Evaluator {
    /// Creates an evaluator with the built-in model registry.
    pub fn new(grid: WavelengthGrid, backend: Backend) -> Self {
        Evaluator {
            registry: ModelRegistry::with_builtins(),
            grid,
            backend,
            tolerance: DEFAULT_FUNCTIONAL_TOLERANCE,
            golden_cache: HashMap::new(),
        }
    }

    /// Overrides the functional tolerance (max |ΔS|² across the sweep).
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The model registry in use.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The wavelength grid in use.
    pub fn grid(&self) -> &WavelengthGrid {
        &self.grid
    }

    /// Simulates (and caches) a problem's golden design.
    ///
    /// # Panics
    ///
    /// Panics if the golden design itself fails to simulate — golden
    /// designs are verified by the test suite, so this indicates a bug,
    /// not an input error.
    pub fn golden_response(&mut self, problem: &Problem) -> &FrequencyResponse {
        if !self.golden_cache.contains_key(problem.id) {
            let response = simulate_netlist(
                &problem.golden,
                &self.registry,
                Some(&problem.spec),
                &self.grid,
                self.backend,
            )
            .unwrap_or_else(|e| panic!("golden design {} failed: {e}", problem.id));
            self.golden_cache.insert(problem.id.to_string(), response);
        }
        &self.golden_cache[problem.id]
    }

    /// Parses a raw response into a netlist, collecting every classified
    /// issue along the way.
    pub fn parse_response(&self, response_text: &str) -> (Option<Netlist>, Vec<ValidationIssue>) {
        let mut issues = Vec::new();
        let payload = match extract_payload(response_text) {
            Ok(p) => p,
            Err(e) => {
                issues.push(classify::classify_extract_error(&e));
                return (None, issues);
            }
        };
        if let Some(issue) = classify::classify_extra_content(&payload) {
            issues.push(issue);
        }
        let value = match json::parse(&payload.json) {
            Ok(v) => v,
            Err(e) => {
                issues.push(classify::classify_json_error(&e));
                return (None, issues);
            }
        };
        match Netlist::from_value(&value) {
            Ok(netlist) => (Some(netlist), issues),
            Err(e) => {
                issues.push(classify::classify_schema_error(&e));
                (None, issues)
            }
        }
    }

    /// Evaluates one raw response against a problem.
    pub fn evaluate_response(&mut self, problem: &Problem, response_text: &str) -> EvalReport {
        let (netlist, mut issues) = self.parse_response(response_text);
        let netlist = match netlist {
            Some(n) if issues.is_empty() => n,
            _ => return EvalReport::syntax_fail(issues),
        };

        let generated = match simulate_netlist(
            &netlist,
            &self.registry,
            Some(&problem.spec),
            &self.grid,
            self.backend,
        ) {
            Ok(response) => response,
            Err(SimulateError::Elaborate(e)) => {
                issues.extend(e.issues);
                return EvalReport::syntax_fail(issues);
            }
            Err(SimulateError::Sim(e)) => {
                issues.push(classify::classify_sim_error(&e));
                return EvalReport::syntax_fail(issues);
            }
        };

        let tolerance = self.tolerance;
        let golden = self.golden_response(problem);
        let comparison = generated.compare(golden);
        EvalReport {
            syntax: Ok(()),
            functional: Some(comparison.is_equivalent(tolerance)),
            comparison: Some(comparison),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_netlist::FailureType;

    fn mzi_ps() -> Problem {
        picbench_problems::find("mzi-ps").unwrap()
    }

    fn wrap(json: &str) -> String {
        format!("<analysis>reasoning</analysis>\n<result>\n{json}\n</result>")
    }

    #[test]
    fn golden_passes_both_checks() {
        let problem = mzi_ps();
        let mut ev = Evaluator::default();
        let report = ev.evaluate_response(&problem, &wrap(&problem.golden.to_json_string()));
        assert!(report.syntax_pass(), "{:?}", report.issues());
        assert!(report.functional_pass());
        let cmp = report.comparison.unwrap();
        assert!(cmp.max_power_diff < 1e-12);
    }

    #[test]
    fn fig4_wrong_port_fails_syntax_with_paper_message() {
        let problem = mzi_ps();
        let mut broken = problem.golden.clone();
        broken.connections[1].b = picbench_netlist::PortRef::new("mmi2", "I2");
        let mut ev = Evaluator::default();
        let report = ev.evaluate_response(&problem, &wrap(&broken.to_json_string()));
        assert!(!report.syntax_pass());
        assert_eq!(report.functional, None);
        let issue = &report.issues()[0];
        assert_eq!(issue.failure, FailureType::WrongPort);
        assert!(issue
            .message
            .starts_with("Instance mmi2 does not contain port I2. Available ports:"));
    }

    #[test]
    fn functional_corruption_fails_functionality_only() {
        let problem = mzi_ps();
        let mut tweaked = problem.golden.clone();
        tweaked
            .instances
            .get_mut("waveBottom")
            .unwrap()
            .settings
            .insert("length".to_string(), 35.0);
        let mut ev = Evaluator::default();
        let report = ev.evaluate_response(&problem, &wrap(&tweaked.to_json_string()));
        assert!(report.syntax_pass());
        assert_eq!(report.functional, Some(false));
        assert!(!report.functional_pass());
    }

    #[test]
    fn fenced_response_is_extra_content() {
        let problem = mzi_ps();
        let text = format!(
            "<result>\n```json\n{}\n```\n</result>",
            problem.golden.to_json_string()
        );
        let mut ev = Evaluator::default();
        let report = ev.evaluate_response(&problem, &text);
        assert!(!report.syntax_pass());
        assert_eq!(report.issues()[0].failure, FailureType::ExtraJsonContent);
    }

    #[test]
    fn prose_only_response_is_other_syntax() {
        let problem = mzi_ps();
        let mut ev = Evaluator::default();
        let report = ev.evaluate_response(&problem, "I'm sorry, I cannot design PICs.");
        assert!(!report.syntax_pass());
        assert_eq!(report.issues()[0].failure, FailureType::OtherSyntax);
    }

    #[test]
    fn golden_cache_hits() {
        let problem = mzi_ps();
        let mut ev = Evaluator::default();
        let a = ev.golden_response(&problem).clone();
        let b = ev.golden_response(&problem).clone();
        assert_eq!(a, b);
    }

    #[test]
    fn all_24_goldens_pass_their_own_evaluation() {
        let mut ev = Evaluator::default();
        for problem in picbench_problems::suite() {
            let report = ev.evaluate_response(&problem, &wrap(&problem.golden.to_json_string()));
            assert!(
                report.functional_pass(),
                "golden of {} failed: {:?}",
                problem.id,
                report.issues()
            );
        }
    }
}
