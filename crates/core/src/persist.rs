//! Typed persistence over the crash-safe store: the disk tier under
//! [`EvalCache`](crate::EvalCache) and the campaign cell journal.
//!
//! `picbench-store` is a byte-level key/value log; this module owns the
//! typed encode/decode for the things PICBench persists:
//!
//! * **verdicts** ([`EvalReport`] keyed by response-text digest),
//! * **reports** ([`EvalReport`] keyed by canonical netlist digest),
//! * **sweep outcomes** ([`FrequencyResponse`] keyed by simulation key;
//!   only *successful* sweeps are persisted — failures are cheap to
//!   classify and recompute),
//! * **campaign cells** ([`ProblemTally`] keyed by campaign fingerprint
//!   and cell id — the journal resumable campaigns replay).
//!
//! Decoding is defensive end to end: any malformed value decodes to
//! `None` and the entry recomputes. Corruption costs time, never
//! correctness — the same contract the store's recovery scan makes at
//! the byte level.

use crate::evaluate::{EvalReport, ReportKey, ResponseKey, SimKey};
use crate::passk::ProblemTally;
use picbench_math::{CMatrix, Complex};
use picbench_netlist::{FailureType, ValidationIssue};
use picbench_sim::{Backend, FrequencyResponse, ResponseComparison};
use picbench_sparams::SMatrix;
use picbench_store::{RecoveryReport, Snapshot, Store, StoreIo};
use std::io;
use std::path::Path;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Record kind of a whole-verdict entry (level 0).
pub const KIND_VERDICT: u8 = 1;
/// Record kind of a finished-report entry (level 2).
pub const KIND_REPORT: u8 = 2;
/// Record kind of a memoized sweep outcome (level 1).
pub const KIND_SIM: u8 = 3;
/// Record kind of a campaign cell-completion journal entry.
pub const KIND_CELL: u8 = 4;
/// Record kind of a shard worker's lease (claim + heartbeats).
pub const KIND_LEASE: u8 = 5;
/// Record kind of a shard generation's completion statistics.
pub const KIND_STATS: u8 = 6;
/// Record kind marking a cell as *inherited* from a prior generation
/// during a shard takeover. The merge uses these marks to tell a stale
/// generation's pre-fence records (inherited by a successor) from its
/// post-fence ones (quarantined).
pub const KIND_INHERIT: u8 = 7;
/// Record kind marking a remote journal append (keyed by campaign
/// fingerprint and record seq) as applied. The network coordinator
/// writes the marker *after* the records of a batch, so a batch whose
/// marker survived a crash is known to be fully applied and a
/// replayed delivery dedupes exactly.
pub const KIND_APPLIED: u8 = 8;

/// Sanity cap on decoded element counts; corrupt length fields beyond
/// this are rejected instead of allocated.
const MAX_DECODE_ELEMS: u64 = 1 << 20;

// ---------------------------------------------------------------------
// Byte-level encode/decode helpers
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes }
    }

    fn u8(&mut self) -> Option<u8> {
        let (&first, rest) = self.bytes.split_first()?;
        self.bytes = rest;
        Some(first)
    }

    fn u64(&mut self) -> Option<u64> {
        if self.bytes.len() < 8 {
            return None;
        }
        let (head, rest) = self.bytes.split_at(8);
        self.bytes = rest;
        Some(u64::from_le_bytes(head.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn count(&mut self) -> Option<usize> {
        let n = self.u64()?;
        (n <= MAX_DECODE_ELEMS).then_some(n as usize)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.count()?;
        if self.bytes.len() < len {
            return None;
        }
        let (head, rest) = self.bytes.split_at(len);
        self.bytes = rest;
        String::from_utf8(head.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.bytes.is_empty()
    }
}

// ---------------------------------------------------------------------
// Key encodings
// ---------------------------------------------------------------------

fn put_grid(out: &mut Vec<u8>, grid: &(u64, u64, usize)) {
    put_u64(out, grid.0);
    put_u64(out, grid.1);
    put_u64(out, grid.2 as u64);
}

pub(crate) fn encode_sim_key(key: &SimKey) -> Vec<u8> {
    let (hash, grid, backend, spec) = key;
    let mut out = Vec::with_capacity(64);
    put_u64(&mut out, *hash);
    put_grid(&mut out, grid);
    put_str(&mut out, backend.token());
    put_u64(&mut out, spec.0 as u64);
    put_u64(&mut out, spec.1 as u64);
    out
}

pub(crate) fn encode_report_key(key: &ReportKey) -> Vec<u8> {
    let (sim, problem, tolerance) = key;
    let mut out = encode_sim_key(sim);
    put_u64(&mut out, *problem);
    put_u64(&mut out, *tolerance);
    out
}

pub(crate) fn encode_response_key(key: &ResponseKey) -> Vec<u8> {
    let (text, grid, backend, problem, tolerance) = key;
    let mut out = Vec::with_capacity(64);
    put_u64(&mut out, *text);
    put_grid(&mut out, grid);
    put_str(&mut out, backend.token());
    put_u64(&mut out, *problem);
    put_u64(&mut out, *tolerance);
    out
}

fn encode_cell_key(fingerprint: u64, cell: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_u64(&mut out, fingerprint);
    put_u64(&mut out, cell);
    out
}

fn encode_shard_key(fingerprint: u64, shard: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_u64(&mut out, fingerprint);
    put_u64(&mut out, u64::from(shard));
    out
}

fn decode_cell_entry(fingerprint: u64, key: &[u8], value: &[u8]) -> Option<(u64, ProblemTally)> {
    let mut r = Reader::new(key);
    let (fp, cell) = (r.u64()?, r.u64()?);
    if fp != fingerprint || !r.done() {
        return None;
    }
    Some((cell, decode_tally(value)?))
}

// ---------------------------------------------------------------------
// Value encodings
// ---------------------------------------------------------------------

fn encode_report(report: &EvalReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match &report.syntax {
        Ok(()) => out.push(1),
        Err(issues) => {
            out.push(0);
            put_u64(&mut out, issues.len() as u64);
            for issue in issues {
                let index = FailureType::ALL
                    .iter()
                    .position(|f| *f == issue.failure)
                    .expect("FailureType::ALL is exhaustive");
                out.push(index as u8);
                put_str(&mut out, &issue.message);
            }
        }
    }
    out.push(match report.functional {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
    match &report.comparison {
        None => out.push(0),
        Some(cmp) => {
            out.push(1);
            out.push(u8::from(cmp.ports_match));
            out.push(u8::from(cmp.grids_match));
            put_u64(&mut out, cmp.max_power_diff.to_bits());
            put_u64(&mut out, cmp.rms_power_diff.to_bits());
        }
    }
    out
}

fn decode_report(bytes: &[u8]) -> Option<EvalReport> {
    let mut r = Reader::new(bytes);
    let syntax = match r.u8()? {
        1 => Ok(()),
        0 => {
            let n = r.count()?;
            let mut issues = Vec::with_capacity(n);
            for _ in 0..n {
                let failure = *FailureType::ALL.get(r.u8()? as usize)?;
                issues.push(ValidationIssue::new(failure, r.str()?));
            }
            Err(issues)
        }
        _ => return None,
    };
    let functional = match r.u8()? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        _ => return None,
    };
    let comparison = match r.u8()? {
        0 => None,
        1 => Some(ResponseComparison {
            ports_match: r.u8()? == 1,
            grids_match: r.u8()? == 1,
            max_power_diff: r.f64()?,
            rms_power_diff: r.f64()?,
        }),
        _ => return None,
    };
    r.done().then_some(EvalReport {
        syntax,
        functional,
        comparison,
    })
}

fn encode_response(response: &FrequencyResponse) -> Vec<u8> {
    let ports = response.ports();
    let wavelengths = response.wavelengths();
    let dim = ports.len();
    let mut out = Vec::with_capacity(32 + wavelengths.len() * (8 + dim * dim * 16));
    put_u64(&mut out, wavelengths.len() as u64);
    for &wl in wavelengths {
        put_u64(&mut out, wl.to_bits());
    }
    put_u64(&mut out, ports.len() as u64);
    for port in ports {
        put_str(&mut out, port);
    }
    for i in 0..wavelengths.len() {
        let sample = response.sample(i).expect("one sample per wavelength");
        for z in sample.matrix().as_slice() {
            put_u64(&mut out, z.re.to_bits());
            put_u64(&mut out, z.im.to_bits());
        }
    }
    out
}

fn decode_response(bytes: &[u8]) -> Option<FrequencyResponse> {
    let mut r = Reader::new(bytes);
    let n_points = r.count()?;
    let mut wavelengths = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        wavelengths.push(r.f64()?);
    }
    let n_ports = r.count()?;
    let mut ports = Vec::with_capacity(n_ports);
    for _ in 0..n_ports {
        ports.push(r.str()?);
    }
    let mut samples = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        let mut m = CMatrix::zeros(n_ports, n_ports);
        for z in m.as_mut_slice() {
            *z = Complex {
                re: r.f64()?,
                im: r.f64()?,
            };
        }
        samples.push(SMatrix::from_matrix(ports.clone(), m));
    }
    if !r.done() {
        return None;
    }
    FrequencyResponse::from_parts(wavelengths, ports, samples)
}

fn encode_tally(tally: &ProblemTally) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    put_u64(&mut out, tally.n as u64);
    put_u64(&mut out, tally.syntax_passes as u64);
    put_u64(&mut out, tally.functional_passes as u64);
    out
}

fn decode_tally(bytes: &[u8]) -> Option<ProblemTally> {
    let mut r = Reader::new(bytes);
    let tally = ProblemTally {
        n: r.count()?,
        syntax_passes: r.count()?,
        functional_passes: r.count()?,
    };
    r.done().then_some(tally)
}

// ---------------------------------------------------------------------
// Shard leases and generation statistics
// ---------------------------------------------------------------------

/// A shard worker's liveness record: claimed once at startup, renewed
/// (with a monotonically increasing `seq`) at every cell boundary.
///
/// The supervisor judges liveness by watching `seq` advance against its
/// *own* clock — `stamp_ms` is informational (it comes from the worker's
/// clock, which may be skewed in a different process) and never enters
/// the expiry decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseRecord {
    /// The lease generation the supervisor assigned this worker. A
    /// reassignment bumps the generation; journal writes from older
    /// generations are fenced off the merge.
    pub generation: u32,
    /// Random id of the worker process/thread holding the lease.
    pub worker: u64,
    /// Heartbeat sequence number; strictly increasing within a lease.
    pub seq: u64,
    /// Worker-local wall-clock stamp (ms since the Unix epoch) at the
    /// time of the heartbeat. Diagnostic only.
    pub stamp_ms: u64,
}

fn encode_lease(lease: &LeaseRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_u64(&mut out, u64::from(lease.generation));
    put_u64(&mut out, lease.worker);
    put_u64(&mut out, lease.seq);
    put_u64(&mut out, lease.stamp_ms);
    out
}

fn decode_lease(bytes: &[u8]) -> Option<LeaseRecord> {
    let mut r = Reader::new(bytes);
    let lease = LeaseRecord {
        generation: u32::try_from(r.u64()?).ok()?,
        worker: r.u64()?,
        seq: r.u64()?,
        stamp_ms: r.u64()?,
    };
    r.done().then_some(lease)
}

/// What a shard generation did, written by the worker when it finishes
/// its shard. Merges read these to report redundant-work ratios without
/// re-deriving them from cell timestamps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardGenStats {
    /// Cells this generation inherited (re-journalled) from prior
    /// generations of the same shard.
    pub restored: u64,
    /// Cells this generation evaluated fresh.
    pub evaluated: u64,
}

fn encode_gen_stats(stats: &ShardGenStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_u64(&mut out, stats.restored);
    put_u64(&mut out, stats.evaluated);
    out
}

fn decode_gen_stats(bytes: &[u8]) -> Option<ShardGenStats> {
    let mut r = Reader::new(bytes);
    let stats = ShardGenStats {
        restored: r.u64()?,
        evaluated: r.u64()?,
    };
    r.done().then_some(stats)
}

/// Outcome of [`EvalStore::advance_lease`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseAdvance {
    /// The key was absent; this worker now holds the lease.
    Claimed,
    /// The previous record belonged to the same `(generation, worker)`
    /// with an older `seq`; the heartbeat landed.
    Renewed,
    /// The stored lease belongs to a different generation or worker (or
    /// a newer heartbeat) — the caller has been superseded and must stop.
    Fenced,
    /// The store is degraded; liveness can no longer be recorded.
    Degraded,
}

/// Round-trips a [`Backend`] token so key encodings stay in sync with
/// the backend list (compile-time drift shows up as a test failure).
#[allow(dead_code)]
fn backend_roundtrip(backend: Backend) -> Option<Backend> {
    Backend::from_str(backend.token()).ok()
}

// ---------------------------------------------------------------------
// EvalStore
// ---------------------------------------------------------------------

/// The durable tier: a crash-safe [`Store`] with the typed codecs above.
///
/// All write failures degrade instead of crash: the store flips into a
/// degraded state, further writes become no-ops, and
/// [`EvalStore::degraded`] lets callers surface the condition once.
/// Reads keep working off whatever was recovered.
pub struct EvalStore {
    store: Mutex<Store>,
    recovery: RecoveryReport,
    degraded: AtomicBool,
    write_errors: AtomicU64,
    reads: AtomicU64,
    read_hits: AtomicU64,
    writes: AtomicU64,
    syncs: AtomicU64,
}

/// Cumulative counter snapshot of an [`EvalStore`] — cheap atomic loads,
/// no lock-the-world (the same contract as
/// [`EvalCacheStats`](crate::EvalCacheStats)). Served by the server's
/// `GET /v1/stats` and printed by `campaign_bench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStoreStats {
    /// Typed lookups issued against the store.
    pub reads: u64,
    /// Lookups that found a record.
    pub read_hits: u64,
    /// Typed records accepted for writing (attempted, not necessarily
    /// durable — see `write_errors`).
    pub writes: u64,
    /// Durability barriers ([`EvalStore::sync`]) that completed.
    pub syncs: u64,
    /// Writes or syncs that failed (the first one degrades the store).
    pub write_errors: u64,
    /// Whether the store is in degraded (read-only) mode.
    pub degraded: bool,
}

impl std::fmt::Debug for EvalStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalStore")
            .field("recovery", &self.recovery)
            .field("degraded", &self.degraded.load(Ordering::Relaxed))
            .finish()
    }
}

impl EvalStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Propagates IO failures opening the directory; damage *inside* the
    /// store never fails an open (see [`EvalStore::recovery`]).
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::from_store(Store::open(dir)?))
    }

    /// Opens over an injectable IO layer (the fault-injection seam).
    ///
    /// # Errors
    ///
    /// Propagates IO failures from the initial segment scan.
    pub fn open_with_io(io: Box<dyn StoreIo>) -> io::Result<Self> {
        Ok(Self::from_store(Store::open_with_io(io)?))
    }

    fn from_store(store: Store) -> Self {
        let recovery = *store.recovery();
        EvalStore {
            store: Mutex::new(store),
            recovery,
            degraded: AtomicBool::new(false),
            write_errors: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            read_hits: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
        }
    }

    /// What recovery found (and repaired) when this store opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Whether a write failure has put the store into degraded
    /// (read-only) mode.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Number of writes that failed (the first one degrades the store).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Cumulative counter snapshot (reads/writes/syncs/errors) — atomic
    /// loads only, safe to poll from a stats endpoint at any rate.
    pub fn stats(&self) -> EvalStoreStats {
        EvalStoreStats {
            reads: self.reads.load(Ordering::Relaxed),
            read_hits: self.read_hits.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            degraded: self.degraded(),
        }
    }

    fn put(&self, kind: u8, key: &[u8], value: &[u8]) {
        if self.degraded() {
            return;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        let result = {
            let mut store = self.store.lock().expect("store poisoned");
            store.put(kind, key, value)
        };
        if result.is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            self.degraded.store(true, Ordering::Relaxed);
        }
    }

    fn get(&self, kind: u8, key: &[u8]) -> Option<Vec<u8>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let store = self.store.lock().expect("store poisoned");
        let value = store.get(kind, key).map(<[u8]>::to_vec);
        if value.is_some() {
            self.read_hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Flushes and fsyncs — the durability barrier journal writers call
    /// at cell boundaries. Returns `false` (and degrades) on failure.
    pub fn sync(&self) -> bool {
        if self.degraded() {
            return false;
        }
        let result = {
            let mut store = self.store.lock().expect("store poisoned");
            store.sync()
        };
        if result.is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            self.degraded.store(true, Ordering::Relaxed);
        } else {
            self.syncs.fetch_add(1, Ordering::Relaxed);
        }
        result.is_ok()
    }

    pub(crate) fn get_verdict(&self, key: &ResponseKey) -> Option<EvalReport> {
        decode_report(&self.get(KIND_VERDICT, &encode_response_key(key))?)
    }

    pub(crate) fn put_verdict(&self, key: &ResponseKey, report: &EvalReport) {
        self.put(
            KIND_VERDICT,
            &encode_response_key(key),
            &encode_report(report),
        );
    }

    pub(crate) fn get_report(&self, key: &ReportKey) -> Option<EvalReport> {
        decode_report(&self.get(KIND_REPORT, &encode_report_key(key))?)
    }

    pub(crate) fn put_report(&self, key: &ReportKey, report: &EvalReport) {
        self.put(KIND_REPORT, &encode_report_key(key), &encode_report(report));
    }

    pub(crate) fn get_sim(&self, key: &SimKey) -> Option<FrequencyResponse> {
        decode_response(&self.get(KIND_SIM, &encode_sim_key(key))?)
    }

    pub(crate) fn put_sim(&self, key: &SimKey, response: &FrequencyResponse) {
        self.put(KIND_SIM, &encode_sim_key(key), &encode_response(response));
    }

    /// Journals one completed campaign cell under the campaign's
    /// fingerprint, then syncs — the crash-consistency barrier resumable
    /// campaigns rely on. Returns whether the entry is durable.
    pub fn record_cell(&self, fingerprint: u64, cell: u64, tally: &ProblemTally) -> bool {
        self.put(
            KIND_CELL,
            &encode_cell_key(fingerprint, cell),
            &encode_tally(tally),
        );
        self.sync()
    }

    /// Every durably journaled cell of the campaign with this
    /// fingerprint (unordered). Malformed entries are skipped.
    pub fn completed_cells(&self, fingerprint: u64) -> Vec<(u64, ProblemTally)> {
        let store = self.store.lock().expect("store poisoned");
        let mut cells = Vec::new();
        store.for_each(KIND_CELL, |key, value| {
            if let Some(entry) = decode_cell_entry(fingerprint, key, value) {
                cells.push(entry);
            }
        });
        cells
    }

    /// Claims or renews a shard lease with compare-and-swap semantics:
    /// the write only lands when the stored record is absent (claim) or
    /// belongs to the same `(generation, worker)` with an older `seq`
    /// (renew). Anything else is [`LeaseAdvance::Fenced`] — the caller
    /// has been superseded by a takeover and must stop journalling.
    ///
    /// A successful claim is fsynced (so a takeover decision survives a
    /// supervisor crash); renewals ride the cell-boundary syncs of
    /// [`EvalStore::record_cell`].
    pub fn advance_lease(&self, fingerprint: u64, shard: u32, lease: &LeaseRecord) -> LeaseAdvance {
        if self.degraded() {
            return LeaseAdvance::Degraded;
        }
        let key = encode_shard_key(fingerprint, shard);
        let value = encode_lease(lease);
        self.writes.fetch_add(1, Ordering::Relaxed);
        let result = {
            let mut store = self.store.lock().expect("store poisoned");
            match store.get(KIND_LEASE, &key).map(<[u8]>::to_vec) {
                None => store
                    .compare_and_put(KIND_LEASE, &key, None, &value)
                    .map(|landed| {
                        if landed {
                            LeaseAdvance::Claimed
                        } else {
                            LeaseAdvance::Fenced
                        }
                    }),
                Some(current) => {
                    // A corrupt previous record never fences: the lease
                    // protocol recomputes liveness, it never trusts
                    // damage.
                    let fenced = decode_lease(&current).is_some_and(|prev| {
                        prev.generation != lease.generation
                            || prev.worker != lease.worker
                            || prev.seq >= lease.seq
                    });
                    if fenced {
                        Ok(LeaseAdvance::Fenced)
                    } else {
                        store
                            .compare_and_put(KIND_LEASE, &key, Some(&current), &value)
                            .map(|landed| {
                                if landed {
                                    LeaseAdvance::Renewed
                                } else {
                                    LeaseAdvance::Fenced
                                }
                            })
                    }
                }
            }
        };
        match result {
            Ok(outcome) => {
                if outcome == LeaseAdvance::Claimed && !self.sync() {
                    return LeaseAdvance::Degraded;
                }
                outcome
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                self.degraded.store(true, Ordering::Relaxed);
                LeaseAdvance::Degraded
            }
        }
    }

    /// The last lease written for this shard, if any.
    pub fn read_lease(&self, fingerprint: u64, shard: u32) -> Option<LeaseRecord> {
        decode_lease(&self.get(KIND_LEASE, &encode_shard_key(fingerprint, shard))?)
    }

    /// Journals one cell *inherited* from a prior generation during a
    /// shard takeover: the cell record itself plus an inherit mark.
    /// Unsynced — callers sync once after the whole restore pass.
    pub fn record_inherited_cell(&self, fingerprint: u64, cell: u64, tally: &ProblemTally) {
        let key = encode_cell_key(fingerprint, cell);
        self.put(KIND_CELL, &key, &encode_tally(tally));
        self.put(KIND_INHERIT, &key, b"");
    }

    /// Journals a shard generation's completion statistics, then syncs.
    /// Returns whether the entry is durable.
    pub fn record_shard_stats(&self, fingerprint: u64, shard: u32, stats: &ShardGenStats) -> bool {
        self.put(
            KIND_STATS,
            &encode_shard_key(fingerprint, shard),
            &encode_gen_stats(stats),
        );
        self.sync()
    }

    /// Journals one completed campaign cell *without* syncing — the
    /// network coordinator applies a remote worker's batch record by
    /// record and issues one durability barrier per batch instead of
    /// one per cell.
    pub fn journal_cell(&self, fingerprint: u64, cell: u64, tally: &ProblemTally) {
        self.put(
            KIND_CELL,
            &encode_cell_key(fingerprint, cell),
            &encode_tally(tally),
        );
    }

    /// Marks a remote append batch (identified by its record `seq`) as
    /// applied. Written after the batch's records, unsynced — it rides
    /// the batch's own durability barrier.
    pub fn record_applied(&self, fingerprint: u64, seq: u64) {
        self.put(KIND_APPLIED, &encode_cell_key(fingerprint, seq), b"");
    }

    /// Every `(fingerprint, seq)` applied-marker pair in the journal —
    /// how a restarted coordinator rebuilds its exactly-once dedup set.
    pub fn applied_records(&self) -> Vec<(u64, u64)> {
        let store = self.store.lock().expect("store poisoned");
        let mut pairs = Vec::new();
        store.for_each(KIND_APPLIED, |key, _| {
            let mut r = Reader::new(key);
            if let (Some(fp), Some(seq)) = (r.u64(), r.u64()) {
                if r.done() {
                    pairs.push((fp, seq));
                }
            }
        });
        pairs
    }
}

/// A read-only, point-in-time view of a shard journal directory with the
/// same typed accessors as [`EvalStore`].
///
/// Built on [`picbench_store::Snapshot`], so loading one never creates
/// files or truncates torn tails — the supervisor polls live worker
/// journals through this without disturbing the single writer. A missing
/// directory loads as an empty snapshot.
pub struct EvalSnapshot {
    snap: Snapshot,
}

impl std::fmt::Debug for EvalSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSnapshot")
            .field("snapshot", &self.snap)
            .finish()
    }
}

impl EvalSnapshot {
    /// Loads a read-only view of the store directory as it is right now.
    ///
    /// # Errors
    ///
    /// Propagates IO failures reading existing segment files; a missing
    /// directory is an empty snapshot, not an error.
    pub fn load(dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(EvalSnapshot {
            snap: Snapshot::load(dir)?,
        })
    }

    /// What the scan classified (nothing was repaired).
    pub fn recovery(&self) -> &RecoveryReport {
        self.snap.recovery()
    }

    /// Every journaled cell of the campaign with this fingerprint that
    /// was visible at load time (unordered). Malformed entries are
    /// skipped.
    pub fn completed_cells(&self, fingerprint: u64) -> Vec<(u64, ProblemTally)> {
        let mut cells = Vec::new();
        self.snap.for_each(KIND_CELL, |key, value| {
            if let Some(entry) = decode_cell_entry(fingerprint, key, value) {
                cells.push(entry);
            }
        });
        cells
    }

    /// The last lease visible for this shard, if any.
    pub fn lease(&self, fingerprint: u64, shard: u32) -> Option<LeaseRecord> {
        decode_lease(
            self.snap
                .get(KIND_LEASE, &encode_shard_key(fingerprint, shard))?,
        )
    }

    /// The generation statistics for this shard, if the worker finished.
    pub fn shard_stats(&self, fingerprint: u64, shard: u32) -> Option<ShardGenStats> {
        decode_gen_stats(
            self.snap
                .get(KIND_STATS, &encode_shard_key(fingerprint, shard))?,
        )
    }

    /// Cell keys this generation marked as inherited from prior
    /// generations during its takeover restore pass. The merge unions
    /// these marks to separate a stale generation's pre-fence records
    /// (inherited by a successor) from its post-fence, quarantined ones.
    pub fn inherited_cells(&self, fingerprint: u64) -> Vec<u64> {
        let mut cells = Vec::new();
        self.snap.for_each(KIND_INHERIT, |key, _| {
            let mut r = Reader::new(key);
            if let (Some(fp), Some(cell)) = (r.u64(), r.u64()) {
                if fp == fingerprint && r.done() {
                    cells.push(cell);
                }
            }
        });
        cells
    }
}

/// Shared handle to an [`EvalStore`].
pub type SharedEvalStore = Arc<EvalStore>;

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_sim::{sweep, Circuit, ModelRegistry, WavelengthGrid};

    fn sample_response() -> FrequencyResponse {
        let problem = picbench_problems::find("mzi-ps").unwrap();
        let circuit = Circuit::elaborate(
            &problem.golden.canonicalize(),
            &ModelRegistry::with_builtins(),
            Some(&problem.spec),
        )
        .unwrap();
        sweep(&circuit, &WavelengthGrid::paper_fast(), Backend::default()).unwrap()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("picbench-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn report_roundtrips_bit_for_bit() {
        let reports = [
            EvalReport {
                syntax: Ok(()),
                functional: Some(true),
                comparison: Some(ResponseComparison {
                    ports_match: true,
                    grids_match: true,
                    max_power_diff: 1.25e-9,
                    rms_power_diff: 3.5e-10,
                }),
            },
            EvalReport {
                syntax: Ok(()),
                functional: Some(false),
                comparison: Some(ResponseComparison {
                    ports_match: false,
                    grids_match: true,
                    max_power_diff: f64::INFINITY,
                    rms_power_diff: f64::INFINITY,
                }),
            },
            EvalReport {
                syntax: Err(vec![
                    ValidationIssue::new(FailureType::WrongPort, "port I9 missing"),
                    ValidationIssue::new(FailureType::OtherSyntax, "no payload"),
                ]),
                functional: None,
                comparison: None,
            },
        ];
        for report in &reports {
            let decoded = decode_report(&encode_report(report)).unwrap();
            assert_eq!(format!("{report:?}"), format!("{decoded:?}"));
            assert_eq!(
                report.comparison.map(|c| c.max_power_diff.to_bits()),
                decoded.comparison.map(|c| c.max_power_diff.to_bits()),
            );
        }
    }

    #[test]
    fn truncated_or_corrupt_report_decodes_to_none() {
        let report = EvalReport {
            syntax: Err(vec![ValidationIssue::new(FailureType::WrongPort, "x")]),
            functional: None,
            comparison: None,
        };
        let bytes = encode_report(&report);
        for cut in 0..bytes.len() {
            assert!(decode_report(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut bad_tag = bytes.clone();
        bad_tag[0] = 7;
        assert!(decode_report(&bad_tag).is_none());
    }

    #[test]
    fn frequency_response_roundtrips_bit_for_bit() {
        let response = sample_response();
        let decoded = decode_response(&encode_response(&response)).unwrap();
        assert_eq!(response, decoded);
        // Bit-identical, not approximately equal.
        for (a, b) in response
            .wavelengths()
            .iter()
            .zip(decoded.wavelengths().iter())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for i in 0..response.wavelengths().len() {
            let (sa, sb) = (response.sample(i).unwrap(), decoded.sample(i).unwrap());
            for (za, zb) in sa.matrix().as_slice().iter().zip(sb.matrix().as_slice()) {
                assert_eq!(za.re.to_bits(), zb.re.to_bits());
                assert_eq!(za.im.to_bits(), zb.im.to_bits());
            }
        }
    }

    #[test]
    fn truncated_response_decodes_to_none() {
        let bytes = encode_response(&sample_response());
        for cut in [0, 4, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_response(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn backend_tokens_roundtrip() {
        for backend in Backend::ALL {
            assert_eq!(backend_roundtrip(backend), Some(backend));
        }
    }

    #[test]
    fn cell_journal_roundtrips_per_fingerprint() {
        let dir = temp_dir("cells");
        let store = EvalStore::open(&dir).unwrap();
        let tally = ProblemTally {
            n: 10,
            syntax_passes: 7,
            functional_passes: 4,
        };
        assert!(store.record_cell(111, 1, &tally));
        assert!(store.record_cell(111, 2, &tally));
        assert!(store.record_cell(222, 1, &tally));
        let mut cells = store.completed_cells(111);
        cells.sort_by_key(|(cell, _)| *cell);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0], (1, tally));
        assert_eq!(store.completed_cells(222).len(), 1);
        assert_eq!(store.completed_cells(333).len(), 0);
        drop(store);
        let store = EvalStore::open(&dir).unwrap();
        assert_eq!(
            store.completed_cells(111).len(),
            2,
            "journal survives reopen"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lease_advance_claims_renews_and_fences() {
        let dir = temp_dir("lease");
        let store = EvalStore::open(&dir).unwrap();
        let fp = 99;
        let gen1 = |worker, seq| LeaseRecord {
            generation: 1,
            worker,
            seq,
            stamp_ms: 1000 + seq,
        };
        // First claim wins, a rival claim on the same shard is fenced.
        assert_eq!(
            store.advance_lease(fp, 0, &gen1(7, 0)),
            LeaseAdvance::Claimed
        );
        assert_eq!(
            store.advance_lease(fp, 0, &gen1(8, 0)),
            LeaseAdvance::Fenced
        );
        // Heartbeats renew only with a strictly newer seq.
        assert_eq!(
            store.advance_lease(fp, 0, &gen1(7, 1)),
            LeaseAdvance::Renewed
        );
        assert_eq!(
            store.advance_lease(fp, 0, &gen1(7, 1)),
            LeaseAdvance::Fenced
        );
        // A different generation never renews in the same store.
        let gen2 = LeaseRecord {
            generation: 2,
            worker: 7,
            seq: 2,
            stamp_ms: 0,
        };
        assert_eq!(store.advance_lease(fp, 0, &gen2), LeaseAdvance::Fenced);
        // Other shards are independent keys.
        assert_eq!(
            store.advance_lease(fp, 1, &gen1(8, 0)),
            LeaseAdvance::Claimed
        );
        let lease = store.read_lease(fp, 0).unwrap();
        assert_eq!((lease.worker, lease.seq), (7, 1));
        drop(store);
        let store = EvalStore::open(&dir).unwrap();
        assert_eq!(store.read_lease(fp, 0).unwrap().seq, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_snapshot_reads_cells_leases_and_stats_live() {
        let dir = temp_dir("snapshot");
        let store = EvalStore::open(&dir).unwrap();
        let fp = 123;
        let tally = ProblemTally {
            n: 4,
            syntax_passes: 3,
            functional_passes: 2,
        };
        assert!(store.record_cell(fp, 5, &tally));
        assert_eq!(
            store.advance_lease(
                fp,
                2,
                &LeaseRecord {
                    generation: 3,
                    worker: 42,
                    seq: 0,
                    stamp_ms: 7,
                }
            ),
            LeaseAdvance::Claimed
        );
        let stats = ShardGenStats {
            restored: 1,
            evaluated: 3,
        };
        assert!(store.record_shard_stats(fp, 2, &stats));
        // The writer stays open: the snapshot reads alongside it.
        let snap = EvalSnapshot::load(&dir).unwrap();
        assert_eq!(snap.completed_cells(fp), vec![(5, tally)]);
        assert!(snap.completed_cells(456).is_empty());
        let lease = snap.lease(fp, 2).unwrap();
        assert_eq!((lease.generation, lease.worker), (3, 42));
        assert!(snap.lease(fp, 0).is_none());
        assert_eq!(snap.shard_stats(fp, 2), Some(stats));
        assert!(!snap.recovery().damaged());
        drop(store);
        // A snapshot of a directory that was never created is empty.
        let missing = temp_dir("snapshot-missing");
        let empty = EvalSnapshot::load(&missing).unwrap();
        assert!(empty.completed_cells(fp).is_empty());
        assert!(empty.lease(fp, 2).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_store_roundtrips_verdicts_and_sims_across_reopen() {
        let dir = temp_dir("tiers");
        let response = sample_response();
        let report = EvalReport {
            syntax: Ok(()),
            functional: Some(true),
            comparison: Some(ResponseComparison {
                ports_match: true,
                grids_match: true,
                max_power_diff: 0.0,
                rms_power_diff: 0.0,
            }),
        };
        let sim_key: SimKey = (42, (1, 2, 17), Backend::default(), (1, 1));
        let report_key: ReportKey = (sim_key, 7, 8);
        let response_key: ResponseKey = (9, (1, 2, 17), Backend::default(), 7, 8);
        {
            let store = EvalStore::open(&dir).unwrap();
            store.put_sim(&sim_key, &response);
            store.put_report(&report_key, &report);
            store.put_verdict(&response_key, &report);
            store.sync();
        }
        let store = EvalStore::open(&dir).unwrap();
        assert_eq!(store.get_sim(&sim_key).unwrap(), response);
        assert!(store.get_report(&report_key).unwrap().functional_pass());
        assert!(store.get_verdict(&response_key).unwrap().functional_pass());
        assert!(store
            .get_sim(&(43, (1, 2, 17), Backend::default(), (1, 1)))
            .is_none());
        assert!(!store.degraded());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
