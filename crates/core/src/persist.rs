//! Typed persistence over the crash-safe store: the disk tier under
//! [`EvalCache`](crate::EvalCache) and the campaign cell journal.
//!
//! `picbench-store` is a byte-level key/value log; this module owns the
//! typed encode/decode for the things PICBench persists:
//!
//! * **verdicts** ([`EvalReport`] keyed by response-text digest),
//! * **reports** ([`EvalReport`] keyed by canonical netlist digest),
//! * **sweep outcomes** ([`FrequencyResponse`] keyed by simulation key;
//!   only *successful* sweeps are persisted — failures are cheap to
//!   classify and recompute),
//! * **campaign cells** ([`ProblemTally`] keyed by campaign fingerprint
//!   and cell id — the journal resumable campaigns replay).
//!
//! Decoding is defensive end to end: any malformed value decodes to
//! `None` and the entry recomputes. Corruption costs time, never
//! correctness — the same contract the store's recovery scan makes at
//! the byte level.

use crate::evaluate::{EvalReport, ReportKey, ResponseKey, SimKey};
use crate::passk::ProblemTally;
use picbench_math::{CMatrix, Complex};
use picbench_netlist::{FailureType, ValidationIssue};
use picbench_sim::{Backend, FrequencyResponse, ResponseComparison};
use picbench_sparams::SMatrix;
use picbench_store::{RecoveryReport, Store, StoreIo};
use std::io;
use std::path::Path;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Record kind of a whole-verdict entry (level 0).
pub const KIND_VERDICT: u8 = 1;
/// Record kind of a finished-report entry (level 2).
pub const KIND_REPORT: u8 = 2;
/// Record kind of a memoized sweep outcome (level 1).
pub const KIND_SIM: u8 = 3;
/// Record kind of a campaign cell-completion journal entry.
pub const KIND_CELL: u8 = 4;

/// Sanity cap on decoded element counts; corrupt length fields beyond
/// this are rejected instead of allocated.
const MAX_DECODE_ELEMS: u64 = 1 << 20;

// ---------------------------------------------------------------------
// Byte-level encode/decode helpers
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes }
    }

    fn u8(&mut self) -> Option<u8> {
        let (&first, rest) = self.bytes.split_first()?;
        self.bytes = rest;
        Some(first)
    }

    fn u64(&mut self) -> Option<u64> {
        if self.bytes.len() < 8 {
            return None;
        }
        let (head, rest) = self.bytes.split_at(8);
        self.bytes = rest;
        Some(u64::from_le_bytes(head.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn count(&mut self) -> Option<usize> {
        let n = self.u64()?;
        (n <= MAX_DECODE_ELEMS).then_some(n as usize)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.count()?;
        if self.bytes.len() < len {
            return None;
        }
        let (head, rest) = self.bytes.split_at(len);
        self.bytes = rest;
        String::from_utf8(head.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.bytes.is_empty()
    }
}

// ---------------------------------------------------------------------
// Key encodings
// ---------------------------------------------------------------------

fn put_grid(out: &mut Vec<u8>, grid: &(u64, u64, usize)) {
    put_u64(out, grid.0);
    put_u64(out, grid.1);
    put_u64(out, grid.2 as u64);
}

pub(crate) fn encode_sim_key(key: &SimKey) -> Vec<u8> {
    let (hash, grid, backend, spec) = key;
    let mut out = Vec::with_capacity(64);
    put_u64(&mut out, *hash);
    put_grid(&mut out, grid);
    put_str(&mut out, backend.token());
    put_u64(&mut out, spec.0 as u64);
    put_u64(&mut out, spec.1 as u64);
    out
}

pub(crate) fn encode_report_key(key: &ReportKey) -> Vec<u8> {
    let (sim, problem, tolerance) = key;
    let mut out = encode_sim_key(sim);
    put_u64(&mut out, *problem);
    put_u64(&mut out, *tolerance);
    out
}

pub(crate) fn encode_response_key(key: &ResponseKey) -> Vec<u8> {
    let (text, grid, backend, problem, tolerance) = key;
    let mut out = Vec::with_capacity(64);
    put_u64(&mut out, *text);
    put_grid(&mut out, grid);
    put_str(&mut out, backend.token());
    put_u64(&mut out, *problem);
    put_u64(&mut out, *tolerance);
    out
}

fn encode_cell_key(fingerprint: u64, cell: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_u64(&mut out, fingerprint);
    put_u64(&mut out, cell);
    out
}

// ---------------------------------------------------------------------
// Value encodings
// ---------------------------------------------------------------------

fn encode_report(report: &EvalReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match &report.syntax {
        Ok(()) => out.push(1),
        Err(issues) => {
            out.push(0);
            put_u64(&mut out, issues.len() as u64);
            for issue in issues {
                let index = FailureType::ALL
                    .iter()
                    .position(|f| *f == issue.failure)
                    .expect("FailureType::ALL is exhaustive");
                out.push(index as u8);
                put_str(&mut out, &issue.message);
            }
        }
    }
    out.push(match report.functional {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
    match &report.comparison {
        None => out.push(0),
        Some(cmp) => {
            out.push(1);
            out.push(u8::from(cmp.ports_match));
            out.push(u8::from(cmp.grids_match));
            put_u64(&mut out, cmp.max_power_diff.to_bits());
            put_u64(&mut out, cmp.rms_power_diff.to_bits());
        }
    }
    out
}

fn decode_report(bytes: &[u8]) -> Option<EvalReport> {
    let mut r = Reader::new(bytes);
    let syntax = match r.u8()? {
        1 => Ok(()),
        0 => {
            let n = r.count()?;
            let mut issues = Vec::with_capacity(n);
            for _ in 0..n {
                let failure = *FailureType::ALL.get(r.u8()? as usize)?;
                issues.push(ValidationIssue::new(failure, r.str()?));
            }
            Err(issues)
        }
        _ => return None,
    };
    let functional = match r.u8()? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        _ => return None,
    };
    let comparison = match r.u8()? {
        0 => None,
        1 => Some(ResponseComparison {
            ports_match: r.u8()? == 1,
            grids_match: r.u8()? == 1,
            max_power_diff: r.f64()?,
            rms_power_diff: r.f64()?,
        }),
        _ => return None,
    };
    r.done().then_some(EvalReport {
        syntax,
        functional,
        comparison,
    })
}

fn encode_response(response: &FrequencyResponse) -> Vec<u8> {
    let ports = response.ports();
    let wavelengths = response.wavelengths();
    let dim = ports.len();
    let mut out = Vec::with_capacity(32 + wavelengths.len() * (8 + dim * dim * 16));
    put_u64(&mut out, wavelengths.len() as u64);
    for &wl in wavelengths {
        put_u64(&mut out, wl.to_bits());
    }
    put_u64(&mut out, ports.len() as u64);
    for port in ports {
        put_str(&mut out, port);
    }
    for i in 0..wavelengths.len() {
        let sample = response.sample(i).expect("one sample per wavelength");
        for z in sample.matrix().as_slice() {
            put_u64(&mut out, z.re.to_bits());
            put_u64(&mut out, z.im.to_bits());
        }
    }
    out
}

fn decode_response(bytes: &[u8]) -> Option<FrequencyResponse> {
    let mut r = Reader::new(bytes);
    let n_points = r.count()?;
    let mut wavelengths = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        wavelengths.push(r.f64()?);
    }
    let n_ports = r.count()?;
    let mut ports = Vec::with_capacity(n_ports);
    for _ in 0..n_ports {
        ports.push(r.str()?);
    }
    let mut samples = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        let mut m = CMatrix::zeros(n_ports, n_ports);
        for z in m.as_mut_slice() {
            *z = Complex {
                re: r.f64()?,
                im: r.f64()?,
            };
        }
        samples.push(SMatrix::from_matrix(ports.clone(), m));
    }
    if !r.done() {
        return None;
    }
    FrequencyResponse::from_parts(wavelengths, ports, samples)
}

fn encode_tally(tally: &ProblemTally) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    put_u64(&mut out, tally.n as u64);
    put_u64(&mut out, tally.syntax_passes as u64);
    put_u64(&mut out, tally.functional_passes as u64);
    out
}

fn decode_tally(bytes: &[u8]) -> Option<ProblemTally> {
    let mut r = Reader::new(bytes);
    let tally = ProblemTally {
        n: r.count()?,
        syntax_passes: r.count()?,
        functional_passes: r.count()?,
    };
    r.done().then_some(tally)
}

/// Round-trips a [`Backend`] token so key encodings stay in sync with
/// the backend list (compile-time drift shows up as a test failure).
#[allow(dead_code)]
fn backend_roundtrip(backend: Backend) -> Option<Backend> {
    Backend::from_str(backend.token()).ok()
}

// ---------------------------------------------------------------------
// EvalStore
// ---------------------------------------------------------------------

/// The durable tier: a crash-safe [`Store`] with the typed codecs above.
///
/// All write failures degrade instead of crash: the store flips into a
/// degraded state, further writes become no-ops, and
/// [`EvalStore::degraded`] lets callers surface the condition once.
/// Reads keep working off whatever was recovered.
pub struct EvalStore {
    store: Mutex<Store>,
    recovery: RecoveryReport,
    degraded: AtomicBool,
    write_errors: AtomicU64,
}

impl std::fmt::Debug for EvalStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalStore")
            .field("recovery", &self.recovery)
            .field("degraded", &self.degraded.load(Ordering::Relaxed))
            .finish()
    }
}

impl EvalStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Propagates IO failures opening the directory; damage *inside* the
    /// store never fails an open (see [`EvalStore::recovery`]).
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::from_store(Store::open(dir)?))
    }

    /// Opens over an injectable IO layer (the fault-injection seam).
    ///
    /// # Errors
    ///
    /// Propagates IO failures from the initial segment scan.
    pub fn open_with_io(io: Box<dyn StoreIo>) -> io::Result<Self> {
        Ok(Self::from_store(Store::open_with_io(io)?))
    }

    fn from_store(store: Store) -> Self {
        let recovery = *store.recovery();
        EvalStore {
            store: Mutex::new(store),
            recovery,
            degraded: AtomicBool::new(false),
            write_errors: AtomicU64::new(0),
        }
    }

    /// What recovery found (and repaired) when this store opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Whether a write failure has put the store into degraded
    /// (read-only) mode.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Number of writes that failed (the first one degrades the store).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    fn put(&self, kind: u8, key: &[u8], value: &[u8]) {
        if self.degraded() {
            return;
        }
        let result = {
            let mut store = self.store.lock().expect("store poisoned");
            store.put(kind, key, value)
        };
        if result.is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            self.degraded.store(true, Ordering::Relaxed);
        }
    }

    fn get(&self, kind: u8, key: &[u8]) -> Option<Vec<u8>> {
        let store = self.store.lock().expect("store poisoned");
        store.get(kind, key).map(<[u8]>::to_vec)
    }

    /// Flushes and fsyncs — the durability barrier journal writers call
    /// at cell boundaries. Returns `false` (and degrades) on failure.
    pub fn sync(&self) -> bool {
        if self.degraded() {
            return false;
        }
        let result = {
            let mut store = self.store.lock().expect("store poisoned");
            store.sync()
        };
        if result.is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            self.degraded.store(true, Ordering::Relaxed);
        }
        result.is_ok()
    }

    pub(crate) fn get_verdict(&self, key: &ResponseKey) -> Option<EvalReport> {
        decode_report(&self.get(KIND_VERDICT, &encode_response_key(key))?)
    }

    pub(crate) fn put_verdict(&self, key: &ResponseKey, report: &EvalReport) {
        self.put(
            KIND_VERDICT,
            &encode_response_key(key),
            &encode_report(report),
        );
    }

    pub(crate) fn get_report(&self, key: &ReportKey) -> Option<EvalReport> {
        decode_report(&self.get(KIND_REPORT, &encode_report_key(key))?)
    }

    pub(crate) fn put_report(&self, key: &ReportKey, report: &EvalReport) {
        self.put(KIND_REPORT, &encode_report_key(key), &encode_report(report));
    }

    pub(crate) fn get_sim(&self, key: &SimKey) -> Option<FrequencyResponse> {
        decode_response(&self.get(KIND_SIM, &encode_sim_key(key))?)
    }

    pub(crate) fn put_sim(&self, key: &SimKey, response: &FrequencyResponse) {
        self.put(KIND_SIM, &encode_sim_key(key), &encode_response(response));
    }

    /// Journals one completed campaign cell under the campaign's
    /// fingerprint, then syncs — the crash-consistency barrier resumable
    /// campaigns rely on. Returns whether the entry is durable.
    pub fn record_cell(&self, fingerprint: u64, cell: u64, tally: &ProblemTally) -> bool {
        self.put(
            KIND_CELL,
            &encode_cell_key(fingerprint, cell),
            &encode_tally(tally),
        );
        self.sync()
    }

    /// Every durably journaled cell of the campaign with this
    /// fingerprint (unordered). Malformed entries are skipped.
    pub fn completed_cells(&self, fingerprint: u64) -> Vec<(u64, ProblemTally)> {
        let store = self.store.lock().expect("store poisoned");
        let mut cells = Vec::new();
        store.for_each(KIND_CELL, |key, value| {
            let mut r = Reader::new(key);
            let (Some(fp), Some(cell)) = (r.u64(), r.u64()) else {
                return;
            };
            if fp != fingerprint || !r.done() {
                return;
            }
            if let Some(tally) = decode_tally(value) {
                cells.push((cell, tally));
            }
        });
        cells
    }
}

/// Shared handle to an [`EvalStore`].
pub type SharedEvalStore = Arc<EvalStore>;

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_sim::{sweep, Circuit, ModelRegistry, WavelengthGrid};

    fn sample_response() -> FrequencyResponse {
        let problem = picbench_problems::find("mzi-ps").unwrap();
        let circuit = Circuit::elaborate(
            &problem.golden.canonicalize(),
            &ModelRegistry::with_builtins(),
            Some(&problem.spec),
        )
        .unwrap();
        sweep(&circuit, &WavelengthGrid::paper_fast(), Backend::default()).unwrap()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("picbench-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn report_roundtrips_bit_for_bit() {
        let reports = [
            EvalReport {
                syntax: Ok(()),
                functional: Some(true),
                comparison: Some(ResponseComparison {
                    ports_match: true,
                    grids_match: true,
                    max_power_diff: 1.25e-9,
                    rms_power_diff: 3.5e-10,
                }),
            },
            EvalReport {
                syntax: Ok(()),
                functional: Some(false),
                comparison: Some(ResponseComparison {
                    ports_match: false,
                    grids_match: true,
                    max_power_diff: f64::INFINITY,
                    rms_power_diff: f64::INFINITY,
                }),
            },
            EvalReport {
                syntax: Err(vec![
                    ValidationIssue::new(FailureType::WrongPort, "port I9 missing"),
                    ValidationIssue::new(FailureType::OtherSyntax, "no payload"),
                ]),
                functional: None,
                comparison: None,
            },
        ];
        for report in &reports {
            let decoded = decode_report(&encode_report(report)).unwrap();
            assert_eq!(format!("{report:?}"), format!("{decoded:?}"));
            assert_eq!(
                report.comparison.map(|c| c.max_power_diff.to_bits()),
                decoded.comparison.map(|c| c.max_power_diff.to_bits()),
            );
        }
    }

    #[test]
    fn truncated_or_corrupt_report_decodes_to_none() {
        let report = EvalReport {
            syntax: Err(vec![ValidationIssue::new(FailureType::WrongPort, "x")]),
            functional: None,
            comparison: None,
        };
        let bytes = encode_report(&report);
        for cut in 0..bytes.len() {
            assert!(decode_report(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut bad_tag = bytes.clone();
        bad_tag[0] = 7;
        assert!(decode_report(&bad_tag).is_none());
    }

    #[test]
    fn frequency_response_roundtrips_bit_for_bit() {
        let response = sample_response();
        let decoded = decode_response(&encode_response(&response)).unwrap();
        assert_eq!(response, decoded);
        // Bit-identical, not approximately equal.
        for (a, b) in response
            .wavelengths()
            .iter()
            .zip(decoded.wavelengths().iter())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for i in 0..response.wavelengths().len() {
            let (sa, sb) = (response.sample(i).unwrap(), decoded.sample(i).unwrap());
            for (za, zb) in sa.matrix().as_slice().iter().zip(sb.matrix().as_slice()) {
                assert_eq!(za.re.to_bits(), zb.re.to_bits());
                assert_eq!(za.im.to_bits(), zb.im.to_bits());
            }
        }
    }

    #[test]
    fn truncated_response_decodes_to_none() {
        let bytes = encode_response(&sample_response());
        for cut in [0, 4, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_response(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn backend_tokens_roundtrip() {
        for backend in Backend::ALL {
            assert_eq!(backend_roundtrip(backend), Some(backend));
        }
    }

    #[test]
    fn cell_journal_roundtrips_per_fingerprint() {
        let dir = temp_dir("cells");
        let store = EvalStore::open(&dir).unwrap();
        let tally = ProblemTally {
            n: 10,
            syntax_passes: 7,
            functional_passes: 4,
        };
        assert!(store.record_cell(111, 1, &tally));
        assert!(store.record_cell(111, 2, &tally));
        assert!(store.record_cell(222, 1, &tally));
        let mut cells = store.completed_cells(111);
        cells.sort_by_key(|(cell, _)| *cell);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0], (1, tally));
        assert_eq!(store.completed_cells(222).len(), 1);
        assert_eq!(store.completed_cells(333).len(), 0);
        drop(store);
        let store = EvalStore::open(&dir).unwrap();
        assert_eq!(
            store.completed_cells(111).len(),
            2,
            "journal survives reopen"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_store_roundtrips_verdicts_and_sims_across_reopen() {
        let dir = temp_dir("tiers");
        let response = sample_response();
        let report = EvalReport {
            syntax: Ok(()),
            functional: Some(true),
            comparison: Some(ResponseComparison {
                ports_match: true,
                grids_match: true,
                max_power_diff: 0.0,
                rms_power_diff: 0.0,
            }),
        };
        let sim_key: SimKey = (42, (1, 2, 17), Backend::default(), (1, 1));
        let report_key: ReportKey = (sim_key, 7, 8);
        let response_key: ResponseKey = (9, (1, 2, 17), Backend::default(), 7, 8);
        {
            let store = EvalStore::open(&dir).unwrap();
            store.put_sim(&sim_key, &response);
            store.put_report(&report_key, &report);
            store.put_verdict(&response_key, &report);
            store.sync();
        }
        let store = EvalStore::open(&dir).unwrap();
        assert_eq!(store.get_sim(&sim_key).unwrap(), response);
        assert!(store.get_report(&report_key).unwrap().functional_pass());
        assert!(store.get_verdict(&response_key).unwrap().functional_pass());
        assert!(store
            .get_sim(&(43, (1, 2, 17), Backend::default(), (1, 1)))
            .is_none());
        assert!(!store.degraded());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
