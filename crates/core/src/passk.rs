//! The unbiased Pass@k estimator (Eq. 1 of the paper, after Chen et al.
//! 2021).
//!
//! For a problem with `n` samples of which `c` pass,
//! `pass@k = 1 − C(n−c, k)/C(n, k)`, computed in the numerically stable
//! product form and averaged over problems.

/// Unbiased single-problem Pass@k.
///
/// # Panics
///
/// Panics if `c > n` or `k == 0` or `k > n`.
///
/// # Examples
///
/// ```
/// use picbench_core::pass_at_k;
///
/// assert_eq!(pass_at_k(5, 0, 1), 0.0);
/// assert_eq!(pass_at_k(5, 5, 1), 1.0);
/// assert!((pass_at_k(5, 1, 1) - 0.2).abs() < 1e-12);
/// assert_eq!(pass_at_k(5, 1, 5), 1.0); // any pass ⇒ pass@n = 1
/// ```
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    assert!(c <= n, "cannot pass more samples than were drawn");
    assert!(k >= 1 && k <= n, "k must be within 1..=n");
    if c == 0 {
        return 0.0;
    }
    if n - c < k {
        return 1.0;
    }
    // 1 − Π_{i=n−c+1..=n} (1 − k/i)
    let mut fail_prob = 1.0f64;
    for i in (n - c + 1)..=n {
        fail_prob *= 1.0 - k as f64 / i as f64;
    }
    1.0 - fail_prob
}

/// Per-problem sample tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProblemTally {
    /// Samples drawn.
    pub n: usize,
    /// Samples whose final attempt had valid syntax.
    pub syntax_passes: usize,
    /// Samples whose final attempt was functionally correct.
    pub functional_passes: usize,
}

/// Mean Pass@k over problems, as percentages `(syntax, functional)`.
///
/// # Panics
///
/// Panics if `tallies` is empty or `k` is invalid for any tally.
pub fn aggregate_pass_at_k(tallies: &[ProblemTally], k: usize) -> (f64, f64) {
    assert!(!tallies.is_empty(), "need at least one problem");
    let mut syntax_sum = 0.0;
    let mut func_sum = 0.0;
    for t in tallies {
        syntax_sum += pass_at_k(t.n, t.syntax_passes, k);
        func_sum += pass_at_k(t.n, t.functional_passes, k);
    }
    let count = tallies.len() as f64;
    (100.0 * syntax_sum / count, 100.0 * func_sum / count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binomial(n: usize, k: usize) -> f64 {
        if k > n {
            return 0.0;
        }
        let mut acc = 1.0f64;
        for i in 0..k {
            acc *= (n - i) as f64 / (k - i) as f64;
        }
        acc
    }

    #[test]
    fn matches_binomial_definition() {
        for n in 1..=10 {
            for c in 0..=n {
                for k in 1..=n {
                    let direct = 1.0 - binomial(n - c, k) / binomial(n, k);
                    let stable = pass_at_k(n, c, k);
                    assert!(
                        (direct - stable).abs() < 1e-12,
                        "n={n} c={c} k={k}: {direct} vs {stable}"
                    );
                }
            }
        }
    }

    #[test]
    fn monotone_in_c() {
        for k in [1, 3, 5] {
            let mut prev = -1.0;
            for c in 0..=5 {
                let v = pass_at_k(5, c, k);
                assert!(v >= prev);
                prev = v;
            }
        }
    }

    #[test]
    fn monotone_in_k() {
        for c in 0..=5 {
            let mut prev = -1.0;
            for k in 1..=5 {
                let v = pass_at_k(5, c, k);
                assert!(v >= prev - 1e-12, "c={c} k={k}");
                prev = v;
            }
        }
    }

    #[test]
    fn pass_at_1_is_sample_mean() {
        for c in 0..=5 {
            assert!((pass_at_k(5, c, 1) - c as f64 / 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn aggregate_averages_over_problems() {
        let tallies = vec![
            ProblemTally {
                n: 5,
                syntax_passes: 5,
                functional_passes: 0,
            },
            ProblemTally {
                n: 5,
                syntax_passes: 0,
                functional_passes: 0,
            },
        ];
        let (syntax, func) = aggregate_pass_at_k(&tallies, 1);
        assert!((syntax - 50.0).abs() < 1e-9);
        assert!(func.abs() < 1e-9);
        let (syntax5, _) = aggregate_pass_at_k(&tallies, 5);
        assert!((syntax5 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneity_lowers_pass_at_5_below_iid_bound() {
        // All problems p=0.2 concentrated on one problem: pass@5 = 50%,
        // while an iid 20% sampler would give 1-(0.8)^5 = 67%.
        let concentrated = vec![
            ProblemTally {
                n: 5,
                syntax_passes: 5,
                functional_passes: 5,
            },
            ProblemTally {
                n: 5,
                syntax_passes: 0,
                functional_passes: 0,
            },
        ];
        let (syntax, _) = aggregate_pass_at_k(&concentrated, 5);
        assert!((syntax - 50.0).abs() < 1e-9);
        assert!(syntax < 67.0);
    }

    #[test]
    #[should_panic(expected = "k must be within")]
    fn zero_k_panics() {
        pass_at_k(5, 2, 0);
    }

    #[test]
    #[should_panic(expected = "cannot pass more samples")]
    fn c_above_n_panics() {
        pass_at_k(3, 4, 1);
    }
}
