//! Fault-tolerant sharded campaign execution: worker launch seam, the
//! shard worker body, and the supervisor loop.
//!
//! The supervisor never talks to its workers directly — all
//! coordination flows through the persistent store. Each worker claims
//! a [`LeaseRecord`] in its own `(shard, generation)` journal directory
//! and bumps the lease `seq` at every cell boundary; the supervisor
//! polls those journals read-only ([`EvalSnapshot`]) and records *its
//! own* clock whenever it observes a seq advance. A lease whose
//! observed advance is older than the configured TTL, or a worker whose
//! process exits with an incomplete journal, loses its shard: the
//! supervisor bumps the generation and launches a replacement, which
//! inherits the journalled cells of every prior generation and
//! evaluates only the remainder.
//!
//! The generation bump *is* the fence. A stalled worker that revives
//! after its shard was reassigned keeps appending to its own
//! generation's directory — single-writer per directory is preserved —
//! but the merge reads only each shard's final generation, so those
//! stale writes are quarantined, never merged. No signals, no shared
//! locks, no cross-process coordination beyond the filesystem.
//!
//! Workers are launched through the [`ShardLauncher`] seam:
//! [`InProcessLauncher`] (the default) runs workers as threads of this
//! process and is the fault-injection point for deterministic tests;
//! [`ProcessLauncher`] spawns real worker processes for chaos drills
//! and production fan-out.

use crate::campaign::{
    campaign_fingerprint, evaluate_cell, matrix_cell_keys, matrix_cells, wrap_retry_providers,
    Campaign, CampaignConfig, CampaignOutcome,
};
use crate::evaluate::{EvalCache, Evaluator};
use crate::events::{CampaignEvent, ShardLossReason};
use crate::journal::{LocalShardJournal, ShardJournal};
use crate::lease::{lease_expired, Clock, SystemClock};
use crate::persist::{EvalSnapshot, LeaseAdvance, LeaseRecord, ShardGenStats};
use crate::shard::{latest_generation, merge_shard_journals, shard_journal_dir, ShardPlan};
use picbench_problems::Problem;
use picbench_sim::{Backend, FrequencyResponse};
use picbench_store::xorshift64;
use picbench_synthllm::ModelProvider;
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Launch seam
// ---------------------------------------------------------------------

/// Everything a shard worker needs to reproduce the campaign's cells:
/// the same problems, providers and config the supervisor holds.
pub struct ShardWorkload {
    /// Problems of the campaign matrix, in input order.
    pub problems: Vec<Problem>,
    /// Model providers of the campaign matrix, in input order.
    pub providers: Vec<Arc<dyn ModelProvider>>,
    /// The campaign configuration (scheduling knobs included; the
    /// worker derives the same fingerprint the supervisor does).
    pub config: CampaignConfig,
}

/// A deliberate worker stall for chaos drills: after `after_cells`
/// journalled cells the worker holds for `hold_ms` without
/// heartbeating — long enough for its lease to expire — then resumes,
/// exercising the revived-worker fencing path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStall {
    /// Fresh cells to evaluate before stalling.
    pub after_cells: usize,
    /// How long to hold, in (real) milliseconds.
    pub hold_ms: u64,
}

/// One worker launch request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerRequest {
    /// Shard index in `0..shards`.
    pub shard: u32,
    /// Lease generation of this launch (0 first, bumped per takeover).
    pub generation: u32,
    /// Total shard count of the plan (workers re-derive the partition).
    pub shards: u32,
    /// Root directory of the per-shard journals.
    pub root: PathBuf,
    /// Chaos-drill stall to inject, if any.
    pub stall: Option<WorkerStall>,
}

/// What the supervisor can observe about a launched worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Still running (or unobservable — treated as running until the
    /// lease says otherwise).
    Running,
    /// The worker is gone.
    Exited {
        /// Whether it claims success. A clean exit with an incomplete
        /// journal is still a shard loss.
        clean: bool,
    },
}

/// A handle to one launched worker.
pub trait ShardWorkerHandle: Send {
    /// Non-blocking liveness check.
    fn poll(&mut self) -> WorkerState;
    /// Hard-kills the worker (SIGKILL for processes; a cooperative
    /// cell-boundary stop for in-process workers). Idempotent.
    fn kill(&mut self);
}

/// How shard workers come to life — the injectable process seam.
///
/// The supervisor is launcher-agnostic: it launches, polls and kills
/// through this trait and otherwise coordinates purely via the store.
pub trait ShardLauncher: Send + Sync {
    /// Launches one worker for `request`.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures; the supervisor treats a failed launch
    /// like a lost worker and retries under the next generation.
    fn launch(
        &self,
        workload: &Arc<ShardWorkload>,
        request: &WorkerRequest,
    ) -> io::Result<Box<dyn ShardWorkerHandle>>;
}

// ---------------------------------------------------------------------
// In-process launcher (tests, default)
// ---------------------------------------------------------------------

/// A deterministic worker fault injected by tests through
/// [`InProcessLauncher::inject`].
#[derive(Debug, Clone)]
pub enum WorkerFault {
    /// Die (unclean, mid-shard) after journalling this many fresh cells.
    DieAfterCells(usize),
    /// Stall after journalling this many fresh cells, holding — without
    /// heartbeats — until the release flag flips, then *resume*: the
    /// revived worker keeps journalling into its fenced generation,
    /// which is exactly the double-claim race the generation fence
    /// exists to neutralise.
    StallAfterCells {
        /// Fresh cells to evaluate before stalling.
        cells: usize,
        /// Flip to `true` to let the stalled worker resume.
        release: Arc<AtomicBool>,
    },
}

/// Launches shard workers as threads of the current process.
///
/// The default launcher, and the deterministic fault-injection point:
/// tests [`inject`](InProcessLauncher::inject) crashes and stalls keyed
/// by `(shard, generation)`, so exactly the intended launch misbehaves
/// and every reassigned generation runs clean.
#[derive(Default)]
pub struct InProcessLauncher {
    faults: Mutex<HashMap<(u32, u32), WorkerFault>>,
    next_worker: AtomicU64,
}

impl InProcessLauncher {
    /// A launcher with no faults injected.
    pub fn new() -> Self {
        InProcessLauncher::default()
    }

    /// Arms a fault for the worker of `(shard, generation)`.
    pub fn inject(&self, shard: u32, generation: u32, fault: WorkerFault) {
        self.faults
            .lock()
            .expect("faults poisoned")
            .insert((shard, generation), fault);
    }
}

struct InProcessHandle {
    kill: Arc<AtomicBool>,
    finished: Arc<AtomicBool>,
    clean: Arc<AtomicBool>,
}

impl ShardWorkerHandle for InProcessHandle {
    fn poll(&mut self) -> WorkerState {
        if self.finished.load(Ordering::Acquire) {
            WorkerState::Exited {
                clean: self.clean.load(Ordering::Acquire),
            }
        } else {
            WorkerState::Running
        }
    }

    fn kill(&mut self) {
        self.kill.store(true, Ordering::Release);
    }
}

impl ShardLauncher for InProcessLauncher {
    fn launch(
        &self,
        workload: &Arc<ShardWorkload>,
        request: &WorkerRequest,
    ) -> io::Result<Box<dyn ShardWorkerHandle>> {
        let fault = self
            .faults
            .lock()
            .expect("faults poisoned")
            .get(&(request.shard, request.generation))
            .cloned();
        let kill = Arc::new(AtomicBool::new(false));
        let finished = Arc::new(AtomicBool::new(false));
        let clean = Arc::new(AtomicBool::new(false));
        let handle = InProcessHandle {
            kill: Arc::clone(&kill),
            finished: Arc::clone(&finished),
            clean: Arc::clone(&clean),
        };
        let workload = Arc::clone(workload);
        let config = ShardWorkerConfig {
            shard: request.shard,
            generation: request.generation,
            shards: request.shards,
            root: request.root.clone(),
            worker_id: xorshift64(
                self.next_worker.fetch_add(1, Ordering::Relaxed) ^ 0x5bd1_e995_9d1b_54a5,
            ),
            stall: request.stall,
        };
        std::thread::spawn(move || {
            let hooks = WorkerHooks { kill, fault };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let journal =
                    LocalShardJournal::open(&config.root, config.shard, config.generation)?;
                shard_worker_body(&workload, &config, &journal, &hooks)
            }));
            if let Ok(Ok(report)) = outcome {
                clean.store(report.completed, Ordering::Release);
            }
            finished.store(true, Ordering::Release);
        });
        Ok(Box::new(handle))
    }
}

// ---------------------------------------------------------------------
// Process launcher (drills, production fan-out)
// ---------------------------------------------------------------------

/// Launches shard workers as real child processes.
///
/// The child is `program base_args… --worker-shard N --worker-generation
/// G --shards S --shard-root DIR` (plus `--stall-after-cells` /
/// `--stall-ms` when a chaos stall is armed); it is expected to call
/// [`run_shard_worker`] and exit non-zero on an incomplete shard.
/// `kill` delivers SIGKILL — the chaos drill's crash injection.
#[derive(Debug, Clone)]
pub struct ProcessLauncher {
    /// The worker executable (typically `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments carrying the campaign definition, prepended before the
    /// shard/generation arguments.
    pub base_args: Vec<String>,
}

struct ProcessHandle {
    child: Child,
}

impl ShardWorkerHandle for ProcessHandle {
    fn poll(&mut self) -> WorkerState {
        match self.child.try_wait() {
            Ok(Some(status)) => WorkerState::Exited {
                clean: status.success(),
            },
            Ok(None) => WorkerState::Running,
            Err(_) => WorkerState::Exited { clean: false },
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.try_wait();
    }
}

impl ShardLauncher for ProcessLauncher {
    fn launch(
        &self,
        _workload: &Arc<ShardWorkload>,
        request: &WorkerRequest,
    ) -> io::Result<Box<dyn ShardWorkerHandle>> {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.base_args)
            .arg("--worker-shard")
            .arg(request.shard.to_string())
            .arg("--worker-generation")
            .arg(request.generation.to_string())
            .arg("--shards")
            .arg(request.shards.to_string())
            .arg("--shard-root")
            .arg(&request.root)
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        if let Some(stall) = request.stall {
            cmd.arg("--stall-after-cells")
                .arg(stall.after_cells.to_string())
                .arg("--stall-ms")
                .arg(stall.hold_ms.to_string());
        }
        let child = cmd.spawn()?;
        Ok(Box::new(ProcessHandle { child }))
    }
}

// ---------------------------------------------------------------------
// Chaos plans
// ---------------------------------------------------------------------

/// Kill one generation-0 worker once its journal shows enough cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosKill {
    /// Shard whose first worker dies.
    pub shard: u32,
    /// Journalled cells to wait for before the kill (0 = as soon as the
    /// supervisor first polls the shard).
    pub after_cells: usize,
}

/// Fault-injection schedule for chaos drills: the supervisor delivers
/// kills itself (SIGKILL through the worker handle) once a victim's
/// journal shows the configured progress, and stalls are handed to
/// generation-0 workers at launch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Workers to kill.
    pub kills: Vec<ChaosKill>,
    /// Workers to stall ([`WorkerStall`] is keyed by shard here).
    pub stalls: Vec<(u32, WorkerStall)>,
}

impl ChaosPlan {
    /// A deterministic plan: `kills` distinct shards die and `stalls`
    /// further distinct shards stall for `stall_ms`, victims and kill
    /// points drawn from `seed` via xorshift64. The same seed always
    /// builds the same schedule.
    pub fn seeded(seed: u64, shards: u32, kills: usize, stalls: usize, stall_ms: u64) -> ChaosPlan {
        let shards = shards.max(1);
        // Injective map to a nonzero state (xorshift fixes 0 forever).
        let mut rng = (seed << 1) | 1;
        let mut draw = move |bound: u64| {
            rng = xorshift64(rng);
            rng % bound.max(1)
        };
        let mut victims: Vec<u32> = Vec::new();
        let wanted = (kills + stalls).min(shards as usize);
        while victims.len() < wanted {
            let shard = draw(u64::from(shards)) as u32;
            if !victims.contains(&shard) {
                victims.push(shard);
            }
        }
        let mut plan = ChaosPlan::default();
        for (i, &shard) in victims.iter().enumerate() {
            let after_cells = draw(4) as usize;
            if i < kills.min(victims.len()) {
                plan.kills.push(ChaosKill { shard, after_cells });
            } else {
                plan.stalls.push((
                    shard,
                    WorkerStall {
                        after_cells,
                        hold_ms: stall_ms,
                    },
                ));
            }
        }
        plan
    }
}

// ---------------------------------------------------------------------
// The worker body
// ---------------------------------------------------------------------

/// Identity and placement of one shard worker run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardWorkerConfig {
    /// Shard index in `0..shards`.
    pub shard: u32,
    /// Lease generation this worker was launched under.
    pub generation: u32,
    /// Total shard count of the plan.
    pub shards: u32,
    /// Root directory of the per-shard journals.
    pub root: PathBuf,
    /// Lease identity of this worker (any unique-ish value; process id
    /// for process workers).
    pub worker_id: u64,
    /// Chaos-drill stall: hold (without heartbeats) for `hold_ms` after
    /// `after_cells` fresh cells, then resume.
    pub stall: Option<WorkerStall>,
}

/// What one worker run accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardWorkerReport {
    /// Cells inherited (re-journalled) from prior generations.
    pub restored: usize,
    /// Cells evaluated fresh this run.
    pub evaluated: usize,
    /// Whether the shard's journal now covers its whole range. `false`
    /// means the worker was fenced, killed or died mid-shard — the exit
    /// is unclean and the supervisor will reassign.
    pub completed: bool,
}

/// Test-only misbehaviour switches threaded through the in-process
/// launcher; real worker processes run with none.
struct WorkerHooks {
    kill: Arc<AtomicBool>,
    fault: Option<WorkerFault>,
}

impl WorkerHooks {
    fn none() -> Self {
        WorkerHooks {
            kill: Arc::new(AtomicBool::new(false)),
            fault: None,
        }
    }
}

/// Runs one shard worker to completion in the calling thread: claim the
/// generation's lease, inherit journalled cells from prior generations,
/// evaluate the remainder (heartbeating at every cell boundary), and
/// journal the generation's statistics.
///
/// This is the body worker *processes* call after parsing the
/// `--worker-shard` arguments a [`ProcessLauncher`] passes; in-process
/// workers run the same body on a thread. Exit non-zero when the
/// returned report's `completed` is false.
///
/// # Errors
///
/// Propagates journal-store open failures. Store *write* failures do
/// not error: the store degrades, the lease stops advancing, and the
/// supervisor reassigns the shard — degraded workers are indistinguishable
/// from stalled ones by design.
pub fn run_shard_worker(
    workload: &ShardWorkload,
    config: &ShardWorkerConfig,
) -> io::Result<ShardWorkerReport> {
    let journal = LocalShardJournal::open(&config.root, config.shard, config.generation)?;
    shard_worker_body(workload, config, &journal, &WorkerHooks::none())
}

/// Runs one shard worker over an explicit [`ShardJournal`] — the entry
/// point for remote workers, whose journal is a coordinator client
/// rather than a locally opened store. Identical body to
/// [`run_shard_worker`]; only where the records land differs.
///
/// # Errors
///
/// Propagates failures reading prior generations through the journal
/// seam. Journal *write* failures do not error: the journal degrades,
/// the lease stops advancing, and the supervisor reassigns the shard.
pub fn run_shard_worker_with(
    workload: &ShardWorkload,
    config: &ShardWorkerConfig,
    journal: &dyn ShardJournal,
) -> io::Result<ShardWorkerReport> {
    shard_worker_body(workload, config, journal, &WorkerHooks::none())
}

fn shard_worker_body(
    workload: &ShardWorkload,
    config: &ShardWorkerConfig,
    journal: &dyn ShardJournal,
    hooks: &WorkerHooks,
) -> io::Result<ShardWorkerReport> {
    let clock = SystemClock;
    let cfg = &workload.config;
    let provider_names: Vec<String> = workload
        .providers
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let cells = matrix_cells(
        workload.problems.len(),
        workload.providers.len(),
        cfg.feedback_iters.len(),
    );
    let cell_keys = matrix_cell_keys(&workload.problems, &provider_names, cfg, &cells);
    let fingerprint = campaign_fingerprint(&workload.problems, &provider_names, cfg);
    let plan = ShardPlan::partition(cells.len(), config.shards);
    let mut report = ShardWorkerReport {
        restored: 0,
        evaluated: 0,
        completed: false,
    };
    if config.shard >= plan.shards() {
        // More shards requested than cells exist: this worker has no
        // range. Vacuously complete.
        report.completed = true;
        return Ok(report);
    }
    let range = plan.cells(config.shard);

    let mut lease = LeaseRecord {
        generation: config.generation,
        worker: config.worker_id,
        seq: 0,
        stamp_ms: clock.now_ms(),
    };
    match journal.advance_lease(fingerprint, config.shard, &lease) {
        LeaseAdvance::Claimed | LeaseAdvance::Renewed => {}
        LeaseAdvance::Fenced | LeaseAdvance::Degraded => return Ok(report),
    }
    let mut heartbeat = |journal: &dyn ShardJournal| {
        lease.seq += 1;
        lease.stamp_ms = clock.now_ms();
        matches!(
            journal.advance_lease(fingerprint, config.shard, &lease),
            LeaseAdvance::Claimed | LeaseAdvance::Renewed
        )
    };

    // Inherit everything prior generations of this shard journalled:
    // re-journal it here (inherit-marked) so this generation's journal
    // is self-contained and the merge never reads fenced directories
    // for tallies.
    let mut have: HashSet<u64> = HashSet::new();
    for generation in 0..config.generation {
        for (key, tally) in journal.prior_generation_cells(fingerprint, generation)? {
            if have.insert(key) {
                journal.record_inherited_cell(fingerprint, key, &tally);
            }
        }
    }
    report.restored = range
        .clone()
        .filter(|&index| have.contains(&cell_keys[index]))
        .count();
    journal.sync();
    if !heartbeat(journal) {
        return Ok(report);
    }

    let pending: Vec<usize> = range
        .clone()
        .filter(|&index| !have.contains(&cell_keys[index]))
        .collect();

    // Mirror the engine's evaluator setup exactly: shared goldens primed
    // up front, the same sweep-thread and constant-fold policy, an
    // in-memory cache when configured (no disk tier — worker journals
    // hold cells and leases only, keeping supervisor polls cheap).
    let cache = cfg.cache.then(|| Arc::new(EvalCache::new()));
    let goldens: Arc<HashMap<String, Arc<FrequencyResponse>>> = {
        let mut evaluator = Evaluator::new(cfg.grid, Backend::default());
        if let Some(cache) = &cache {
            evaluator = evaluator.with_cache(Arc::clone(cache));
        }
        let mut table = HashMap::new();
        let my_problems: HashSet<usize> =
            pending.iter().map(|&index| cells[index].problem).collect();
        for (index, problem) in workload.problems.iter().enumerate() {
            if my_problems.contains(&index) {
                table.insert(problem.id.clone(), evaluator.prime_golden(problem));
            }
        }
        Arc::new(table)
    };
    if !heartbeat(journal) {
        return Ok(report);
    }

    let providers = wrap_retry_providers(&workload.providers, cfg, None);
    let sweep_threads = if cfg.legacy_sweeps { 0 } else { 1 };
    let mut evaluator = Evaluator::new(cfg.grid, Backend::default())
        .with_shared_goldens(goldens)
        .with_sweep_threads(sweep_threads)
        .with_constant_fold(!cfg.legacy_sweeps);
    if let Some(cache) = &cache {
        evaluator = evaluator.with_cache(Arc::clone(cache));
    }

    let mut stalled = false;
    for index in pending {
        if hooks.kill.load(Ordering::Acquire) {
            return Ok(report);
        }
        match &hooks.fault {
            Some(WorkerFault::DieAfterCells(cells)) if report.evaluated >= *cells => {
                return Ok(report);
            }
            Some(WorkerFault::StallAfterCells { cells, release })
                if report.evaluated >= *cells && !stalled =>
            {
                stalled = true;
                // Hold without heartbeats until released (or killed) —
                // real milliseconds, deliberately outside any injected
                // clock, so a TestClock-driven supervisor stays in
                // control of virtual time.
                while !release.load(Ordering::Acquire) && !hooks.kill.load(Ordering::Acquire) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                if hooks.kill.load(Ordering::Acquire) {
                    return Ok(report);
                }
            }
            _ => {}
        }
        if let Some(stall) = config.stall {
            if report.evaluated == stall.after_cells && !stalled {
                stalled = true;
                clock.sleep_ms(stall.hold_ms);
            }
        }
        let cell = cells[index];
        let tally = evaluate_cell(
            &providers[cell.profile],
            &workload.problems[cell.problem],
            cfg.feedback_iters[cell.ef_idx],
            cfg,
            &mut evaluator,
        );
        journal.record_cell(fingerprint, cell_keys[index], &tally);
        report.evaluated += 1;
        if !heartbeat(journal) {
            return Ok(report);
        }
    }
    journal.record_shard_stats(
        fingerprint,
        config.shard,
        &ShardGenStats {
            restored: report.restored as u64,
            evaluated: report.evaluated as u64,
        },
    );
    report.completed = !journal.degraded();
    Ok(report)
}

// ---------------------------------------------------------------------
// The supervisor
// ---------------------------------------------------------------------

struct ShardState {
    generation: u32,
    handle: Option<Box<dyn ShardWorkerHandle>>,
    /// Supervisor-clock time of the launch or last observed seq advance.
    last_seen_ms: u64,
    last_seq: Option<u64>,
    cells_done: usize,
    expected: usize,
    done: bool,
}

/// Runs a `shards > 1` campaign: plan, launch, supervise, merge.
pub(crate) fn run_sharded(campaign: &Campaign) -> CampaignOutcome {
    let config = &campaign.config;
    let emit = |event: CampaignEvent| {
        if let Some(observer) = &campaign.observer {
            observer.on_event(&event);
        }
    };
    let provider_names: Vec<String> = campaign
        .providers
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let cells = matrix_cells(
        campaign.problems.len(),
        campaign.providers.len(),
        config.feedback_iters.len(),
    );
    let cell_keys = matrix_cell_keys(&campaign.problems, &provider_names, config, &cells);
    let fingerprint = campaign_fingerprint(&campaign.problems, &provider_names, config);
    let plan = ShardPlan::partition(cells.len(), campaign.shards);
    let root = campaign
        .shard_dir
        .clone()
        .expect("builder validated shard_dir");
    let launcher = campaign
        .launcher
        .as_ref()
        .expect("builder installed a launcher");
    let clock = &campaign.clock;
    let lease_cfg = campaign.lease;
    let chaos = campaign.chaos.clone().unwrap_or_default();
    let mut kills = chaos.kills;
    let workload = Arc::new(ShardWorkload {
        problems: campaign.problems.clone(),
        providers: campaign.providers.clone(),
        config: config.clone(),
    });

    emit(CampaignEvent::CampaignStarted {
        problems: campaign.problems.len(),
        providers: campaign.providers.len(),
        cells: cells.len(),
    });

    let launch = |shard: u32, generation: u32| -> Option<Box<dyn ShardWorkerHandle>> {
        let stall = (generation == 0)
            .then(|| {
                chaos
                    .stalls
                    .iter()
                    .find(|(s, _)| *s == shard)
                    .map(|(_, stall)| *stall)
            })
            .flatten();
        let request = WorkerRequest {
            shard,
            generation,
            shards: plan.shards(),
            root: root.clone(),
            stall,
        };
        emit(CampaignEvent::ShardStarted {
            shard,
            generation,
            cells: plan.cells(shard).len(),
        });
        launcher.launch(&workload, &request).ok()
    };

    // A restarted supervisor resumes over whatever generations a
    // predecessor left behind: the next generation fences any worker
    // the predecessor may have left running.
    let mut states: Vec<ShardState> = Vec::with_capacity(plan.shards() as usize);
    let mut orphans: Vec<Box<dyn ShardWorkerHandle>> = Vec::new();
    for shard in 0..plan.shards() {
        let generation = match latest_generation(&root, shard) {
            Ok(Some(last)) => last + 1,
            _ => 0,
        };
        let handle = launch(shard, generation);
        states.push(ShardState {
            generation,
            handle,
            last_seen_ms: clock.now_ms(),
            last_seq: None,
            cells_done: 0,
            expected: plan.cells(shard).len(),
            done: false,
        });
    }

    let mut takeovers = 0u32;
    let mut gave_up = false;
    loop {
        let cancelled = campaign
            .cancel
            .as_ref()
            .is_some_and(crate::events::CancelToken::is_cancelled);
        if cancelled || gave_up {
            for state in &mut states {
                if let Some(handle) = &mut state.handle {
                    handle.kill();
                }
            }
            for orphan in &mut orphans {
                orphan.kill();
            }
            let cells_completed = states.iter().map(|s| s.cells_done.min(s.expected)).sum();
            emit(CampaignEvent::CampaignFinished {
                cells_completed,
                cells_total: cells.len(),
                cancelled: true,
            });
            return CampaignOutcome {
                report: None,
                cancelled: true,
                cells_completed,
                cells_total: cells.len(),
                cells_restored: 0,
            };
        }

        let mut all_done = true;
        for shard in 0..plan.shards() {
            let state = &mut states[shard as usize];
            if state.done {
                continue;
            }
            all_done = false;

            // Observe the worker's journal read-only; a poll that fails
            // (directory racing into existence) just retries next tick.
            let dir = shard_journal_dir(&root, shard, state.generation);
            let shard_range: HashSet<u64> =
                plan.cells(shard).map(|index| cell_keys[index]).collect();
            if let Ok(snap) = EvalSnapshot::load(&dir) {
                state.cells_done = snap
                    .completed_cells(fingerprint)
                    .iter()
                    .filter(|(key, _)| shard_range.contains(key))
                    .count();
                if let Some(lease) = snap.lease(fingerprint, shard) {
                    if lease.generation == state.generation
                        && state.last_seq.is_none_or(|seen| lease.seq > seen)
                    {
                        state.last_seq = Some(lease.seq);
                        state.last_seen_ms = clock.now_ms();
                        emit(CampaignEvent::ShardHeartbeat {
                            shard,
                            generation: state.generation,
                            seq: lease.seq,
                            cells_done: state.cells_done,
                        });
                    }
                }
            }

            // Chaos kills target generation 0 only — the drill's crash,
            // delivered once the victim journalled enough cells.
            if state.generation == 0 {
                if let Some(pos) = kills
                    .iter()
                    .position(|k| k.shard == shard && state.cells_done >= k.after_cells)
                {
                    kills.remove(pos);
                    if let Some(handle) = &mut state.handle {
                        handle.kill();
                    }
                }
            }

            if state.cells_done >= state.expected {
                state.done = true;
                continue;
            }

            let loss = match state.handle.as_mut().map(|h| h.poll()) {
                Some(WorkerState::Exited { clean }) => {
                    Some(ShardLossReason::WorkerExited { clean })
                }
                _ if lease_expired(clock.now_ms(), state.last_seen_ms, lease_cfg.ttl_ms) => {
                    // Expired ≠ killed: the worker may be stalled, not
                    // dead, and a revived worker must stay harmless.
                    // Fencing — not force — keeps it out of the merge.
                    Some(ShardLossReason::LeaseExpired)
                }
                _ => None,
            };
            if let Some(reason) = loss {
                emit(CampaignEvent::ShardLost {
                    shard,
                    generation: state.generation,
                    reason,
                    cells_done: state.cells_done,
                });
                takeovers += 1;
                if takeovers > lease_cfg.max_takeovers {
                    gave_up = true;
                    continue;
                }
                let next = state.generation + 1;
                emit(CampaignEvent::ShardReassigned {
                    shard,
                    from_generation: state.generation,
                    to_generation: next,
                });
                if let Some(old) = state.handle.take() {
                    orphans.push(old);
                }
                state.generation = next;
                state.handle = launch(shard, next);
                state.last_seq = None;
                state.last_seen_ms = clock.now_ms();
            }
        }
        if all_done {
            break;
        }
        clock.sleep_ms(lease_cfg.poll_ms);
    }

    // Give completed workers a bounded grace period to exit (they only
    // have their stats record left to write), then reap what remains.
    let deadline = clock.now_ms().saturating_add(lease_cfg.ttl_ms);
    for state in &mut states {
        if let Some(handle) = &mut state.handle {
            while handle.poll() == WorkerState::Running && clock.now_ms() < deadline {
                clock.sleep_ms(lease_cfg.poll_ms);
            }
            if handle.poll() == WorkerState::Running {
                handle.kill();
            }
        }
    }
    for orphan in &mut orphans {
        if orphan.poll() == WorkerState::Running {
            orphan.kill();
        }
    }

    let merged = merge_shard_journals(
        &campaign.problems,
        &provider_names,
        config,
        fingerprint,
        &cell_keys,
        &root,
    )
    .expect("supervisor verified journal coverage before merging");
    for info in &merged.shards {
        emit(CampaignEvent::ShardMerged {
            shard: info.shard,
            generation: info.generation,
            cells: info.cells,
            quarantined: info.quarantined,
        });
    }
    emit(CampaignEvent::CampaignFinished {
        cells_completed: cells.len(),
        cells_total: cells.len(),
        cancelled: false,
    });
    CampaignOutcome {
        report: Some(merged.report),
        cancelled: false,
        cells_completed: cells.len(),
        cells_total: cells.len(),
        cells_restored: merged.restored as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_chaos_plans_are_deterministic_and_disjoint() {
        let a = ChaosPlan::seeded(42, 4, 2, 1, 500);
        let b = ChaosPlan::seeded(42, 4, 2, 1, 500);
        assert_eq!(a, b);
        assert_eq!(a.kills.len(), 2);
        assert_eq!(a.stalls.len(), 1);
        let mut victims: Vec<u32> = a.kills.iter().map(|k| k.shard).collect();
        victims.extend(a.stalls.iter().map(|(s, _)| *s));
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 3, "victims must be distinct shards");
        assert!(victims.iter().all(|&s| s < 4));
        assert_ne!(a, ChaosPlan::seeded(43, 4, 2, 1, 500));
    }

    #[test]
    fn seeded_chaos_clamps_to_available_shards() {
        let plan = ChaosPlan::seeded(7, 2, 3, 3, 100);
        assert_eq!(plan.kills.len() + plan.stalls.len(), 2);
    }

    #[test]
    fn in_process_handle_reports_exit() {
        let finished = Arc::new(AtomicBool::new(false));
        let mut handle = InProcessHandle {
            kill: Arc::new(AtomicBool::new(false)),
            finished: Arc::clone(&finished),
            clean: Arc::new(AtomicBool::new(true)),
        };
        assert_eq!(handle.poll(), WorkerState::Running);
        finished.store(true, Ordering::Release);
        assert_eq!(handle.poll(), WorkerState::Exited { clean: true });
        handle.kill();
        assert!(handle.kill.load(Ordering::Acquire));
    }
}
