//! Rendering campaign results in the layout of Tables III and IV.

use crate::campaign::CampaignReport;
use std::fmt::Write as _;

/// Renders a campaign in the paper's table layout: one row per model,
/// column groups Pass@k × feedback setting × {Syntax, Func.}.
///
/// `title` becomes the caption line. Feedback settings and k values are
/// discovered from the report's cells.
pub fn render_table(report: &CampaignReport, title: &str) -> String {
    let mut models: Vec<String> = Vec::new();
    let mut ks: Vec<usize> = Vec::new();
    let mut efs: Vec<usize> = Vec::new();
    for cell in &report.cells {
        if !models.contains(&cell.model) {
            models.push(cell.model.clone());
        }
        if !ks.contains(&cell.k) {
            ks.push(cell.k);
        }
        if !efs.contains(&cell.feedback_iters) {
            efs.push(cell.feedback_iters);
        }
    }
    ks.sort_unstable();
    efs.sort_unstable();

    let model_width = models
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(8)
        .max("LLM".len())
        + 2;

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "(n = {} samples/problem, EF = error feedback iterations{})",
        report.samples_per_problem,
        if report.restrictions {
            ", Table II restrictions ON"
        } else {
            ", restrictions OFF"
        }
    );

    // Header rows.
    let group_width = 2 * 8 + 1; // Syntax + Func columns
    let _ = write!(out, "{:<model_width$}", "LLM");
    for &k in &ks {
        for &ef in &efs {
            let label = match ef {
                0 => format!("P@{k} noEF"),
                1 => format!("P@{k} 1EF"),
                e => format!("P@{k} {e}EF"),
            };
            let _ = write!(out, "|{label:^group_width$}");
        }
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<model_width$}", "");
    for _ in 0..ks.len() * efs.len() {
        let _ = write!(out, "|{:^8}{:^9}", "Syntax", "Func.");
    }
    let _ = writeln!(out);
    let total_width = model_width + ks.len() * efs.len() * (group_width + 1);
    let _ = writeln!(out, "{}", "-".repeat(total_width));

    for model in &models {
        let _ = write!(out, "{model:<model_width$}");
        for &k in &ks {
            for &ef in &efs {
                match report.cell(model, ef, k) {
                    Some(cell) => {
                        let _ = write!(out, "|{:>7.2} {:>7.2} ", cell.syntax, cell.functional);
                    }
                    None => {
                        let _ = write!(out, "|{:>7} {:>7} ", "-", "-");
                    }
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the campaign as CSV (`model,k,feedback_iters,syntax,functional`).
pub fn render_csv(report: &CampaignReport) -> String {
    let mut out = String::from("model,k,feedback_iters,restrictions,syntax,functional\n");
    for cell in &report.cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.2},{:.2}",
            cell.model,
            cell.k,
            cell.feedback_iters,
            report.restrictions,
            cell.syntax,
            cell.functional
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignReport, CellScore};

    fn fake_report() -> CampaignReport {
        CampaignReport {
            restrictions: false,
            samples_per_problem: 5,
            cells: vec![
                CellScore {
                    model: "GPT-4".into(),
                    feedback_iters: 0,
                    k: 1,
                    syntax: 16.67,
                    functional: 6.67,
                },
                CellScore {
                    model: "GPT-4".into(),
                    feedback_iters: 1,
                    k: 1,
                    syntax: 34.17,
                    functional: 6.67,
                },
            ],
            conditions: Vec::new(),
            cache_stats: None,
        }
    }

    #[test]
    fn table_contains_models_and_scores() {
        let text = render_table(&fake_report(), "TABLE III");
        assert!(text.contains("TABLE III"));
        assert!(text.contains("GPT-4"));
        assert!(text.contains("16.67"));
        assert!(text.contains("34.17"));
        assert!(text.contains("Syntax"));
        assert!(text.contains("Func."));
    }

    #[test]
    fn csv_has_one_line_per_cell() {
        let csv = render_csv(&fake_report());
        assert_eq!(csv.lines().count(), 3); // header + 2 cells
        assert!(csv.starts_with("model,"));
        assert!(csv.contains("GPT-4,1,0,false,16.67,6.67"));
    }
}
