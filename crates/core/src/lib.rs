//! # picbench-core
//!
//! The PICBench evaluation framework — the paper's primary contribution,
//! reproduced end to end:
//!
//! * [`Evaluator`] — syntax checking (extract → parse → validate →
//!   simulate) and functionality checking (frequency-response comparison
//!   against the golden design), §III-C;
//! * [`classify`] — the error-classification loop mapping raw failures
//!   onto the Table II taxonomy, §III-D;
//! * [`run_sample`] — the error-feedback loop (Fig. 1/Fig. 4), §III-E;
//! * [`pass_at_k`] / [`aggregate_pass_at_k`] — the unbiased Pass@k
//!   estimator (Eq. 1);
//! * [`Campaign::builder`] — the session API behind Tables III and IV:
//!   problems × pluggable [`ModelProvider`]s × feedback settings, with
//!   typed progress events ([`CampaignObserver`]) and cooperative
//!   cancellation ([`CancelToken`]); [`run_campaign`] remains as a thin
//!   shim over it;
//! * [`render_table`] / [`render_csv`] — paper-layout reporting.
//!
//! The evaluator's cached, canonical pipeline is continuously verified
//! by the `picbench-conformance` crate (re-exported as
//! `picbench::conformance`): generated circuits are swept through
//! cached-vs-uncached and raw-vs-canonical evaluation — among other
//! differential axes — and must agree bit for bit. It depends on this
//! crate, which is why the re-export lives one level up in the umbrella
//! crate.
//!
//! ## Example: a streaming campaign session
//!
//! ```
//! use picbench_core::{Campaign, CampaignEvent};
//! use picbench_synthllm::ModelProfile;
//! use std::sync::mpsc;
//!
//! let (events, progress) = mpsc::channel();
//! let campaign = Campaign::builder()
//!     .problem(picbench_problems::find("mzi-ps").unwrap())
//!     .profiles(&[ModelProfile::claude35_sonnet()])
//!     .samples_per_problem(2)
//!     .k_values([1])
//!     .feedback_iters([0, 1])
//!     .observer(std::sync::Arc::new(move |event: &CampaignEvent| {
//!         let _ = events.send(event.clone());
//!     }))
//!     .build()?;
//! let report = campaign.run();
//! assert_eq!(report.cells.len(), 2); // 1 model × 2 feedback settings × 1 k
//! let finished = progress
//!     .try_iter()
//!     .filter(|e| matches!(e, CampaignEvent::CellFinished { .. }))
//!     .count();
//! assert_eq!(finished, 2); // one per (problem × model × feedback) cell
//! # Ok::<(), picbench_core::CampaignBuildError>(())
//! ```
//!
//! [`ModelProvider`]: picbench_synthllm::ModelProvider

#![warn(missing_docs)]

mod campaign;
pub mod classify;
mod evaluate;
mod events;
mod feedback_loop;
pub mod journal;
mod lease;
mod passk;
pub mod persist;
mod report;
mod shard;
mod stats;
pub mod supervisor;
mod trace;

pub use campaign::{
    run_campaign, Campaign, CampaignBuildError, CampaignBuilder, CampaignConfig, CampaignGrain,
    CampaignOutcome, CampaignReport, CellScore, ConditionTallies, KillPoint,
};
pub use evaluate::{
    CacheScope, EvalCache, EvalCacheStats, EvalReport, Evaluator, DEFAULT_FUNCTIONAL_TOLERANCE,
};
pub use events::{CampaignEvent, CampaignObserver, CancelToken, ShardLossReason};
pub use feedback_loop::{run_sample, AttemptRecord, LoopConfig, SampleResult};
pub use journal::{LocalShardJournal, ShardJournal};
pub use lease::{lease_expired, Clock, LeaseConfig, SystemClock, TestClock};
pub use passk::{aggregate_pass_at_k, pass_at_k, ProblemTally};
pub use persist::{
    EvalSnapshot, EvalStore, EvalStoreStats, LeaseAdvance, LeaseRecord, ShardGenStats,
    SharedEvalStore,
};
pub use shard::{
    collect_shard_cells, shard_journal_dir, ShardCells, ShardMergeError, ShardMergeInfo,
    ShardMergeOutcome, ShardPlan,
};
pub use supervisor::{
    run_shard_worker, run_shard_worker_with, ChaosKill, ChaosPlan, InProcessLauncher,
    ProcessLauncher, ShardLauncher, ShardWorkerConfig, ShardWorkerHandle, ShardWorkerReport,
    ShardWorkload, WorkerFault, WorkerRequest, WorkerStall, WorkerState,
};
// Retry-layer types surface in `CampaignConfig` and `CampaignEvent`;
// re-exported so campaign drivers need only this crate.
pub use picbench_synthllm::{RetryEvent, RetryPolicy, RetryProvider, TransportErrorKind};
pub use report::{render_csv, render_table};
pub use stats::{collect_error_histogram, restriction_ablation, AblationRow, ErrorHistogram};
pub use trace::render_trace_markdown;
