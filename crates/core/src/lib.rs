//! # picbench-core
//!
//! The PICBench evaluation framework — the paper's primary contribution,
//! reproduced end to end:
//!
//! * [`Evaluator`] — syntax checking (extract → parse → validate →
//!   simulate) and functionality checking (frequency-response comparison
//!   against the golden design), §III-C;
//! * [`classify`] — the error-classification loop mapping raw failures
//!   onto the Table II taxonomy, §III-D;
//! * [`run_sample`] — the error-feedback loop (Fig. 1/Fig. 4), §III-E;
//! * [`pass_at_k`] / [`aggregate_pass_at_k`] — the unbiased Pass@k
//!   estimator (Eq. 1);
//! * [`run_campaign`] — the full `models × feedback × problems × samples`
//!   matrix behind Tables III and IV, multi-threaded and seeded;
//! * [`render_table`] / [`render_csv`] — paper-layout reporting.
//!
//! ## Example
//!
//! ```
//! use picbench_core::{run_sample, Evaluator, LoopConfig};
//! use picbench_synthllm::PerfectLlm;
//!
//! let problem = picbench_problems::find("mzi-ps").unwrap();
//! let mut evaluator = Evaluator::default();
//! let mut oracle = PerfectLlm::new();
//! let result = run_sample(&mut oracle, &problem, &mut evaluator, LoopConfig::default(), 0);
//! assert!(result.functional_pass());
//! ```

#![warn(missing_docs)]

mod campaign;
pub mod classify;
mod evaluate;
mod feedback_loop;
mod passk;
mod report;
mod stats;
mod trace;

pub use campaign::{
    run_campaign, CampaignConfig, CampaignGrain, CampaignReport, CellScore, ConditionTallies,
};
pub use evaluate::{
    EvalCache, EvalCacheStats, EvalReport, Evaluator, DEFAULT_FUNCTIONAL_TOLERANCE,
};
pub use feedback_loop::{run_sample, AttemptRecord, LoopConfig, SampleResult};
pub use passk::{aggregate_pass_at_k, pass_at_k, ProblemTally};
pub use report::{render_csv, render_table};
pub use stats::{collect_error_histogram, restriction_ablation, AblationRow, ErrorHistogram};
pub use trace::render_trace_markdown;
