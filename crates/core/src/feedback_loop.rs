//! The error-feedback loop (§III-E, Fig. 1 and Fig. 4).
//!
//! One *sample* is a complete conversation: system prompt, problem
//! description, the model's first netlist, and up to `max_feedback_iters`
//! correction rounds. Syntax errors feed back the classified categories
//! with detailed reports; functional errors feed back the paper's fixed
//! hint. The sample's verdict is the outcome of its final attempt.

use crate::evaluate::{EvalReport, Evaluator};
use picbench_problems::Problem;
use picbench_prompt::{functional_feedback, syntax_feedback, Conversation, Role};
use picbench_synthllm::LanguageModel;

/// Configuration of one feedback-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopConfig {
    /// Maximum number of feedback iterations after the initial query
    /// (the paper evaluates 0, 1 and 3).
    pub max_feedback_iters: usize,
    /// Whether the Table II restrictions are included in the system
    /// prompt.
    pub restrictions: bool,
}

/// One generation + evaluation round inside a sample.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// 0 = initial query, 1.. = feedback iterations.
    pub iteration: usize,
    /// The model's raw response.
    pub response: String,
    /// The evaluator's verdict.
    pub report: EvalReport,
}

/// The complete outcome of one sample.
#[derive(Debug, Clone)]
pub struct SampleResult {
    /// Problem identifier.
    pub problem_id: String,
    /// Model display name.
    pub model: String,
    /// Which of the n Pass@k samples this is.
    pub sample_index: u64,
    /// Every attempt in order.
    pub attempts: Vec<AttemptRecord>,
    /// The full conversation transcript.
    pub conversation: Conversation,
}

impl SampleResult {
    /// The final attempt.
    pub fn final_attempt(&self) -> &AttemptRecord {
        self.attempts.last().expect("at least one attempt")
    }

    /// Whether the sample ended with valid syntax.
    pub fn syntax_pass(&self) -> bool {
        self.final_attempt().report.syntax_pass()
    }

    /// Whether the sample ended functionally correct.
    pub fn functional_pass(&self) -> bool {
        self.final_attempt().report.functional_pass()
    }

    /// Number of feedback rounds actually used.
    pub fn feedback_rounds_used(&self) -> usize {
        self.attempts.len() - 1
    }
}

/// Runs one sample through the Fig. 1 flow.
pub fn run_sample(
    llm: &mut dyn LanguageModel,
    problem: &Problem,
    evaluator: &mut Evaluator,
    config: LoopConfig,
    sample_index: u64,
) -> SampleResult {
    let system = evaluator.system_prompt(config.restrictions);
    let mut conversation = Conversation::with_system((*system).clone());
    conversation.push(Role::User, problem.description.clone());

    llm.begin_sample(problem, sample_index);

    let mut attempts = Vec::with_capacity(config.max_feedback_iters + 1);
    for iteration in 0..=config.max_feedback_iters {
        let response = llm.respond(&conversation);
        conversation.push(Role::Assistant, response.clone());
        let report = evaluator.evaluate_response(problem, &response);
        let done = report.functional_pass();
        attempts.push(AttemptRecord {
            iteration,
            response,
            report,
        });
        if done || iteration == config.max_feedback_iters {
            break;
        }
        // Prepare the next round's feedback.
        let last = attempts.last().expect("just pushed");
        let feedback = if last.report.syntax_pass() {
            functional_feedback()
        } else {
            syntax_feedback(&problem.id, last.report.issues())
        };
        conversation.push(Role::User, feedback);
    }

    SampleResult {
        problem_id: problem.id.to_string(),
        model: llm.name().to_string(),
        sample_index,
        attempts,
        conversation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_synthllm::{ModelProfile, PerfectLlm, SyntheticLlm};

    fn mzi_ps() -> Problem {
        picbench_problems::find("mzi-ps").unwrap()
    }

    #[test]
    fn oracle_passes_in_one_attempt() {
        let problem = mzi_ps();
        let mut llm = PerfectLlm::new();
        let mut ev = Evaluator::default();
        let result = run_sample(
            &mut llm,
            &problem,
            &mut ev,
            LoopConfig {
                max_feedback_iters: 3,
                restrictions: false,
            },
            0,
        );
        assert!(result.syntax_pass());
        assert!(result.functional_pass());
        assert_eq!(result.attempts.len(), 1);
        assert_eq!(result.feedback_rounds_used(), 0);
    }

    #[test]
    fn oracle_passes_every_problem() {
        let mut llm = PerfectLlm::new();
        let mut ev = Evaluator::default();
        for problem in picbench_problems::suite() {
            let result = run_sample(&mut llm, &problem, &mut ev, LoopConfig::default(), 0);
            assert!(
                result.functional_pass(),
                "oracle failed {}: {:?}",
                problem.id,
                result.final_attempt().report.issues()
            );
        }
    }

    #[test]
    fn feedback_improves_synthetic_outcomes() {
        // With many samples, allowing 3 feedback rounds must produce at
        // least as many (and in practice more) syntax passes as 0 rounds.
        let problem = picbench_problems::find("clements-4x4").unwrap();
        let mut ev = Evaluator::default();
        let samples = 30;
        let mut passes = [0usize; 2];
        for (slot, iters) in [(0usize, 0usize), (1, 3)] {
            let mut llm = SyntheticLlm::new(ModelProfile::claude35_sonnet(), 11);
            for s in 0..samples {
                let result = run_sample(
                    &mut llm,
                    &problem,
                    &mut ev,
                    LoopConfig {
                        max_feedback_iters: iters,
                        restrictions: false,
                    },
                    s,
                );
                if result.syntax_pass() {
                    passes[slot] += 1;
                }
            }
        }
        assert!(
            passes[1] > passes[0],
            "feedback should help: {} vs {}",
            passes[1],
            passes[0]
        );
    }

    #[test]
    fn loop_stops_early_on_success() {
        let problem = mzi_ps();
        let mut llm = PerfectLlm::new();
        let mut ev = Evaluator::default();
        let result = run_sample(
            &mut llm,
            &problem,
            &mut ev,
            LoopConfig {
                max_feedback_iters: 3,
                restrictions: false,
            },
            0,
        );
        // Perfect model needs no feedback: exactly one assistant turn.
        assert_eq!(result.conversation.turns().len(), 3); // system, user, assistant
    }

    #[test]
    fn transcript_records_feedback_turns() {
        // Force errors with a high-lambda profile; the transcript should
        // contain user feedback turns when iterations are allowed.
        let problem = picbench_problems::find("spanke-8x8").unwrap();
        let mut llm = SyntheticLlm::new(ModelProfile::gpt_o1_mini(), 5);
        let mut ev = Evaluator::default();
        let result = run_sample(
            &mut llm,
            &problem,
            &mut ev,
            LoopConfig {
                max_feedback_iters: 2,
                restrictions: false,
            },
            0,
        );
        // spanke-8x8 at difficulty ~5.3 virtually never passes initially.
        assert!(result.attempts.len() >= 2);
        let user_turns = result
            .conversation
            .turns()
            .iter()
            .filter(|t| t.role == Role::User)
            .count();
        assert_eq!(user_turns, 1 + result.feedback_rounds_used());
    }
}
