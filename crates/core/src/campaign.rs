//! Campaign runner: the full evaluation matrix of Tables III and IV.
//!
//! A campaign runs `models × feedback settings × problems × samples`
//! through the feedback loop and aggregates Pass@k. The engine is built
//! for throughput and determinism:
//!
//! * every problem's **golden response** is simulated once up front and
//!   shared immutably across all workers;
//! * work is distributed at the granularity of
//!   `(problem × model × feedback)` **cells** claimed from an atomic
//!   queue ([`CampaignGrain::PerCell`], the default) — a straggler
//!   problem no longer idles the rest of the machine, and the worker
//!   count is no longer capped by the problem count;
//! * all workers share one sharded, content-addressed [`EvalCache`], so
//!   structurally identical candidates (identical first attempts across
//!   feedback settings, retries converging to the golden, clean samples
//!   from different models) are simulated once;
//! * each worker owns its evaluator (schedule cache + solve workspace)
//!   and sweeps serially — the campaign parallelizes *across* cells, not
//!   within sweeps.
//!
//! Because the synthetic models reseed per `(model, problem, sample)` and
//! cached replay is bit-identical to cold evaluation, the resulting
//! [`CampaignReport`] is **bit-identical** for any thread count, either
//! grain, and with the cache on or off. Aggregation iterates cells in a
//! fixed problem-major order, never in hash-map order.

use crate::evaluate::{EvalCache, EvalCacheStats, Evaluator};
use crate::feedback_loop::{run_sample, LoopConfig};
use crate::passk::{aggregate_pass_at_k, ProblemTally};
use picbench_problems::Problem;
use picbench_sim::{Backend, FrequencyResponse, WavelengthGrid};
use picbench_synthllm::{ModelProfile, SyntheticLlm};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Work-distribution granularity of [`run_campaign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CampaignGrain {
    /// One work unit per `(problem × model × feedback)` cell; workers
    /// sweep serially. The default, and the fastest on loaded hosts.
    #[default]
    PerCell,
    /// One work unit per problem (each worker runs all models × feedback
    /// settings for its problem, sweeping with the simulator's default
    /// parallelism) — the pre-cache engine, kept as the benchmark
    /// baseline. Caps useful workers at the problem count.
    PerProblem,
}

/// Campaign-wide configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Samples per problem (the paper's default n = 5).
    pub samples_per_problem: usize,
    /// Pass@k values to report (the paper uses 1 and 5).
    pub k_values: Vec<usize>,
    /// Feedback-iteration settings (the paper uses 0, 1 and 3).
    pub feedback_iters: Vec<usize>,
    /// Whether the system prompt carries the Table II restrictions.
    pub restrictions: bool,
    /// Campaign seed (same seed ⇒ identical tables).
    pub seed: u64,
    /// Wavelength grid for simulation/comparison.
    pub grid: WavelengthGrid,
    /// Worker threads (0 = one per available core, capped by work units).
    pub threads: usize,
    /// Work-distribution granularity.
    pub grain: CampaignGrain,
    /// Whether workers share a content-addressed evaluation cache.
    pub cache: bool,
    /// Reproduce the PR-1 sweep semantics inside workers: no
    /// constant-response fold, per-sweep internal parallelism. Results
    /// are bit-identical either way; this exists so benchmarks can time
    /// the historical baseline engine in the current tree.
    pub legacy_sweeps: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            samples_per_problem: 5,
            k_values: vec![1, 5],
            feedback_iters: vec![0, 1, 3],
            restrictions: false,
            seed: 20_250_205, // the paper's arXiv date
            grid: WavelengthGrid::paper_fast(),
            threads: 0,
            grain: CampaignGrain::PerCell,
            cache: true,
            legacy_sweeps: false,
        }
    }
}

/// Aggregated scores of one `(model, feedback, k)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellScore {
    /// Model display name.
    pub model: String,
    /// Feedback iterations.
    pub feedback_iters: usize,
    /// k of Pass@k.
    pub k: usize,
    /// Syntax Pass@k (percent).
    pub syntax: f64,
    /// Functional Pass@k (percent).
    pub functional: f64,
}

/// Per-problem tallies of one `(model, feedback)` condition.
#[derive(Debug, Clone)]
pub struct ConditionTallies {
    /// Model display name.
    pub model: String,
    /// Feedback iterations.
    pub feedback_iters: usize,
    /// Tallies keyed by problem id.
    pub tallies: HashMap<String, ProblemTally>,
}

/// A completed campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Whether restrictions were active.
    pub restrictions: bool,
    /// Sample count per problem.
    pub samples_per_problem: usize,
    /// Aggregated scores for every cell.
    pub cells: Vec<CellScore>,
    /// Raw per-problem tallies for every condition.
    pub conditions: Vec<ConditionTallies>,
    /// Hit/miss counters of the shared evaluation cache (when enabled).
    pub cache_stats: Option<EvalCacheStats>,
}

impl CampaignReport {
    /// Looks up one cell.
    pub fn cell(&self, model: &str, feedback_iters: usize, k: usize) -> Option<&CellScore> {
        self.cells
            .iter()
            .find(|c| c.model == model && c.feedback_iters == feedback_iters && c.k == k)
    }

    /// Whether two reports carry identical scores and tallies (the
    /// determinism criterion — cache counters are excluded, as they
    /// legitimately vary with scheduling).
    pub fn same_results(&self, other: &CampaignReport) -> bool {
        self.restrictions == other.restrictions
            && self.samples_per_problem == other.samples_per_problem
            && self.cells == other.cells
            && self.conditions.len() == other.conditions.len()
            && self.conditions.iter().zip(&other.conditions).all(|(a, b)| {
                a.model == b.model && a.feedback_iters == b.feedback_iters && a.tallies == b.tallies
            })
    }
}

/// One `(problem × model × feedback)` evaluation cell.
#[derive(Clone, Copy)]
struct Cell {
    problem: usize,
    profile: usize,
    ef_idx: usize,
}

/// Runs a campaign over the given model profiles and problems.
///
/// # Panics
///
/// Panics if `problems`, `profiles` or `config.k_values` is empty, or if
/// a golden design fails to simulate (a bug, not an input condition).
pub fn run_campaign(
    profiles: &[ModelProfile],
    problems: &[Problem],
    config: &CampaignConfig,
) -> CampaignReport {
    assert!(!problems.is_empty(), "campaign needs problems");
    assert!(!profiles.is_empty(), "campaign needs model profiles");
    assert!(!config.k_values.is_empty(), "campaign needs k values");

    // Golden responses: simulated once, shared immutably by every worker,
    // and seeded into the evaluation cache so golden-identical candidates
    // are instant hits.
    let cache = config.cache.then(|| Arc::new(EvalCache::new()));
    let goldens: Arc<HashMap<String, Arc<FrequencyResponse>>> = {
        let mut evaluator = Evaluator::new(config.grid, Backend::default());
        if let Some(cache) = &cache {
            evaluator = evaluator.with_cache(Arc::clone(cache));
        }
        Arc::new(
            problems
                .iter()
                .map(|p| (p.id.to_string(), evaluator.prime_golden(p)))
                .collect(),
        )
    };

    // Cells in problem-major order; `PerProblem` groups each problem's
    // contiguous run of cells into one work unit.
    let per_problem = profiles.len() * config.feedback_iters.len();
    let mut cells = Vec::with_capacity(problems.len() * per_problem);
    for problem in 0..problems.len() {
        for profile in 0..profiles.len() {
            for ef_idx in 0..config.feedback_iters.len() {
                cells.push(Cell {
                    problem,
                    profile,
                    ef_idx,
                });
            }
        }
    }
    let units: Vec<std::ops::Range<usize>> = match config.grain {
        CampaignGrain::PerCell => (0..cells.len()).map(|i| i..i + 1).collect(),
        CampaignGrain::PerProblem => (0..problems.len())
            .map(|p| p * per_problem..(p + 1) * per_problem)
            .collect(),
    };

    let worker_count = if config.threads > 0 {
        config.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
    .min(units.len())
    .max(1);
    let sweep_threads = if config.legacy_sweeps {
        0
    } else {
        match config.grain {
            CampaignGrain::PerCell => 1,
            CampaignGrain::PerProblem => 0,
        }
    };

    let next_unit = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, ProblemTally)>> = Mutex::new(Vec::with_capacity(cells.len()));

    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| {
                let mut evaluator = Evaluator::new(config.grid, Backend::default())
                    .with_shared_goldens(Arc::clone(&goldens))
                    .with_sweep_threads(sweep_threads)
                    .with_constant_fold(!config.legacy_sweeps);
                if let Some(cache) = &cache {
                    evaluator = evaluator.with_cache(Arc::clone(cache));
                }
                let mut local: Vec<(usize, ProblemTally)> = Vec::new();
                loop {
                    let unit = next_unit.fetch_add(1, Ordering::Relaxed);
                    if unit >= units.len() {
                        break;
                    }
                    for cell_index in units[unit].clone() {
                        let cell = cells[cell_index];
                        let problem = &problems[cell.problem];
                        let mut llm =
                            SyntheticLlm::new(profiles[cell.profile].clone(), config.seed);
                        let loop_config = LoopConfig {
                            max_feedback_iters: config.feedback_iters[cell.ef_idx],
                            restrictions: config.restrictions,
                        };
                        let mut tally = ProblemTally {
                            n: config.samples_per_problem,
                            syntax_passes: 0,
                            functional_passes: 0,
                        };
                        for sample in 0..config.samples_per_problem as u64 {
                            let result =
                                run_sample(&mut llm, problem, &mut evaluator, loop_config, sample);
                            if result.syntax_pass() {
                                tally.syntax_passes += 1;
                            }
                            if result.functional_pass() {
                                tally.functional_passes += 1;
                            }
                        }
                        local.push((cell_index, tally));
                    }
                }
                results.lock().expect("results poisoned").extend(local);
            });
        }
    });

    let raw = results.into_inner().expect("results poisoned");
    let mut by_cell: Vec<Option<ProblemTally>> = vec![None; cells.len()];
    for (index, tally) in raw {
        by_cell[index] = Some(tally);
    }
    let cell_index = |problem: usize, profile: usize, ef_idx: usize| {
        (problem * profiles.len() + profile) * config.feedback_iters.len() + ef_idx
    };

    // Aggregation iterates problems in input order — deterministic and
    // independent of scheduling, hashing and thread count.
    let mut conditions: Vec<ConditionTallies> = Vec::new();
    let mut scores = Vec::new();
    for (profile_idx, profile) in profiles.iter().enumerate() {
        for (ef_idx, &ef) in config.feedback_iters.iter().enumerate() {
            let ordered: Vec<(usize, ProblemTally)> = (0..problems.len())
                .map(|p| {
                    let tally = by_cell[cell_index(p, profile_idx, ef_idx)]
                        .expect("every cell was computed");
                    (p, tally)
                })
                .collect();
            for &k in &config.k_values {
                let tally_vec: Vec<ProblemTally> = ordered.iter().map(|(_, t)| *t).collect();
                let (syntax, functional) = aggregate_pass_at_k(&tally_vec, k);
                scores.push(CellScore {
                    model: profile.name.to_string(),
                    feedback_iters: ef,
                    k,
                    syntax,
                    functional,
                });
            }
            conditions.push(ConditionTallies {
                model: profile.name.to_string(),
                feedback_iters: ef,
                tallies: ordered
                    .into_iter()
                    .map(|(p, tally)| (problems[p].id.to_string(), tally))
                    .collect(),
            });
        }
    }

    CampaignReport {
        restrictions: config.restrictions,
        samples_per_problem: config.samples_per_problem,
        cells: scores,
        conditions,
        cache_stats: cache.map(|c| c.stats()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problems() -> Vec<Problem> {
        ["mzi-ps", "mzm", "umatrix", "direct-modulator"]
            .iter()
            .map(|id| picbench_problems::find(id).unwrap())
            .collect()
    }

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            samples_per_problem: 4,
            k_values: vec![1, 4],
            feedback_iters: vec![0, 1],
            restrictions: false,
            seed: 99,
            grid: WavelengthGrid::paper_fast(),
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_produces_all_cells() {
        let profiles = vec![ModelProfile::gpt4(), ModelProfile::gemini15_pro()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        // 2 models × 2 EF settings × 2 k values.
        assert_eq!(report.cells.len(), 8);
        assert!(report.cell("GPT-4", 0, 1).is_some());
        assert!(report.cell("Gemini 1.5 pro", 1, 4).is_some());
        assert!(report.cell("GPT-4", 2, 1).is_none());
    }

    #[test]
    fn campaign_is_deterministic() {
        let profiles = vec![ModelProfile::claude35_sonnet()];
        let a = run_campaign(&profiles, &small_problems(), &small_config());
        let b = run_campaign(&profiles, &small_problems(), &small_config());
        assert!(a.same_results(&b));
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn report_is_bit_identical_across_thread_counts() {
        let profiles = vec![ModelProfile::gpt4o()];
        let reference = run_campaign(
            &profiles,
            &small_problems(),
            &CampaignConfig {
                threads: 1,
                ..small_config()
            },
        );
        for threads in [2, 3, 8] {
            let parallel = run_campaign(
                &profiles,
                &small_problems(),
                &CampaignConfig {
                    threads,
                    ..small_config()
                },
            );
            assert!(
                reference.same_results(&parallel),
                "thread count {threads} changed the report"
            );
        }
    }

    #[test]
    fn report_is_identical_across_grains_and_cache_settings() {
        let profiles = vec![ModelProfile::gpt4(), ModelProfile::claude35_sonnet()];
        let problems = small_problems();
        let reference = run_campaign(&profiles, &problems, &small_config());
        assert!(reference.cache_stats.is_some());
        for (grain, cache) in [
            (CampaignGrain::PerCell, false),
            (CampaignGrain::PerProblem, true),
            (CampaignGrain::PerProblem, false),
        ] {
            let other = run_campaign(
                &profiles,
                &problems,
                &CampaignConfig {
                    grain,
                    cache,
                    ..small_config()
                },
            );
            assert!(
                reference.same_results(&other),
                "grain {grain:?} / cache {cache} changed the report"
            );
            assert_eq!(other.cache_stats.is_some(), cache);
        }
    }

    #[test]
    fn cache_absorbs_repeated_structures() {
        let profiles = vec![ModelProfile::gpt4()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        let stats = report.cache_stats.expect("cache on by default");
        assert!(stats.lookups() > 0);
        assert!(
            stats.hit_rate() > 0.2,
            "identical first attempts across feedback settings must hit: {stats:?}"
        );
    }

    #[test]
    fn feedback_never_hurts() {
        let profiles = vec![ModelProfile::gpt4o()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        let no_ef = report.cell("GPT-4o", 0, 1).unwrap();
        let one_ef = report.cell("GPT-4o", 1, 1).unwrap();
        assert!(one_ef.syntax >= no_ef.syntax);
        assert!(one_ef.functional >= no_ef.functional);
    }

    #[test]
    fn pass_at_5_bounds_pass_at_1() {
        let profiles = vec![ModelProfile::gpt4()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        let p1 = report.cell("GPT-4", 0, 1).unwrap();
        let p4 = report.cell("GPT-4", 0, 4).unwrap();
        assert!(p4.syntax >= p1.syntax);
        assert!(p4.functional >= p1.functional);
    }

    #[test]
    fn scores_are_percentages() {
        let profiles = vec![ModelProfile::gpt_o1_mini()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        for cell in &report.cells {
            assert!((0.0..=100.0).contains(&cell.syntax));
            assert!((0.0..=100.0).contains(&cell.functional));
            assert!(cell.functional <= cell.syntax + 1e-9);
        }
    }
}
