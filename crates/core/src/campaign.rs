//! Campaign sessions: the full evaluation matrix of Tables III and IV.
//!
//! A campaign runs `models × feedback settings × problems × samples`
//! through the feedback loop and aggregates Pass@k. Sessions are built
//! with [`Campaign::builder`] over any set of
//! [`ModelProvider`]s — calibrated synthetic profiles, recorded-transcript
//! replays, failure-injecting decorators, or real API clients — and can
//! stream typed [`CampaignEvent`]s to a [`CampaignObserver`] and abort
//! cooperatively through a [`CancelToken`]. The engine is built for
//! throughput and determinism:
//!
//! * every problem's **golden response** is simulated once up front and
//!   shared immutably across all workers;
//! * work is distributed at the granularity of
//!   `(problem × model × feedback)` **cells** claimed from an atomic
//!   queue ([`CampaignGrain::PerCell`], the default) — a straggler
//!   problem no longer idles the rest of the machine, and the worker
//!   count is no longer capped by the problem count;
//! * all workers share one sharded, content-addressed [`EvalCache`], so
//!   structurally identical candidates (identical first attempts across
//!   feedback settings, retries converging to the golden, clean samples
//!   from different models) are simulated once;
//! * each worker owns its evaluator (schedule cache + solve workspace)
//!   and sweeps serially — the campaign parallelizes *across* cells, not
//!   within sweeps.
//!
//! Each cell spawns a fresh model instance from its provider
//! ([`ModelProvider::spawn_seeded`] with the campaign seed); because the
//! synthetic models reseed per `(model, problem, sample)` and cached
//! replay is bit-identical to cold evaluation, the resulting
//! [`CampaignReport`] is **bit-identical** for any thread count, either
//! grain, with the cache on or off, and across the builder and legacy
//! [`run_campaign`] entry points. Aggregation iterates cells in a fixed
//! problem-major order, never in hash-map order.
//!
//! Campaigns are also **crash-safe**: attach a persistent
//! [`EvalStore`](crate::persist::EvalStore) with
//! [`CampaignBuilder::store`] and every completed cell is journalled
//! (fsync'd before the cell counts as complete); reopen the store after
//! a crash and [`CampaignBuilder::resume_from`] replays the journalled
//! cells and re-runs only the remainder — the merged report stays
//! bit-identical to an uninterrupted run. [`KillPoint`]s inject crashes
//! at those same boundaries for recovery drills, and a
//! [`RetryPolicy`] wrapped around the providers absorbs transient
//! transport failures deterministically.

use crate::evaluate::{CacheScope, EvalCache, EvalCacheStats, Evaluator};
use crate::events::{CampaignEvent, CampaignObserver, CancelToken};
use crate::feedback_loop::{run_sample, LoopConfig};
use crate::lease::{Clock, LeaseConfig, SystemClock};
use crate::passk::{aggregate_pass_at_k, ProblemTally};
use crate::persist::SharedEvalStore;
use crate::supervisor::{run_sharded, ChaosPlan, InProcessLauncher, ShardLauncher};
use picbench_problems::Problem;
use picbench_sim::{Backend, FrequencyResponse, WavelengthGrid};
use picbench_store::fnv1a64;
use picbench_synthllm::{ModelProfile, ModelProvider, RetryEvent, RetryPolicy, RetryProvider};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Work-distribution granularity of [`run_campaign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CampaignGrain {
    /// One work unit per `(problem × model × feedback)` cell; workers
    /// sweep serially. The default, and the fastest on loaded hosts.
    #[default]
    PerCell,
    /// One work unit per problem (each worker runs all models × feedback
    /// settings for its problem, sweeping with the simulator's default
    /// parallelism) — the pre-cache engine, kept as the benchmark
    /// baseline. Caps useful workers at the problem count.
    PerProblem,
}

/// Campaign-wide configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Samples per problem (the paper's default n = 5).
    pub samples_per_problem: usize,
    /// Pass@k values to report (the paper uses 1 and 5).
    pub k_values: Vec<usize>,
    /// Feedback-iteration settings (the paper uses 0, 1 and 3).
    pub feedback_iters: Vec<usize>,
    /// Whether the system prompt carries the Table II restrictions.
    pub restrictions: bool,
    /// Campaign seed (same seed ⇒ identical tables).
    pub seed: u64,
    /// Wavelength grid for simulation/comparison.
    pub grid: WavelengthGrid,
    /// Worker threads (0 = one per available core, capped by work units).
    pub threads: usize,
    /// Work-distribution granularity.
    pub grain: CampaignGrain,
    /// Whether workers share a content-addressed evaluation cache.
    pub cache: bool,
    /// Reproduce the PR-1 sweep semantics inside workers: no
    /// constant-response fold, per-sweep internal parallelism. Results
    /// are bit-identical either way; this exists so benchmarks can time
    /// the historical baseline engine in the current tree.
    pub legacy_sweeps: bool,
    /// Retry policy wrapped around every provider at execute time
    /// (`None` = no retry layer). The wrapped providers keep their
    /// display names, so report rows are unchanged; retry decisions
    /// surface as [`CampaignEvent::SampleRetried`] /
    /// [`CampaignEvent::SampleDegraded`].
    pub retry: Option<RetryPolicy>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            samples_per_problem: 5,
            k_values: vec![1, 5],
            feedback_iters: vec![0, 1, 3],
            restrictions: false,
            seed: 20_250_205, // the paper's arXiv date
            grid: WavelengthGrid::paper_fast(),
            threads: 0,
            grain: CampaignGrain::PerCell,
            cache: true,
            legacy_sweeps: false,
            retry: None,
        }
    }
}

/// A crash-injection hook for recovery drills: trips once `after_cells`
/// *freshly evaluated* cells have been journalled this run (restored
/// cells don't count). The final cell's journal record is fsync'd before
/// the kill fires, so a resumed run always sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Stop claiming new cells and return a cancelled-style
    /// [`CampaignOutcome`] (`report: None`), exactly as if a
    /// [`CancelToken`] had fired at that boundary. In-process drills.
    Stop {
        /// Fresh cells to complete before stopping (0 = before any).
        after_cells: usize,
    },
    /// `std::process::abort()` at the same boundary — a hard crash
    /// running no destructors, for out-of-process recovery drills.
    Abort {
        /// Fresh cells to complete before aborting (0 = before any).
        after_cells: usize,
    },
}

impl KillPoint {
    fn after_cells(self) -> usize {
        match self {
            KillPoint::Stop { after_cells } | KillPoint::Abort { after_cells } => after_cells,
        }
    }
}

/// Aggregated scores of one `(model, feedback, k)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellScore {
    /// Model display name.
    pub model: String,
    /// Feedback iterations.
    pub feedback_iters: usize,
    /// k of Pass@k.
    pub k: usize,
    /// Syntax Pass@k (percent).
    pub syntax: f64,
    /// Functional Pass@k (percent).
    pub functional: f64,
}

/// Per-problem tallies of one `(model, feedback)` condition.
#[derive(Debug, Clone)]
pub struct ConditionTallies {
    /// Model display name.
    pub model: String,
    /// Feedback iterations.
    pub feedback_iters: usize,
    /// Tallies keyed by problem id.
    pub tallies: HashMap<String, ProblemTally>,
}

/// A completed campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Whether restrictions were active.
    pub restrictions: bool,
    /// Sample count per problem.
    pub samples_per_problem: usize,
    /// Aggregated scores for every cell.
    pub cells: Vec<CellScore>,
    /// Raw per-problem tallies for every condition.
    pub conditions: Vec<ConditionTallies>,
    /// Hit/miss counters of the shared evaluation cache (when enabled).
    pub cache_stats: Option<EvalCacheStats>,
}

impl CampaignReport {
    /// Looks up one cell.
    pub fn cell(&self, model: &str, feedback_iters: usize, k: usize) -> Option<&CellScore> {
        self.cells
            .iter()
            .find(|c| c.model == model && c.feedback_iters == feedback_iters && c.k == k)
    }

    /// Whether two reports carry identical scores and tallies (the
    /// determinism criterion — cache counters are excluded, as they
    /// legitimately vary with scheduling).
    pub fn same_results(&self, other: &CampaignReport) -> bool {
        self.restrictions == other.restrictions
            && self.samples_per_problem == other.samples_per_problem
            && self.cells == other.cells
            && self.conditions.len() == other.conditions.len()
            && self.conditions.iter().zip(&other.conditions).all(|(a, b)| {
                a.model == b.model && a.feedback_iters == b.feedback_iters && a.tallies == b.tallies
            })
    }
}

/// One `(problem × model × feedback)` evaluation cell.
#[derive(Clone, Copy)]
pub(crate) struct Cell {
    pub(crate) problem: usize,
    pub(crate) profile: usize,
    pub(crate) ef_idx: usize,
}

/// The campaign's cell list in canonical problem-major order — the
/// order every execution path (single-process engine, shard planner,
/// merge) agrees on.
pub(crate) fn matrix_cells(
    problems: usize,
    providers: usize,
    feedback_settings: usize,
) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(problems * providers * feedback_settings);
    for problem in 0..problems {
        for profile in 0..providers {
            for ef_idx in 0..feedback_settings {
                cells.push(Cell {
                    problem,
                    profile,
                    ef_idx,
                });
            }
        }
    }
    cells
}

/// Journal keys for every cell, in the same canonical order.
pub(crate) fn matrix_cell_keys(
    problems: &[Problem],
    provider_names: &[String],
    config: &CampaignConfig,
    cells: &[Cell],
) -> Vec<u64> {
    cells
        .iter()
        .map(|cell| {
            cell_journal_key(
                &problems[cell.problem].id,
                &provider_names[cell.profile],
                config.feedback_iters[cell.ef_idx],
            )
        })
        .collect()
}

/// Why [`CampaignBuilder::build`] rejected a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignBuildError {
    /// No problems were added.
    NoProblems,
    /// No model providers were added.
    NoProviders,
    /// `k_values` is empty.
    NoKValues,
    /// `feedback_iters` is empty.
    NoFeedbackSettings,
    /// `samples_per_problem` is zero.
    ZeroSamples,
    /// Two problems share an id (tallies are keyed by id).
    DuplicateProblemId(String),
    /// Two providers share a display name (report rows, events and
    /// [`CampaignReport::cell`] lookups are keyed by it).
    DuplicateProviderName(String),
    /// `shards(n)` above 1 without a `shard_dir` — worker journals need
    /// a home.
    ShardsWithoutDir,
}

impl fmt::Display for CampaignBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignBuildError::NoProblems => write!(f, "campaign needs problems"),
            CampaignBuildError::NoProviders => write!(f, "campaign needs model providers"),
            CampaignBuildError::NoKValues => write!(f, "campaign needs k values"),
            CampaignBuildError::NoFeedbackSettings => {
                write!(f, "campaign needs feedback-iteration settings")
            }
            CampaignBuildError::ZeroSamples => {
                write!(f, "campaign needs at least one sample per problem")
            }
            CampaignBuildError::DuplicateProblemId(id) => {
                write!(f, "duplicate problem id {id:?} in campaign")
            }
            CampaignBuildError::DuplicateProviderName(name) => {
                write!(f, "duplicate provider name {name:?} in campaign")
            }
            CampaignBuildError::ShardsWithoutDir => {
                write!(f, "sharded campaign needs a shard_dir for worker journals")
            }
        }
    }
}

impl std::error::Error for CampaignBuildError {}

/// A validated, ready-to-run campaign session.
///
/// Built with [`Campaign::builder`]; holds problems, providers, the
/// evaluation matrix configuration, and the optional observer/cancel
/// plumbing. [`Campaign::run`] executes to a [`CampaignReport`];
/// [`Campaign::execute`] additionally supports cooperative cancellation
/// via a [`CancelToken`] and returns a [`CampaignOutcome`].
pub struct Campaign {
    pub(crate) problems: Vec<Problem>,
    pub(crate) providers: Vec<Arc<dyn ModelProvider>>,
    pub(crate) config: CampaignConfig,
    pub(crate) observer: Option<Arc<dyn CampaignObserver>>,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) store: Option<SharedEvalStore>,
    pub(crate) shared_cache: Option<Arc<EvalCache>>,
    pub(crate) scope: Option<Arc<CacheScope>>,
    pub(crate) resume: bool,
    pub(crate) kill: Option<KillPoint>,
    pub(crate) shards: u32,
    pub(crate) shard_dir: Option<PathBuf>,
    pub(crate) launcher: Option<Arc<dyn ShardLauncher>>,
    pub(crate) lease: LeaseConfig,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) chaos: Option<ChaosPlan>,
}

impl fmt::Debug for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("problems", &self.problems.len())
            .field(
                "providers",
                &self
                    .providers
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("config", &self.config)
            .field("observer", &self.observer.is_some())
            .field("cancellable", &self.cancel.is_some())
            .field("store", &self.store.is_some())
            .field("shared_cache", &self.shared_cache.is_some())
            .field("scoped", &self.scope.is_some())
            .field("resume", &self.resume)
            .field("kill", &self.kill)
            .field("shards", &self.shards)
            .field("shard_dir", &self.shard_dir)
            .finish()
    }
}

/// The result of a cancellable [`Campaign::execute`] run.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The aggregated report — `None` when the run was cancelled before
    /// every cell completed.
    pub report: Option<CampaignReport>,
    /// Whether the run was actually cut short — by a [`CancelToken`] or
    /// a [`KillPoint::Stop`]. A cancel request that lands after the last
    /// cell completed still yields the full report and `cancelled: false`.
    pub cancelled: bool,
    /// Cells accounted for — freshly evaluated plus restored.
    pub cells_completed: usize,
    /// Total cells in the matrix.
    pub cells_total: usize,
    /// Cells replayed from the journal of a previous run instead of
    /// being re-evaluated (always 0 without `resume_from`).
    pub cells_restored: usize,
}

impl Campaign {
    /// Starts a new campaign definition.
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::new()
    }

    /// The campaign's configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign to completion.
    ///
    /// # Panics
    ///
    /// Panics if an attached [`CancelToken`] fires mid-run (use
    /// [`Campaign::execute`] for cancellable sessions) or if a golden
    /// design fails to simulate (a bug, not an input condition).
    pub fn run(&self) -> CampaignReport {
        self.execute()
            .report
            .expect("campaign was cancelled; use Campaign::execute for cancellable runs")
    }

    /// Runs the campaign, honouring the attached [`CancelToken`].
    ///
    /// Cancellation is checked at cell boundaries: in-flight cells finish
    /// (emitting their [`CampaignEvent::CellFinished`]), no new cells
    /// start, and the outcome carries `report: None`.
    ///
    /// With [`CampaignBuilder::shards`] above 1 the run is routed
    /// through the shard supervisor instead of the in-process engine:
    /// workers journal into per-shard directories under the configured
    /// shard root, the supervisor tracks their leases and reassigns
    /// lost shards, and the per-shard journals merge into a report
    /// bit-identical to a single-process run.
    pub fn execute(&self) -> CampaignOutcome {
        if self.shards > 1 {
            return run_sharded(self);
        }
        execute_campaign(
            &self.problems,
            &self.providers,
            &self.config,
            self.observer.as_ref(),
            self.cancel.as_ref(),
            self.store.as_ref(),
            self.shared_cache.as_ref(),
            self.scope.as_ref(),
            self.resume,
            self.kill,
        )
    }

    /// The fingerprint identifying this campaign's result-relevant
    /// inputs: problems (ids and golden content hashes), provider
    /// names, samples, feedback settings, restrictions, seed, grid and
    /// retry policy. Journal records are keyed by it, so a store can
    /// hold journals of many campaigns and a resumed run only replays
    /// cells whose inputs provably match. Scheduling knobs (threads,
    /// grain, cache) and `k_values` are excluded — they cannot change
    /// tallies.
    pub fn fingerprint(&self) -> u64 {
        let names: Vec<String> = self
            .providers
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        campaign_fingerprint(&self.problems, &names, &self.config)
    }
}

/// Typed, validating constructor of [`Campaign`] sessions.
///
/// ```
/// use picbench_core::Campaign;
/// use picbench_synthllm::ModelProfile;
///
/// let campaign = Campaign::builder()
///     .problem(picbench_problems::find("mzi-ps").unwrap())
///     .profiles(&[ModelProfile::gpt4()])
///     .samples_per_problem(2)
///     .k_values([1])
///     .feedback_iters([0])
///     .build()
///     .unwrap();
/// let report = campaign.run();
/// assert_eq!(report.cells.len(), 1);
/// ```
#[derive(Default)]
pub struct CampaignBuilder {
    problems: Vec<Problem>,
    providers: Vec<Arc<dyn ModelProvider>>,
    config: Option<CampaignConfig>,
    observer: Option<Arc<dyn CampaignObserver>>,
    cancel: Option<CancelToken>,
    store: Option<SharedEvalStore>,
    shared_cache: Option<Arc<EvalCache>>,
    scope: Option<Arc<CacheScope>>,
    resume: bool,
    kill: Option<KillPoint>,
    shards: u32,
    shard_dir: Option<PathBuf>,
    launcher: Option<Arc<dyn ShardLauncher>>,
    lease: Option<LeaseConfig>,
    clock: Option<Arc<dyn Clock>>,
    chaos: Option<ChaosPlan>,
}

impl CampaignBuilder {
    /// An empty builder with the default [`CampaignConfig`].
    pub fn new() -> Self {
        CampaignBuilder::default()
    }

    fn config_mut(&mut self) -> &mut CampaignConfig {
        self.config.get_or_insert_with(CampaignConfig::default)
    }

    /// Adds one problem to the matrix.
    pub fn problem(mut self, problem: Problem) -> Self {
        self.problems.push(problem);
        self
    }

    /// Adds problems to the matrix (evaluation order is insertion order).
    pub fn problems(mut self, problems: impl IntoIterator<Item = Problem>) -> Self {
        self.problems.extend(problems);
        self
    }

    /// Adds one model provider.
    pub fn provider(mut self, provider: Arc<dyn ModelProvider>) -> Self {
        self.providers.push(provider);
        self
    }

    /// Adds model providers.
    pub fn providers(
        mut self,
        providers: impl IntoIterator<Item = Arc<dyn ModelProvider>>,
    ) -> Self {
        self.providers.extend(providers);
        self
    }

    /// Adds synthetic-model providers from calibrated profiles.
    pub fn profiles(mut self, profiles: &[ModelProfile]) -> Self {
        for profile in profiles {
            self.providers.push(Arc::new(profile.clone()));
        }
        self
    }

    /// Replaces the whole configuration at once (the escape hatch for
    /// callers that already hold a [`CampaignConfig`]).
    pub fn config(mut self, config: CampaignConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Samples per problem (the paper's default n = 5).
    pub fn samples_per_problem(mut self, samples: usize) -> Self {
        self.config_mut().samples_per_problem = samples;
        self
    }

    /// Pass@k values to report.
    pub fn k_values(mut self, k_values: impl IntoIterator<Item = usize>) -> Self {
        self.config_mut().k_values = k_values.into_iter().collect();
        self
    }

    /// Feedback-iteration settings (the paper uses 0, 1 and 3).
    pub fn feedback_iters(mut self, iters: impl IntoIterator<Item = usize>) -> Self {
        self.config_mut().feedback_iters = iters.into_iter().collect();
        self
    }

    /// Whether the system prompt carries the Table II restrictions.
    pub fn restrictions(mut self, restrictions: bool) -> Self {
        self.config_mut().restrictions = restrictions;
        self
    }

    /// Campaign seed (same seed ⇒ identical tables).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config_mut().seed = seed;
        self
    }

    /// Wavelength grid for simulation/comparison.
    pub fn grid(mut self, grid: WavelengthGrid) -> Self {
        self.config_mut().grid = grid;
        self
    }

    /// Worker threads (0 = one per available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config_mut().threads = threads;
        self
    }

    /// Work-distribution granularity.
    pub fn grain(mut self, grain: CampaignGrain) -> Self {
        self.config_mut().grain = grain;
        self
    }

    /// Whether workers share a content-addressed evaluation cache.
    pub fn cache(mut self, cache: bool) -> Self {
        self.config_mut().cache = cache;
        self
    }

    /// Reproduce the PR-1 sweep semantics inside workers (benchmarking
    /// baseline; results are bit-identical either way).
    pub fn legacy_sweeps(mut self, legacy: bool) -> Self {
        self.config_mut().legacy_sweeps = legacy;
        self
    }

    /// Wraps every provider in a retrying decorator at execute time.
    ///
    /// Transient transport failures (rate limits, connection resets,
    /// timeouts, garbled responses) are retried with deterministic
    /// seeded backoff instead of degrading into failure verdicts;
    /// fatal failures and exhausted budgets still degrade, surfaced as
    /// [`CampaignEvent::SampleDegraded`].
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.config_mut().retry = Some(policy);
        self
    }

    /// Attaches a persistent [`EvalStore`](crate::persist::EvalStore):
    /// the campaign journals every completed cell through it (fsync'd at
    /// cell boundaries) and uses it as the disk tier under the shared
    /// evaluation cache. Without [`CampaignBuilder::resume_from`]
    /// semantics — journal entries of previous runs are ignored.
    pub fn store(mut self, store: SharedEvalStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches a store *and* resumes from it: cells journalled by a
    /// previous run of the same campaign (matching
    /// [`Campaign::fingerprint`]) are replayed as
    /// [`CampaignEvent::CellRestored`] without re-evaluating; only the
    /// remainder runs. The merged report is bit-identical to an
    /// uninterrupted run.
    pub fn resume_from(mut self, store: SharedEvalStore) -> Self {
        self.store = Some(store);
        self.resume = true;
        self
    }

    /// Installs a crash-injection [`KillPoint`] for recovery drills.
    pub fn kill_point(mut self, kill: KillPoint) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Fans the campaign out over `n` shard worker processes (values of
    /// 0 and 1 keep the in-process engine). Requires
    /// [`CampaignBuilder::shard_dir`]: workers journal into per-shard
    /// directories under it, the supervisor tracks worker leases there,
    /// and the merged report is bit-identical to a single-process run —
    /// the shard count is excluded from [`Campaign::fingerprint`], so
    /// journals recombine across shard counts.
    pub fn shards(mut self, n: u32) -> Self {
        self.shards = n;
        self
    }

    /// The root directory holding per-shard journals
    /// (`<root>/shard-NNN/gen-GGG/`). Required when
    /// [`CampaignBuilder::shards`] is above 1.
    pub fn shard_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.shard_dir = Some(dir.into());
        self
    }

    /// Overrides how shard workers are launched. The default is
    /// [`InProcessLauncher`] (worker threads in this process); drills
    /// and production fan-out use
    /// [`ProcessLauncher`](crate::supervisor::ProcessLauncher) to spawn
    /// real worker processes.
    pub fn shard_launcher(mut self, launcher: Arc<dyn ShardLauncher>) -> Self {
        self.launcher = Some(launcher);
        self
    }

    /// Overrides the supervisor's liveness policy (lease TTL, poll
    /// interval, takeover bound).
    pub fn lease_config(mut self, lease: LeaseConfig) -> Self {
        self.lease = Some(lease);
        self
    }

    /// Overrides the supervisor's time source — tests inject a
    /// [`TestClock`](crate::lease::TestClock) to drive lease expiry
    /// deterministically.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Installs a fault-injection plan for chaos drills: the supervisor
    /// kills listed workers once their journals show enough cells, and
    /// stalls are handed to workers at launch.
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Shares a pre-existing process-wide [`EvalCache`] instead of
    /// creating a fresh one per run.
    ///
    /// This is the multi-tenancy seam: a server hosting many concurrent
    /// campaigns hands each of them the same cache, so identical
    /// submissions across tenants replay each other's content-addressed
    /// results. The cache's own disk tier (if it was built
    /// [`EvalCache::with_disk`]) is used as-is — an attached
    /// [`CampaignBuilder::store`] still journals cells but is *not*
    /// re-wrapped under a shared cache. Ignored when
    /// [`CampaignBuilder::cache`] is `false` or the campaign is sharded
    /// across processes ([`CampaignBuilder::shards`] above 1 — worker
    /// processes cannot share memory).
    pub fn shared_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Attaches a per-tenant [`CacheScope`]: every cache hit/miss this
    /// campaign causes is counted into the scope in addition to the
    /// cache's global counters, and the report's / event stream's
    /// cache stats show the scope's counters instead of the global
    /// ones (so one tenant's stats never reflect another's traffic).
    pub fn cache_scope(mut self, scope: Arc<CacheScope>) -> Self {
        self.scope = Some(scope);
        self
    }

    /// Attaches a progress observer fed typed [`CampaignEvent`]s.
    pub fn observer(mut self, observer: Arc<dyn CampaignObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Validates the definition into a runnable [`Campaign`].
    ///
    /// # Errors
    ///
    /// Returns a [`CampaignBuildError`] when the matrix is degenerate:
    /// no problems, no providers, empty `k_values`/`feedback_iters`,
    /// zero samples, duplicate problem ids, or duplicate provider names.
    pub fn build(self) -> Result<Campaign, CampaignBuildError> {
        let config = self.config.unwrap_or_default();
        if self.problems.is_empty() {
            return Err(CampaignBuildError::NoProblems);
        }
        if self.providers.is_empty() {
            return Err(CampaignBuildError::NoProviders);
        }
        if config.k_values.is_empty() {
            return Err(CampaignBuildError::NoKValues);
        }
        if config.feedback_iters.is_empty() {
            return Err(CampaignBuildError::NoFeedbackSettings);
        }
        if config.samples_per_problem == 0 {
            return Err(CampaignBuildError::ZeroSamples);
        }
        let mut seen = HashSet::new();
        for problem in &self.problems {
            if !seen.insert(problem.id.clone()) {
                return Err(CampaignBuildError::DuplicateProblemId(problem.id.clone()));
            }
        }
        let mut seen_names = HashSet::new();
        for provider in &self.providers {
            if !seen_names.insert(provider.name().to_string()) {
                return Err(CampaignBuildError::DuplicateProviderName(
                    provider.name().to_string(),
                ));
            }
        }
        if self.shards > 1 && self.shard_dir.is_none() {
            return Err(CampaignBuildError::ShardsWithoutDir);
        }
        Ok(Campaign {
            problems: self.problems,
            providers: self.providers,
            config,
            observer: self.observer,
            cancel: self.cancel,
            store: self.store,
            shared_cache: self.shared_cache,
            scope: self.scope,
            resume: self.resume,
            kill: self.kill,
            shards: self.shards,
            shard_dir: self.shard_dir,
            launcher: Some(
                self.launcher
                    .unwrap_or_else(|| Arc::new(InProcessLauncher::new())),
            ),
            lease: self.lease.unwrap_or_default(),
            clock: self.clock.unwrap_or_else(|| Arc::new(SystemClock)),
            chaos: self.chaos,
        })
    }
}

/// Runs a campaign over the given model profiles and problems.
///
/// This is the legacy free-function entry point, kept as a thin shim over
/// [`Campaign::builder`]: each profile becomes an `Arc<dyn ModelProvider>`
/// spawning seed-faithful [`picbench_synthllm::SyntheticLlm`]s, so the
/// report is bit-identical to the builder path.
///
/// # Panics
///
/// Panics if `problems`, `profiles` or `config.k_values` is empty, or if
/// a golden design fails to simulate (a bug, not an input condition).
pub fn run_campaign(
    profiles: &[ModelProfile],
    problems: &[Problem],
    config: &CampaignConfig,
) -> CampaignReport {
    assert!(!problems.is_empty(), "campaign needs problems");
    assert!(!profiles.is_empty(), "campaign needs model profiles");
    assert!(!config.k_values.is_empty(), "campaign needs k values");
    // Constructed directly rather than through build(): the builder's
    // stricter validation (duplicate ids, empty feedback settings) is new
    // API surface, and this entry point keeps its historical tolerance.
    let campaign = Campaign {
        problems: problems.to_vec(),
        providers: profiles
            .iter()
            .map(|p| Arc::new(p.clone()) as Arc<dyn ModelProvider>)
            .collect(),
        config: config.clone(),
        observer: None,
        cancel: None,
        store: None,
        shared_cache: None,
        scope: None,
        resume: false,
        kill: None,
        shards: 0,
        shard_dir: None,
        launcher: None,
        lease: LeaseConfig::default(),
        clock: Arc::new(SystemClock),
        chaos: None,
    };
    campaign.run()
}

/// FNV-1a over the campaign's result-relevant inputs; see
/// [`Campaign::fingerprint`].
pub(crate) fn campaign_fingerprint(
    problems: &[Problem],
    provider_names: &[String],
    config: &CampaignConfig,
) -> u64 {
    fn push_str(buf: &mut Vec<u8>, s: &str) {
        buf.extend_from_slice(&(s.len() as u64).to_le_bytes());
        buf.extend_from_slice(s.as_bytes());
    }
    let mut buf = Vec::with_capacity(256);
    buf.extend_from_slice(b"picbench-campaign-v1");
    buf.extend_from_slice(&(problems.len() as u64).to_le_bytes());
    for problem in problems {
        push_str(&mut buf, &problem.id);
        buf.extend_from_slice(&problem.golden.content_hash().to_le_bytes());
    }
    buf.extend_from_slice(&(provider_names.len() as u64).to_le_bytes());
    for name in provider_names {
        push_str(&mut buf, name);
    }
    buf.extend_from_slice(&(config.samples_per_problem as u64).to_le_bytes());
    buf.extend_from_slice(&(config.feedback_iters.len() as u64).to_le_bytes());
    for &ef in &config.feedback_iters {
        buf.extend_from_slice(&(ef as u64).to_le_bytes());
    }
    buf.push(u8::from(config.restrictions));
    buf.extend_from_slice(&config.seed.to_le_bytes());
    buf.extend_from_slice(&config.grid.start_um.to_bits().to_le_bytes());
    buf.extend_from_slice(&config.grid.stop_um.to_bits().to_le_bytes());
    buf.extend_from_slice(&(config.grid.points as u64).to_le_bytes());
    match config.retry {
        Some(policy) => {
            buf.push(1);
            buf.extend_from_slice(&policy.digest().to_le_bytes());
        }
        None => buf.push(0),
    }
    fnv1a64(&buf)
}

/// Stable journal key of one `(problem × model × feedback)` cell —
/// derived from identities, not matrix indices, so reordering the
/// problem or provider lists does not orphan journal records.
pub(crate) fn cell_journal_key(problem_id: &str, provider: &str, feedback_iters: usize) -> u64 {
    let mut buf = Vec::with_capacity(problem_id.len() + provider.len() + 24);
    buf.extend_from_slice(&(problem_id.len() as u64).to_le_bytes());
    buf.extend_from_slice(problem_id.as_bytes());
    buf.extend_from_slice(&(provider.len() as u64).to_le_bytes());
    buf.extend_from_slice(provider.as_bytes());
    buf.extend_from_slice(&(feedback_iters as u64).to_le_bytes());
    fnv1a64(&buf)
}

/// Bridges retry-layer decisions into the campaign event stream.
fn bridge_retry_event(event: &RetryEvent) -> CampaignEvent {
    match event {
        RetryEvent::Retried {
            provider,
            problem,
            sample,
            attempt,
            kind,
            backoff_ms,
        } => CampaignEvent::SampleRetried {
            model: provider.clone(),
            problem_id: problem.clone(),
            sample: *sample,
            attempt: *attempt,
            kind: *kind,
            backoff_ms: *backoff_ms,
        },
        RetryEvent::Degraded {
            provider,
            problem,
            sample,
            attempts,
            kind,
        } => CampaignEvent::SampleDegraded {
            model: provider.clone(),
            problem_id: problem.clone(),
            sample: *sample,
            attempts: *attempts,
            kind: *kind,
        },
    }
}

/// Wraps providers in the retry decorator when the config asks for one,
/// preserving display names; retry decisions bridge into the observer.
/// Shard workers apply the identical wrapping, so a cell evaluates the
/// same bytes whether it runs in-process or in a worker.
pub(crate) fn wrap_retry_providers(
    providers: &[Arc<dyn ModelProvider>],
    config: &CampaignConfig,
    observer: Option<&Arc<dyn CampaignObserver>>,
) -> Vec<Arc<dyn ModelProvider>> {
    match config.retry {
        Some(policy) => providers
            .iter()
            .map(|provider| {
                let mut retrying = RetryProvider::new(Arc::clone(provider), policy);
                if let Some(observer) = observer {
                    let observer = Arc::clone(observer);
                    retrying = retrying.with_sink(Arc::new(move |event: &RetryEvent| {
                        observer.on_event(&bridge_retry_event(event));
                    }));
                }
                Arc::new(retrying) as Arc<dyn ModelProvider>
            })
            .collect(),
        None => providers.to_vec(),
    }
}

/// Evaluates one cell exactly as the engine's worker loop does: a fresh
/// model instance seeded with the campaign seed, `samples_per_problem`
/// runs through the feedback loop, tallied. Extracted so shard workers
/// produce bit-identical tallies.
pub(crate) fn evaluate_cell(
    provider: &Arc<dyn ModelProvider>,
    problem: &Problem,
    feedback_iters: usize,
    config: &CampaignConfig,
    evaluator: &mut Evaluator,
) -> ProblemTally {
    let mut llm = provider.spawn_seeded(config.seed);
    let loop_config = LoopConfig {
        max_feedback_iters: feedback_iters,
        restrictions: config.restrictions,
    };
    let mut tally = ProblemTally {
        n: config.samples_per_problem,
        syntax_passes: 0,
        functional_passes: 0,
    };
    for sample in 0..config.samples_per_problem as u64 {
        let result = run_sample(llm.as_mut(), problem, evaluator, loop_config, sample);
        if result.syntax_pass() {
            tally.syntax_passes += 1;
        }
        if result.functional_pass() {
            tally.functional_passes += 1;
        }
    }
    tally
}

/// Folds per-cell tallies into a [`CampaignReport`], iterating problems
/// in input order — deterministic and independent of scheduling. Shared
/// by the in-process engine and the multi-shard merge, which is what
/// makes the merged report bit-identical.
///
/// # Panics
///
/// Panics when a cell is missing — callers verify coverage first.
pub(crate) fn aggregate_report(
    problems: &[Problem],
    provider_names: &[String],
    config: &CampaignConfig,
    by_cell: &[Option<ProblemTally>],
    cache_stats: Option<EvalCacheStats>,
) -> CampaignReport {
    let cell_index = |problem: usize, profile: usize, ef_idx: usize| {
        (problem * provider_names.len() + profile) * config.feedback_iters.len() + ef_idx
    };
    let mut conditions: Vec<ConditionTallies> = Vec::new();
    let mut scores = Vec::new();
    for (profile_idx, model_name) in provider_names.iter().enumerate() {
        for (ef_idx, &ef) in config.feedback_iters.iter().enumerate() {
            let ordered: Vec<(usize, ProblemTally)> = (0..problems.len())
                .map(|p| {
                    let tally = by_cell[cell_index(p, profile_idx, ef_idx)]
                        .expect("every cell was computed");
                    (p, tally)
                })
                .collect();
            for &k in &config.k_values {
                let tally_vec: Vec<ProblemTally> = ordered.iter().map(|(_, t)| *t).collect();
                let (syntax, functional) = aggregate_pass_at_k(&tally_vec, k);
                scores.push(CellScore {
                    model: model_name.clone(),
                    feedback_iters: ef,
                    k,
                    syntax,
                    functional,
                });
            }
            conditions.push(ConditionTallies {
                model: model_name.clone(),
                feedback_iters: ef,
                tallies: ordered
                    .into_iter()
                    .map(|(p, tally)| (problems[p].id.clone(), tally))
                    .collect(),
            });
        }
    }
    CampaignReport {
        restrictions: config.restrictions,
        samples_per_problem: config.samples_per_problem,
        cells: scores,
        conditions,
        cache_stats,
    }
}

/// The campaign engine: fans `(problem × model × feedback)` cells out
/// over worker threads, spawning one model instance per cell from the
/// cell's provider, and aggregates deterministically.
#[allow(clippy::too_many_arguments)]
fn execute_campaign(
    problems: &[Problem],
    providers: &[Arc<dyn ModelProvider>],
    config: &CampaignConfig,
    observer: Option<&Arc<dyn CampaignObserver>>,
    cancel: Option<&CancelToken>,
    store: Option<&SharedEvalStore>,
    shared_cache: Option<&Arc<EvalCache>>,
    scope: Option<&Arc<CacheScope>>,
    resume: bool,
    kill: Option<KillPoint>,
) -> CampaignOutcome {
    assert!(!problems.is_empty(), "campaign needs problems");
    assert!(!providers.is_empty(), "campaign needs model providers");
    assert!(!config.k_values.is_empty(), "campaign needs k values");

    let emit = |event: CampaignEvent| {
        if let Some(observer) = observer {
            observer.on_event(&event);
        }
    };

    // The retry layer decorates providers at execute time, preserving
    // their display names; its decisions are bridged into the campaign
    // event stream through the observer.
    let providers: Vec<Arc<dyn ModelProvider>> = wrap_retry_providers(providers, config, observer);
    let providers = &providers[..];

    // A kill point folds into the same cooperative halt path as the
    // cancel token: both stop new cells at cell boundaries.
    let killed = AtomicBool::new(false);
    let halted = || killed.load(Ordering::Acquire) || cancel.is_some_and(CancelToken::is_cancelled);
    let provider_names: Vec<String> = providers.iter().map(|p| p.name().to_string()).collect();

    // Cells in problem-major order; `PerProblem` groups each problem's
    // contiguous run of cells into one work unit.
    let per_problem = providers.len() * config.feedback_iters.len();
    let cells = matrix_cells(problems.len(), providers.len(), config.feedback_iters.len());
    let units: Vec<std::ops::Range<usize>> = match config.grain {
        CampaignGrain::PerCell => (0..cells.len()).map(|i| i..i + 1).collect(),
        CampaignGrain::PerProblem => (0..problems.len())
            .map(|p| p * per_problem..(p + 1) * per_problem)
            .collect(),
    };

    emit(CampaignEvent::CampaignStarted {
        problems: problems.len(),
        providers: providers.len(),
        cells: cells.len(),
    });

    // Journal identity: the fingerprint scopes records to this exact
    // campaign, the per-cell keys are derived from identities (problem
    // id, provider name, feedback setting), not matrix indices.
    let fingerprint = campaign_fingerprint(problems, &provider_names, config);
    let cell_keys = matrix_cell_keys(problems, &provider_names, config, &cells);

    // Resume: replay cells journalled by a previous run of the same
    // campaign before any worker starts. Restored tallies were computed
    // by the same deterministic engine, so the merged report is
    // bit-identical to an uninterrupted run.
    let mut restored: Vec<Option<ProblemTally>> = vec![None; cells.len()];
    let mut cells_restored = 0usize;
    if resume {
        if let Some(store) = store {
            let journal: HashMap<u64, ProblemTally> =
                store.completed_cells(fingerprint).into_iter().collect();
            for (index, key) in cell_keys.iter().enumerate() {
                if let Some(tally) = journal.get(key) {
                    restored[index] = Some(*tally);
                    cells_restored += 1;
                    let cell = cells[index];
                    emit(CampaignEvent::CellRestored {
                        problem_id: problems[cell.problem].id.clone(),
                        model: provider_names[cell.profile].clone(),
                        feedback_iters: config.feedback_iters[cell.ef_idx],
                        tally: *tally,
                        completed: cells_restored,
                        total: cells.len(),
                    });
                }
            }
        }
    }

    // A kill point at boundary 0 trips before any evaluation work.
    if let Some(kill) = kill {
        if kill.after_cells() == 0 && cells_restored < cells.len() {
            match kill {
                KillPoint::Stop { .. } => killed.store(true, Ordering::Release),
                KillPoint::Abort { .. } => std::process::abort(),
            }
        }
    }

    // Golden responses: simulated once, shared immutably by every worker,
    // and seeded into the evaluation cache so golden-identical candidates
    // are instant hits. This serial priming phase honours the halt
    // switch per problem, so an early abort responds promptly instead of
    // sweeping every golden first. When a store is attached it doubles
    // as the disk tier under the shared cache.
    let cache = config.cache.then(|| match shared_cache {
        // Multi-tenant path: reuse the injected process-wide cache
        // verbatim (including whatever disk tier it was built with).
        Some(shared) => Arc::clone(shared),
        None => {
            let mut cache = EvalCache::new();
            if let Some(store) = store {
                cache = cache.with_disk(Arc::clone(store));
            }
            Arc::new(cache)
        }
    });
    // With a per-tenant scope attached, reported cache stats are the
    // scope's counters — a session sharing a process-wide cache must not
    // see (or leak) other tenants' traffic in its own stream/report.
    let reported_stats = |cache: &Arc<EvalCache>| match scope {
        Some(scope) => scope.stats(),
        None => cache.stats(),
    };
    let goldens: Arc<HashMap<String, Arc<FrequencyResponse>>> = {
        let mut evaluator = Evaluator::new(config.grid, Backend::default());
        if let Some(cache) = &cache {
            evaluator = evaluator.with_cache(Arc::clone(cache));
        }
        let mut table = HashMap::with_capacity(problems.len());
        for problem in problems {
            if halted() {
                break;
            }
            table.insert(problem.id.clone(), evaluator.prime_golden(problem));
        }
        Arc::new(table)
    };
    if halted() && cells_restored < cells.len() {
        emit(CampaignEvent::CampaignFinished {
            cells_completed: cells_restored,
            cells_total: cells.len(),
            cancelled: true,
        });
        return CampaignOutcome {
            report: None,
            cancelled: true,
            cells_completed: cells_restored,
            cells_total: cells.len(),
            cells_restored,
        };
    }

    let worker_count = if config.threads > 0 {
        config.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
    .min(units.len())
    .max(1);
    let sweep_threads = if config.legacy_sweeps {
        0
    } else {
        match config.grain {
            CampaignGrain::PerCell => 1,
            CampaignGrain::PerProblem => 0,
        }
    };

    let next_unit = AtomicUsize::new(0);
    let completed = AtomicUsize::new(cells_restored);
    let fresh = AtomicUsize::new(0);
    let store_degraded_reported = AtomicBool::new(false);
    let results: Mutex<Vec<(usize, ProblemTally)>> = Mutex::new(Vec::with_capacity(cells.len()));

    // Rebound under a distinct name: `scope` is shadowed by the thread
    // scope inside the closure below.
    let cache_scope = scope;
    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| {
                let mut evaluator = Evaluator::new(config.grid, Backend::default())
                    .with_shared_goldens(Arc::clone(&goldens))
                    .with_sweep_threads(sweep_threads)
                    .with_constant_fold(!config.legacy_sweeps);
                if let Some(cache) = &cache {
                    evaluator = evaluator.with_cache(Arc::clone(cache));
                }
                if let Some(scope) = cache_scope {
                    evaluator = evaluator.with_cache_scope(Arc::clone(scope));
                }
                let mut local: Vec<(usize, ProblemTally)> = Vec::new();
                'units: loop {
                    if halted() {
                        break;
                    }
                    let unit = next_unit.fetch_add(1, Ordering::Relaxed);
                    if unit >= units.len() {
                        break;
                    }
                    for cell_index in units[unit].clone() {
                        // Cooperative abort at cell boundaries: a started
                        // cell always finishes (and emits CellFinished),
                        // so the event stream stays well-formed.
                        if halted() {
                            break 'units;
                        }
                        // Restored cells were replayed up front.
                        if restored[cell_index].is_some() {
                            continue;
                        }
                        let cell = cells[cell_index];
                        let problem = &problems[cell.problem];
                        let feedback_iters = config.feedback_iters[cell.ef_idx];
                        emit(CampaignEvent::CellStarted {
                            problem_id: problem.id.clone(),
                            model: provider_names[cell.profile].clone(),
                            feedback_iters,
                        });
                        let tally = evaluate_cell(
                            &providers[cell.profile],
                            problem,
                            feedback_iters,
                            config,
                            &mut evaluator,
                        );
                        // Durability barrier: the cell's journal record
                        // is written and fsync'd *before* the cell is
                        // counted complete, so any crash after this
                        // point leaves a resumable journal.
                        if let Some(store) = store {
                            if !store.record_cell(fingerprint, cell_keys[cell_index], &tally)
                                && !store_degraded_reported.swap(true, Ordering::AcqRel)
                            {
                                emit(CampaignEvent::StoreDegraded {
                                    write_errors: store.write_errors(),
                                });
                            }
                        }
                        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                        emit(CampaignEvent::CellFinished {
                            problem_id: problem.id.clone(),
                            model: provider_names[cell.profile].clone(),
                            feedback_iters,
                            tally,
                            completed: done,
                            total: cells.len(),
                        });
                        local.push((cell_index, tally));
                        if let Some(kill) = kill {
                            if fresh.fetch_add(1, Ordering::Relaxed) + 1 >= kill.after_cells() {
                                match kill {
                                    KillPoint::Stop { .. } => {
                                        killed.store(true, Ordering::Release);
                                    }
                                    KillPoint::Abort { .. } => std::process::abort(),
                                }
                            }
                        }
                    }
                }
                results.lock().expect("results poisoned").extend(local);
            });
        }
    });

    let cells_completed = completed.load(Ordering::Relaxed);
    if halted() && cells_completed < cells.len() {
        emit(CampaignEvent::CampaignFinished {
            cells_completed,
            cells_total: cells.len(),
            cancelled: true,
        });
        return CampaignOutcome {
            report: None,
            cancelled: true,
            cells_completed,
            cells_total: cells.len(),
            cells_restored,
        };
    }

    let raw = results.into_inner().expect("results poisoned");
    let mut by_cell: Vec<Option<ProblemTally>> = restored;
    for (index, tally) in raw {
        by_cell[index] = Some(tally);
    }

    // Aggregation iterates problems in input order — deterministic and
    // independent of scheduling, hashing and thread count.
    let report = aggregate_report(
        problems,
        &provider_names,
        config,
        &by_cell,
        cache.as_ref().map(&reported_stats),
    );

    if let Some(cache) = &cache {
        emit(CampaignEvent::CacheStats(reported_stats(cache)));
    }
    emit(CampaignEvent::CampaignFinished {
        cells_completed,
        cells_total: cells.len(),
        cancelled: false,
    });

    CampaignOutcome {
        report: Some(report),
        cancelled: false,
        cells_completed,
        cells_total: cells.len(),
        cells_restored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problems() -> Vec<Problem> {
        ["mzi-ps", "mzm", "umatrix", "direct-modulator"]
            .iter()
            .map(|id| picbench_problems::find(id).unwrap())
            .collect()
    }

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            samples_per_problem: 4,
            k_values: vec![1, 4],
            feedback_iters: vec![0, 1],
            restrictions: false,
            seed: 99,
            grid: WavelengthGrid::paper_fast(),
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_produces_all_cells() {
        let profiles = vec![ModelProfile::gpt4(), ModelProfile::gemini15_pro()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        // 2 models × 2 EF settings × 2 k values.
        assert_eq!(report.cells.len(), 8);
        assert!(report.cell("GPT-4", 0, 1).is_some());
        assert!(report.cell("Gemini 1.5 pro", 1, 4).is_some());
        assert!(report.cell("GPT-4", 2, 1).is_none());
    }

    #[test]
    fn campaign_is_deterministic() {
        let profiles = vec![ModelProfile::claude35_sonnet()];
        let a = run_campaign(&profiles, &small_problems(), &small_config());
        let b = run_campaign(&profiles, &small_problems(), &small_config());
        assert!(a.same_results(&b));
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn report_is_bit_identical_across_thread_counts() {
        let profiles = vec![ModelProfile::gpt4o()];
        let reference = run_campaign(
            &profiles,
            &small_problems(),
            &CampaignConfig {
                threads: 1,
                ..small_config()
            },
        );
        for threads in [2, 3, 8] {
            let parallel = run_campaign(
                &profiles,
                &small_problems(),
                &CampaignConfig {
                    threads,
                    ..small_config()
                },
            );
            assert!(
                reference.same_results(&parallel),
                "thread count {threads} changed the report"
            );
        }
    }

    #[test]
    fn report_is_identical_across_grains_and_cache_settings() {
        let profiles = vec![ModelProfile::gpt4(), ModelProfile::claude35_sonnet()];
        let problems = small_problems();
        let reference = run_campaign(&profiles, &problems, &small_config());
        assert!(reference.cache_stats.is_some());
        for (grain, cache) in [
            (CampaignGrain::PerCell, false),
            (CampaignGrain::PerProblem, true),
            (CampaignGrain::PerProblem, false),
        ] {
            let other = run_campaign(
                &profiles,
                &problems,
                &CampaignConfig {
                    grain,
                    cache,
                    ..small_config()
                },
            );
            assert!(
                reference.same_results(&other),
                "grain {grain:?} / cache {cache} changed the report"
            );
            assert_eq!(other.cache_stats.is_some(), cache);
        }
    }

    #[test]
    fn cache_absorbs_repeated_structures() {
        let profiles = vec![ModelProfile::gpt4()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        let stats = report.cache_stats.expect("cache on by default");
        assert!(stats.lookups() > 0);
        assert!(
            stats.hit_rate() > 0.2,
            "identical first attempts across feedback settings must hit: {stats:?}"
        );
    }

    #[test]
    fn feedback_never_hurts() {
        let profiles = vec![ModelProfile::gpt4o()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        let no_ef = report.cell("GPT-4o", 0, 1).unwrap();
        let one_ef = report.cell("GPT-4o", 1, 1).unwrap();
        assert!(one_ef.syntax >= no_ef.syntax);
        assert!(one_ef.functional >= no_ef.functional);
    }

    #[test]
    fn pass_at_5_bounds_pass_at_1() {
        let profiles = vec![ModelProfile::gpt4()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        let p1 = report.cell("GPT-4", 0, 1).unwrap();
        let p4 = report.cell("GPT-4", 0, 4).unwrap();
        assert!(p4.syntax >= p1.syntax);
        assert!(p4.functional >= p1.functional);
    }

    #[test]
    fn scores_are_percentages() {
        let profiles = vec![ModelProfile::gpt_o1_mini()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        for cell in &report.cells {
            assert!((0.0..=100.0).contains(&cell.syntax));
            assert!((0.0..=100.0).contains(&cell.functional));
            assert!(cell.functional <= cell.syntax + 1e-9);
        }
    }

    #[test]
    fn shared_cache_multi_tenant_accounting() {
        let shared = Arc::new(EvalCache::new());
        let build = |scope: &Arc<CacheScope>| {
            Campaign::builder()
                .problems(small_problems())
                .profiles(&[ModelProfile::gpt4()])
                .config(small_config())
                .shared_cache(Arc::clone(&shared))
                .cache_scope(Arc::clone(scope))
                .build()
                .unwrap()
        };

        // Two tenants submit identical campaigns *concurrently* through
        // one shared cache.
        let scope_a = Arc::new(CacheScope::new());
        let scope_b = Arc::new(CacheScope::new());
        let (a, b) = std::thread::scope(|s| {
            let ta = s.spawn(|| build(&scope_a).run());
            let tb = s.spawn(|| build(&scope_b).run());
            (ta.join().unwrap(), tb.join().unwrap())
        });

        // Bit-identical reports, regardless of who populated the cache.
        assert!(a.same_results(&b));

        // Each tenant's report carries *its own* scope counters, not the
        // cache-wide ones (no cross-tenant traffic leakage) …
        let (sa, sb) = (scope_a.stats(), scope_b.stats());
        assert_eq!(a.cache_stats, Some(sa));
        assert_eq!(b.cache_stats, Some(sb));
        assert!(sa.lookups() > 0 && sb.lookups() > 0, "{sa:?} {sb:?}");

        // … and the scopes partition the global counters exactly: both
        // sides count every hit/miss event once, races included.
        let global = shared.stats();
        assert_eq!(global.misses, sa.misses + sb.misses, "{global:?}");
        assert_eq!(
            global.response_hits,
            sa.response_hits + sb.response_hits,
            "{global:?}"
        );
        assert_eq!(
            global.report_hits,
            sa.report_hits + sb.report_hits,
            "{global:?}"
        );
        assert_eq!(global.sim_hits, sa.sim_hits + sb.sim_hits, "{global:?}");
        assert_eq!(global.disk_hits, sa.disk_hits + sb.disk_hits, "{global:?}");

        // An isolated run (its own fresh cache) agrees bit for bit with
        // the shared-cache tenants.
        let isolated = Campaign::builder()
            .problems(small_problems())
            .profiles(&[ModelProfile::gpt4()])
            .config(small_config())
            .build()
            .unwrap()
            .run();
        assert!(a.same_results(&isolated));

        // A third identical tenant arriving after the fact is served
        // entirely from the shared cache: zero misses, all hits.
        let scope_late = Arc::new(CacheScope::new());
        let late = build(&scope_late).run();
        assert!(a.same_results(&late));
        let sl = scope_late.stats();
        assert_eq!(sl.misses, 0, "{sl:?}");
        assert!(sl.response_hits > 0, "{sl:?}");
    }
}
