//! Campaign runner: the full evaluation matrix of Tables III and IV.
//!
//! A campaign runs `models × feedback settings × problems × samples`
//! through the feedback loop and aggregates Pass@k. Problems are
//! distributed over worker threads (each worker owns its own evaluator
//! with its own golden-response cache); everything is seeded, so a
//! campaign is exactly reproducible.

use crate::evaluate::Evaluator;
use crate::feedback_loop::{run_sample, LoopConfig};
use crate::passk::{aggregate_pass_at_k, ProblemTally};
use picbench_problems::Problem;
use picbench_sim::{Backend, WavelengthGrid};
use picbench_synthllm::{ModelProfile, SyntheticLlm};
use std::collections::HashMap;
use std::sync::Mutex;

/// Campaign-wide configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Samples per problem (the paper's default n = 5).
    pub samples_per_problem: usize,
    /// Pass@k values to report (the paper uses 1 and 5).
    pub k_values: Vec<usize>,
    /// Feedback-iteration settings (the paper uses 0, 1 and 3).
    pub feedback_iters: Vec<usize>,
    /// Whether the system prompt carries the Table II restrictions.
    pub restrictions: bool,
    /// Campaign seed (same seed ⇒ identical tables).
    pub seed: u64,
    /// Wavelength grid for simulation/comparison.
    pub grid: WavelengthGrid,
    /// Worker threads (0 = one per available core, capped by problems).
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            samples_per_problem: 5,
            k_values: vec![1, 5],
            feedback_iters: vec![0, 1, 3],
            restrictions: false,
            seed: 20_250_205, // the paper's arXiv date
            grid: WavelengthGrid::paper_fast(),
            threads: 0,
        }
    }
}

/// Aggregated scores of one `(model, feedback, k)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellScore {
    /// Model display name.
    pub model: String,
    /// Feedback iterations.
    pub feedback_iters: usize,
    /// k of Pass@k.
    pub k: usize,
    /// Syntax Pass@k (percent).
    pub syntax: f64,
    /// Functional Pass@k (percent).
    pub functional: f64,
}

/// Per-problem tallies of one `(model, feedback)` condition.
#[derive(Debug, Clone)]
pub struct ConditionTallies {
    /// Model display name.
    pub model: String,
    /// Feedback iterations.
    pub feedback_iters: usize,
    /// Tallies keyed by problem id.
    pub tallies: HashMap<String, ProblemTally>,
}

/// A completed campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Whether restrictions were active.
    pub restrictions: bool,
    /// Sample count per problem.
    pub samples_per_problem: usize,
    /// Aggregated scores for every cell.
    pub cells: Vec<CellScore>,
    /// Raw per-problem tallies for every condition.
    pub conditions: Vec<ConditionTallies>,
}

impl CampaignReport {
    /// Looks up one cell.
    pub fn cell(&self, model: &str, feedback_iters: usize, k: usize) -> Option<&CellScore> {
        self.cells
            .iter()
            .find(|c| c.model == model && c.feedback_iters == feedback_iters && c.k == k)
    }
}

struct WorkItem {
    problem: Problem,
}

/// Runs a campaign over the given model profiles and problems.
///
/// # Panics
///
/// Panics if `problems` or `config.k_values` is empty, or if a golden
/// design fails to simulate (a bug, not an input condition).
pub fn run_campaign(
    profiles: &[ModelProfile],
    problems: &[Problem],
    config: &CampaignConfig,
) -> CampaignReport {
    assert!(!problems.is_empty(), "campaign needs problems");
    assert!(!config.k_values.is_empty(), "campaign needs k values");

    let queue: Mutex<Vec<WorkItem>> = Mutex::new(
        problems
            .iter()
            .map(|p| WorkItem { problem: p.clone() })
            .collect(),
    );
    // condition index = model_idx * feedback_settings + ef_idx
    let results: Mutex<Vec<(String, usize, String, ProblemTally)>> = Mutex::new(Vec::new());

    let worker_count = if config.threads > 0 {
        config.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
    .min(problems.len())
    .max(1);

    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| {
                let mut evaluator = Evaluator::new(config.grid, Backend::default());
                loop {
                    let item = {
                        let mut q = queue.lock().expect("queue poisoned");
                        match q.pop() {
                            Some(item) => item,
                            None => break,
                        }
                    };
                    let problem = &item.problem;
                    let mut local = Vec::new();
                    for profile in profiles {
                        let mut llm = SyntheticLlm::new(profile.clone(), config.seed);
                        for &ef in &config.feedback_iters {
                            let loop_config = LoopConfig {
                                max_feedback_iters: ef,
                                restrictions: config.restrictions,
                            };
                            let mut tally = ProblemTally {
                                n: config.samples_per_problem,
                                syntax_passes: 0,
                                functional_passes: 0,
                            };
                            for sample in 0..config.samples_per_problem as u64 {
                                let result = run_sample(
                                    &mut llm,
                                    problem,
                                    &mut evaluator,
                                    loop_config,
                                    sample,
                                );
                                if result.syntax_pass() {
                                    tally.syntax_passes += 1;
                                }
                                if result.functional_pass() {
                                    tally.functional_passes += 1;
                                }
                            }
                            local.push((
                                profile.name.to_string(),
                                ef,
                                problem.id.to_string(),
                                tally,
                            ));
                        }
                    }
                    results.lock().expect("results poisoned").extend(local);
                }
            });
        }
    });

    let raw = results.into_inner().expect("results poisoned");
    let mut conditions: Vec<ConditionTallies> = Vec::new();
    for profile in profiles {
        for &ef in &config.feedback_iters {
            let tallies: HashMap<String, ProblemTally> = raw
                .iter()
                .filter(|(m, e, _, _)| m == profile.name && *e == ef)
                .map(|(_, _, pid, tally)| (pid.clone(), *tally))
                .collect();
            conditions.push(ConditionTallies {
                model: profile.name.to_string(),
                feedback_iters: ef,
                tallies,
            });
        }
    }

    let mut cells = Vec::new();
    for condition in &conditions {
        let tally_vec: Vec<ProblemTally> = condition.tallies.values().copied().collect();
        for &k in &config.k_values {
            let (syntax, functional) = aggregate_pass_at_k(&tally_vec, k);
            cells.push(CellScore {
                model: condition.model.clone(),
                feedback_iters: condition.feedback_iters,
                k,
                syntax,
                functional,
            });
        }
    }

    CampaignReport {
        restrictions: config.restrictions,
        samples_per_problem: config.samples_per_problem,
        cells,
        conditions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problems() -> Vec<Problem> {
        ["mzi-ps", "mzm", "umatrix", "direct-modulator"]
            .iter()
            .map(|id| picbench_problems::find(id).unwrap())
            .collect()
    }

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            samples_per_problem: 4,
            k_values: vec![1, 4],
            feedback_iters: vec![0, 1],
            restrictions: false,
            seed: 99,
            grid: WavelengthGrid::paper_fast(),
            threads: 2,
        }
    }

    #[test]
    fn campaign_produces_all_cells() {
        let profiles = vec![ModelProfile::gpt4(), ModelProfile::gemini15_pro()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        // 2 models × 2 EF settings × 2 k values.
        assert_eq!(report.cells.len(), 8);
        assert!(report.cell("GPT-4", 0, 1).is_some());
        assert!(report.cell("Gemini 1.5 pro", 1, 4).is_some());
        assert!(report.cell("GPT-4", 2, 1).is_none());
    }

    #[test]
    fn campaign_is_deterministic() {
        let profiles = vec![ModelProfile::claude35_sonnet()];
        let a = run_campaign(&profiles, &small_problems(), &small_config());
        let b = run_campaign(&profiles, &small_problems(), &small_config());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn feedback_never_hurts() {
        let profiles = vec![ModelProfile::gpt4o()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        let no_ef = report.cell("GPT-4o", 0, 1).unwrap();
        let one_ef = report.cell("GPT-4o", 1, 1).unwrap();
        assert!(one_ef.syntax >= no_ef.syntax);
        assert!(one_ef.functional >= no_ef.functional);
    }

    #[test]
    fn pass_at_5_bounds_pass_at_1() {
        let profiles = vec![ModelProfile::gpt4()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        let p1 = report.cell("GPT-4", 0, 1).unwrap();
        let p4 = report.cell("GPT-4", 0, 4).unwrap();
        assert!(p4.syntax >= p1.syntax);
        assert!(p4.functional >= p1.functional);
    }

    #[test]
    fn scores_are_percentages() {
        let profiles = vec![ModelProfile::gpt_o1_mini()];
        let report = run_campaign(&profiles, &small_problems(), &small_config());
        for cell in &report.cells {
            assert!((0.0..=100.0).contains(&cell.syntax));
            assert!((0.0..=100.0).contains(&cell.functional));
            assert!(cell.functional <= cell.syntax + 1e-9);
        }
    }
}
