//! The journal seam between a shard worker and wherever its records
//! durably land.
//!
//! PR 7's workers journal straight into a per-`(shard, generation)`
//! [`EvalStore`] directory on a filesystem the supervisor shares. The
//! multi-machine transport keeps the worker body — claim, inherit,
//! evaluate, heartbeat, stats — byte-for-byte identical and swaps only
//! this trait's implementation: [`LocalShardJournal`] writes the store
//! directly, while a remote journal ships the same records over the
//! wire to a coordinator that owns the store. Every method mirrors an
//! [`EvalStore`] operation, including its durability contract
//! (inherited cells are unsynced until [`ShardJournal::sync`]; fresh
//! cells and stats carry their own barrier).

use crate::passk::ProblemTally;
use crate::persist::{EvalSnapshot, EvalStore, LeaseAdvance, LeaseRecord, ShardGenStats};
use crate::shard::shard_journal_dir;
use std::io;
use std::path::{Path, PathBuf};

/// Where a shard worker's records go — local store or remote
/// coordinator. See the module docs for the durability contract.
pub trait ShardJournal: Send + Sync {
    /// Claims or renews the worker's lease with compare-and-swap
    /// semantics (see [`EvalStore::advance_lease`]). A successful claim
    /// is durable before this returns.
    fn advance_lease(&self, fingerprint: u64, shard: u32, lease: &LeaseRecord) -> LeaseAdvance;

    /// Journals one freshly evaluated cell, then syncs. Returns whether
    /// the record is durable; `false` marks the journal degraded.
    fn record_cell(&self, fingerprint: u64, cell: u64, tally: &ProblemTally) -> bool;

    /// Journals one cell inherited from a prior generation (cell record
    /// plus inherit mark), unsynced — the restore pass calls
    /// [`ShardJournal::sync`] once at its end.
    fn record_inherited_cell(&self, fingerprint: u64, cell: u64, tally: &ProblemTally);

    /// Durability barrier for everything journalled so far. Returns
    /// `false` when the journal is (or just became) degraded.
    fn sync(&self) -> bool;

    /// Journals the generation's completion statistics, then syncs.
    fn record_shard_stats(&self, fingerprint: u64, shard: u32, stats: &ShardGenStats) -> bool;

    /// Whether a write failure has degraded the journal. A degraded
    /// journal stops accepting writes; the worker's lease stops
    /// advancing and the supervisor reassigns the shard.
    fn degraded(&self) -> bool;

    /// The completed cells a *prior* generation of this shard
    /// journalled — what a takeover worker inherits.
    ///
    /// # Errors
    ///
    /// Propagates IO (or transport) failures reading the prior
    /// generation's journal.
    fn prior_generation_cells(
        &self,
        fingerprint: u64,
        generation: u32,
    ) -> io::Result<Vec<(u64, ProblemTally)>>;
}

/// The shared-filesystem journal: an [`EvalStore`] opened on the
/// worker's own `(shard, generation)` directory, prior generations read
/// as sibling-directory snapshots.
pub struct LocalShardJournal {
    store: EvalStore,
    root: PathBuf,
    shard: u32,
}

impl LocalShardJournal {
    /// Opens (creating if needed) the journal directory of
    /// `(shard, generation)` under `root`.
    ///
    /// # Errors
    ///
    /// Propagates IO failures opening the store directory.
    pub fn open(root: &Path, shard: u32, generation: u32) -> io::Result<Self> {
        Ok(LocalShardJournal {
            store: EvalStore::open(shard_journal_dir(root, shard, generation))?,
            root: root.to_path_buf(),
            shard,
        })
    }
}

impl ShardJournal for LocalShardJournal {
    fn advance_lease(&self, fingerprint: u64, shard: u32, lease: &LeaseRecord) -> LeaseAdvance {
        self.store.advance_lease(fingerprint, shard, lease)
    }

    fn record_cell(&self, fingerprint: u64, cell: u64, tally: &ProblemTally) -> bool {
        self.store.record_cell(fingerprint, cell, tally)
    }

    fn record_inherited_cell(&self, fingerprint: u64, cell: u64, tally: &ProblemTally) {
        self.store.record_inherited_cell(fingerprint, cell, tally);
    }

    fn sync(&self) -> bool {
        self.store.sync()
    }

    fn record_shard_stats(&self, fingerprint: u64, shard: u32, stats: &ShardGenStats) -> bool {
        self.store.record_shard_stats(fingerprint, shard, stats)
    }

    fn degraded(&self) -> bool {
        self.store.degraded()
    }

    fn prior_generation_cells(
        &self,
        fingerprint: u64,
        generation: u32,
    ) -> io::Result<Vec<(u64, ProblemTally)>> {
        let snap = EvalSnapshot::load(shard_journal_dir(&self.root, self.shard, generation))?;
        Ok(snap.completed_cells(fingerprint))
    }
}
