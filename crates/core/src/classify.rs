//! The error-classification loop (§III-D).
//!
//! Raw failures surface at several layers — response extraction, JSON
//! parsing, schema interpretation, structural validation, simulation —
//! and the benchmark maps each of them onto the Table II taxonomy so the
//! feedback prompt can name the category instead of dumping "abstract
//! error messages" on the model.

use picbench_netlist::extract::{ExtractError, ExtractedPayload};
use picbench_netlist::json::{JsonError, JsonErrorKind};
use picbench_netlist::{FailureType, SchemaError, ValidationIssue};
use picbench_sim::SimError;

/// Classifies a failure to locate any JSON at all.
pub fn classify_extract_error(err: &ExtractError) -> ValidationIssue {
    ValidationIssue::new(
        FailureType::OtherSyntax,
        format!(
            "No JSON netlist could be located in the response ({}).",
            err.reason
        ),
    )
}

/// Classifies extra material around the JSON payload.
pub fn classify_extra_content(payload: &ExtractedPayload) -> Option<ValidationIssue> {
    if !payload.has_extra_content() {
        return None;
    }
    let mut what = Vec::new();
    if payload.had_code_fence {
        what.push("markdown code fences".to_string());
    }
    if let Some(extra) = &payload.extra_content {
        let preview: String = extra.chars().take(60).collect();
        what.push(format!("surrounding text {preview:?}"));
    }
    Some(ValidationIssue::new(
        FailureType::ExtraJsonContent,
        format!(
            "The result section must contain only the JSON netlist, but it also contains {}.",
            what.join(" and ")
        ),
    ))
}

/// Classifies a JSON parse failure.
pub fn classify_json_error(err: &JsonError) -> ValidationIssue {
    let failure = match err.kind {
        // Comments and trailing prose are the "extra contents" signature.
        JsonErrorKind::CommentFound | JsonErrorKind::TrailingContent => {
            FailureType::ExtraJsonContent
        }
        _ => FailureType::OtherSyntax,
    };
    ValidationIssue::new(failure, format!("JSON error: {err}."))
}

/// Classifies a schema-level failure.
pub fn classify_schema_error(err: &SchemaError) -> ValidationIssue {
    let failure = match err {
        // A non-string model binding is the instances/models mix-up.
        SchemaError::ModelRefNotString { .. } => FailureType::InstancesModelsConfusion,
        // Malformed "instance,port" strings are invalid mappings.
        SchemaError::BadPortRef { .. } => FailureType::WrongPort,
        _ => FailureType::OtherSyntax,
    };
    ValidationIssue::new(failure, format!("Schema error: {err}"))
}

/// Classifies a simulation-time failure (model parameter rejection,
/// singular systems, numerical blow-ups).
pub fn classify_sim_error(err: &SimError) -> ValidationIssue {
    ValidationIssue::new(
        FailureType::OtherSyntax,
        format!("Simulation error: {err}."),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_netlist::extract::extract_payload;
    use picbench_netlist::json;

    #[test]
    fn comment_maps_to_extra_content() {
        let err = json::parse("{\n// hi\n}").unwrap_err();
        let issue = classify_json_error(&err);
        assert_eq!(issue.failure, FailureType::ExtraJsonContent);
    }

    #[test]
    fn truncation_maps_to_other_syntax() {
        let err = json::parse("{\"a\": ").unwrap_err();
        let issue = classify_json_error(&err);
        assert_eq!(issue.failure, FailureType::OtherSyntax);
    }

    #[test]
    fn trailing_content_maps_to_extra_content() {
        let err = json::parse("{} also this").unwrap_err();
        assert_eq!(
            classify_json_error(&err).failure,
            FailureType::ExtraJsonContent
        );
    }

    #[test]
    fn swapped_models_schema_error_maps_to_confusion() {
        let err = SchemaError::ModelRefNotString {
            component: "mmi1x2".into(),
            found: "object",
        };
        assert_eq!(
            classify_schema_error(&err).failure,
            FailureType::InstancesModelsConfusion
        );
    }

    #[test]
    fn bad_portref_maps_to_wrong_port() {
        let err = SchemaError::BadPortRef {
            path: "netlist.connections".into(),
            text: "mmi1".into(),
        };
        assert_eq!(classify_schema_error(&err).failure, FailureType::WrongPort);
    }

    #[test]
    fn fenced_payload_is_extra_content() {
        let payload = extract_payload("<result>```json\n{}\n```</result>").unwrap();
        let issue = classify_extra_content(&payload).unwrap();
        assert_eq!(issue.failure, FailureType::ExtraJsonContent);
        assert!(issue.message.contains("code fences"));
    }

    #[test]
    fn clean_payload_has_no_extra_issue() {
        let payload = extract_payload("<result>{}</result>").unwrap();
        assert!(classify_extra_content(&payload).is_none());
    }

    #[test]
    fn missing_json_is_other_syntax() {
        let err = extract_payload("I refuse.").unwrap_err();
        assert_eq!(
            classify_extract_error(&err).failure,
            FailureType::OtherSyntax
        );
    }
}
