//! Shard planning and deterministic multi-shard merge.
//!
//! A sharded campaign partitions the canonical problem-major cell list
//! into contiguous, balanced ranges — one per shard — under the same
//! campaign fingerprint as a single-process run (the shard count is a
//! scheduling knob, excluded from the fingerprint, so journals written
//! under any shard count recombine). Each worker journals its cells
//! into `<root>/shard-NNN/gen-GGG/`; a takeover bumps the generation,
//! which is the fence: the merge reads only each shard's *final*
//! generation, so journal writes from a superseded worker are
//! quarantined without any cross-process coordination.
//!
//! The merge itself is a union keyed by cell journal keys with a global
//! coverage check — deliberately independent of how cells were
//! partitioned, which is what the any-partition merge property test
//! exercises — followed by the same [`aggregate_report`] the in-process
//! engine uses. Same tallies, same fold ⇒ bit-identical report.

use crate::campaign::{
    aggregate_report, campaign_fingerprint, matrix_cell_keys, matrix_cells, Campaign,
    CampaignConfig, CampaignReport,
};
use crate::passk::ProblemTally;
use crate::persist::{EvalSnapshot, ShardGenStats};
use picbench_problems::Problem;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// A deterministic partition of the campaign's cell space into
/// contiguous, balanced shards.
///
/// `partition(total, n)` always yields the same ranges for the same
/// inputs: the first `total % n` shards get one extra cell. Stable
/// across runs by construction — there is no randomness to disagree
/// about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    ranges: Vec<Range<usize>>,
}

impl ShardPlan {
    /// Partitions `total` cells into `shards` contiguous ranges (a
    /// shard count of 0 is treated as 1).
    pub fn partition(total: usize, shards: u32) -> ShardPlan {
        let shards = (shards.max(1) as usize).min(total.max(1));
        let base = total / shards;
        let extra = total % shards;
        let ranges = (0..shards)
            .map(|i| {
                let start = i * base + i.min(extra);
                let len = base + usize::from(i < extra);
                start..start + len
            })
            .collect();
        ShardPlan { ranges }
    }

    /// Number of shards in the plan (possibly fewer than requested when
    /// there are fewer cells than shards).
    pub fn shards(&self) -> u32 {
        self.ranges.len() as u32
    }

    /// The contiguous cell-index range assigned to one shard.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shards()`.
    pub fn cells(&self, shard: u32) -> Range<usize> {
        self.ranges[shard as usize].clone()
    }
}

/// The journal directory of one `(shard, generation)`:
/// `<root>/shard-NNN/gen-GGG/`. Each directory has exactly one writer
/// ever — the worker launched for that generation — preserving the
/// store's single-writer invariant across processes.
pub fn shard_journal_dir(root: &Path, shard: u32, generation: u32) -> PathBuf {
    root.join(format!("shard-{shard:03}"))
        .join(format!("gen-{generation:03}"))
}

/// The highest generation directory present for a shard, if any.
pub(crate) fn latest_generation(root: &Path, shard: u32) -> io::Result<Option<u32>> {
    let dir = root.join(format!("shard-{shard:03}"));
    let mut latest = None;
    match std::fs::read_dir(&dir) {
        Ok(entries) => {
            for entry in entries {
                let name = entry?.file_name();
                if let Some(gen) = name
                    .to_string_lossy()
                    .strip_prefix("gen-")
                    .and_then(|g| g.parse::<u32>().ok())
                {
                    latest = latest.max(Some(gen));
                }
            }
        }
        Err(err) if err.kind() == io::ErrorKind::NotFound => {}
        Err(err) => return Err(err),
    }
    Ok(latest)
}

/// The shard directories present under a root, ascending.
pub(crate) fn shard_ids(root: &Path) -> io::Result<Vec<u32>> {
    let mut ids = Vec::new();
    match std::fs::read_dir(root) {
        Ok(entries) => {
            for entry in entries {
                let name = entry?.file_name();
                if let Some(id) = name
                    .to_string_lossy()
                    .strip_prefix("shard-")
                    .and_then(|s| s.parse::<u32>().ok())
                {
                    ids.push(id);
                }
            }
        }
        Err(err) if err.kind() == io::ErrorKind::NotFound => {}
        Err(err) => return Err(err),
    }
    ids.sort_unstable();
    Ok(ids)
}

/// What one shard contributed to a merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMergeInfo {
    /// Shard index.
    pub shard: u32,
    /// The final (merged) generation of the shard.
    pub generation: u32,
    /// Cells the final generation's journal contributed.
    pub cells: usize,
    /// Records quarantined from stale generations: cells journalled by
    /// superseded workers after their fence that the final generation
    /// never inherited.
    pub quarantined: usize,
}

/// A successful multi-shard merge.
#[derive(Debug)]
pub struct ShardMergeOutcome {
    /// The merged report — bit-identical to a single-process run of the
    /// same campaign (`cache_stats` is `None`: merges read journals,
    /// they evaluate nothing).
    pub report: CampaignReport,
    /// Per-shard contributions, ascending by shard index.
    pub shards: Vec<ShardMergeInfo>,
    /// Total cells shard workers inherited from prior generations
    /// (work that was *not* redone thanks to journal resume).
    pub restored: u64,
    /// Total cells shard workers evaluated fresh, summed over final
    /// generations.
    pub evaluated: u64,
}

/// Why a multi-shard merge failed.
#[derive(Debug)]
pub enum ShardMergeError {
    /// Reading a shard journal failed outright.
    Io(io::Error),
    /// The union of all final-generation journals does not cover the
    /// campaign's cell matrix — the campaign has not finished (or the
    /// root holds journals of a different campaign fingerprint).
    MissingCells {
        /// Cells with no journal record.
        missing: usize,
        /// Total cells in the matrix.
        total: usize,
    },
}

impl fmt::Display for ShardMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardMergeError::Io(err) => write!(f, "shard journal IO error: {err}"),
            ShardMergeError::MissingCells { missing, total } => {
                write!(
                    f,
                    "shard journals cover only {}/{total} cells",
                    total - missing
                )
            }
        }
    }
}

impl std::error::Error for ShardMergeError {}

impl From<io::Error> for ShardMergeError {
    fn from(err: io::Error) -> Self {
        ShardMergeError::Io(err)
    }
}

/// The raw journal contents of one shard under a campaign root: its
/// final (merge-visible) generation's cells plus the quarantine and
/// statistics accounting over every stale generation.
///
/// This is the shared read path under the supervisor's journal merge, the
/// coordinator's merged-state route, and the chaos drills' independent
/// quarantine recount — one definition of "what a shard contributed",
/// so they cannot disagree.
#[derive(Debug, Clone)]
pub struct ShardCells {
    /// Shard index.
    pub shard: u32,
    /// The final generation present — the only one whose cells merge.
    pub generation: u32,
    /// The final generation's completed cells (unordered; may include
    /// keys outside this campaign's matrix, which merges ignore).
    pub cells: Vec<(u64, ProblemTally)>,
    /// Cells journalled by superseded generations after their fence
    /// that no successor inherit-marked — counted, never merged.
    pub quarantined: usize,
    /// The final generation's completion statistics, if its worker
    /// finished.
    pub stats: Option<ShardGenStats>,
}

/// Reads every shard journal under `root`, ascending by shard index:
/// final-generation cells, stale-generation quarantine accounting and
/// completion statistics. See the module docs for the fencing
/// semantics this encodes.
///
/// # Errors
///
/// Propagates IO failures reading existing journal directories (a
/// missing directory reads as empty, not as an error).
pub fn collect_shard_cells(root: &Path, fingerprint: u64) -> io::Result<Vec<ShardCells>> {
    let mut collected = Vec::new();
    for shard in shard_ids(root)? {
        let Some(final_gen) = latest_generation(root, shard)? else {
            continue;
        };
        let snap = EvalSnapshot::load(shard_journal_dir(root, shard, final_gen))?;
        // Stale generations are fenced: a record some successor
        // inherit-marked during its restore pass was written before that
        // successor's fence; anything else a stale generation holds
        // landed after it was superseded — counted, never merged.
        let mut quarantined = 0;
        if final_gen > 0 {
            let mut inherited: HashSet<u64> =
                snap.inherited_cells(fingerprint).into_iter().collect();
            let mut stale_keys: Vec<u64> = Vec::new();
            for generation in 0..final_gen {
                let stale = EvalSnapshot::load(shard_journal_dir(root, shard, generation))?;
                inherited.extend(stale.inherited_cells(fingerprint));
                stale_keys.extend(
                    stale
                        .completed_cells(fingerprint)
                        .into_iter()
                        .map(|(k, _)| k),
                );
            }
            quarantined = stale_keys
                .iter()
                .filter(|key| !inherited.contains(key))
                .count();
        }
        collected.push(ShardCells {
            shard,
            generation: final_gen,
            cells: snap.completed_cells(fingerprint),
            quarantined,
            stats: snap.shard_stats(fingerprint, shard),
        });
    }
    Ok(collected)
}

/// Merges every shard's final-generation journal under `root` into one
/// report. See the module docs for the fencing/quarantine semantics.
pub(crate) fn merge_shard_journals(
    problems: &[Problem],
    provider_names: &[String],
    config: &CampaignConfig,
    fingerprint: u64,
    cell_keys: &[u64],
    root: &Path,
) -> Result<ShardMergeOutcome, ShardMergeError> {
    let key_to_index: HashMap<u64, usize> = cell_keys
        .iter()
        .enumerate()
        .map(|(index, &key)| (key, index))
        .collect();
    let mut by_cell: Vec<Option<ProblemTally>> = vec![None; cell_keys.len()];
    let mut shards = Vec::new();
    let mut restored = 0u64;
    let mut evaluated = 0u64;
    for collected in collect_shard_cells(root, fingerprint)? {
        let mut contributed = 0;
        for (key, tally) in &collected.cells {
            if let Some(&index) = key_to_index.get(key) {
                by_cell[index] = Some(*tally);
                contributed += 1;
            }
        }
        if let Some(stats) = collected.stats {
            restored += stats.restored;
            evaluated += stats.evaluated;
        }
        shards.push(ShardMergeInfo {
            shard: collected.shard,
            generation: collected.generation,
            cells: contributed,
            quarantined: collected.quarantined,
        });
    }
    let missing = by_cell.iter().filter(|cell| cell.is_none()).count();
    if missing > 0 {
        return Err(ShardMergeError::MissingCells {
            missing,
            total: cell_keys.len(),
        });
    }
    let report = aggregate_report(problems, provider_names, config, &by_cell, None);
    Ok(ShardMergeOutcome {
        report,
        shards,
        restored,
        evaluated,
    })
}

impl Campaign {
    /// Merges the per-shard journals under `root` into a report without
    /// launching any workers — the offline half of a sharded run, also
    /// reachable on its own to combine journals a previous (possibly
    /// crashed) supervisor left behind.
    ///
    /// # Errors
    ///
    /// [`ShardMergeError::MissingCells`] when the journals do not cover
    /// the full matrix; [`ShardMergeError::Io`] on unreadable journals.
    pub fn merge_from_shards(&self, root: &Path) -> Result<ShardMergeOutcome, ShardMergeError> {
        let provider_names: Vec<String> = self
            .providers
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        let cells = matrix_cells(
            self.problems.len(),
            self.providers.len(),
            self.config.feedback_iters.len(),
        );
        let cell_keys = matrix_cell_keys(&self.problems, &provider_names, &self.config, &cells);
        let fingerprint = campaign_fingerprint(&self.problems, &provider_names, &self.config);
        merge_shard_journals(
            &self.problems,
            &provider_names,
            &self.config,
            fingerprint,
            &cell_keys,
            root,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_disjoint_complete_and_balanced() {
        for total in [0, 1, 7, 8, 16, 23] {
            for shards in 1..=8u32 {
                let plan = ShardPlan::partition(total, shards);
                let mut covered = vec![false; total];
                let mut sizes = Vec::new();
                for shard in 0..plan.shards() {
                    let range = plan.cells(shard);
                    sizes.push(range.len());
                    for cell in range {
                        assert!(!covered[cell], "cell {cell} assigned twice");
                        covered[cell] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "total {total} shards {shards}");
                let (min, max) = (
                    sizes.iter().min().copied().unwrap_or(0),
                    sizes.iter().max().copied().unwrap_or(0),
                );
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn partition_is_stable_and_clamps_degenerate_inputs() {
        assert_eq!(ShardPlan::partition(10, 4), ShardPlan::partition(10, 4));
        // Shard count 0 behaves as 1.
        assert_eq!(ShardPlan::partition(5, 0).shards(), 1);
        assert_eq!(ShardPlan::partition(5, 0).cells(0), 0..5);
        // More shards than cells: one cell per shard, none empty.
        let plan = ShardPlan::partition(3, 8);
        assert_eq!(plan.shards(), 3);
        for shard in 0..3 {
            assert_eq!(plan.cells(shard).len(), 1);
        }
    }

    #[test]
    fn journal_dirs_are_per_shard_per_generation() {
        let root = Path::new("/tmp/x");
        assert_eq!(
            shard_journal_dir(root, 2, 0),
            Path::new("/tmp/x/shard-002/gen-000")
        );
        assert_ne!(shard_journal_dir(root, 1, 0), shard_journal_dir(root, 1, 1));
    }
}
